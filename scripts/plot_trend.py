#!/usr/bin/env python3
"""Plot per-family wall/solver-time trends from ``perf-diff --trend`` CSV.

Usage:

    cargo run --release -p amle-bench --bin perf-diff -- --trend \
        run1.json run2.json run3.json > trend.csv
    python3 scripts/plot_trend.py trend.csv --out trend-plots/

The CSV columns are ``benchmark,run,time_s,solver_time_s,solve_calls,
cache_hits,fingerprint_digest``; the ``__suite__`` series carries whole-run
wall time and the suite fingerprint (its middle count fields are empty).

Benchmarks are grouped into families by name (Table I controllers, the
synthetic families, the splicing-stress family, circuits), and one line per
family is plotted for wall time and for solver time across runs.

Matplotlib is optional: when it is unavailable the script falls back to an
ASCII rendering of the same per-family series, so it is usable in the CI
container without installing anything.
"""

import argparse
import csv
import os
import sys
from collections import OrderedDict


def family_of(name):
    """Maps a benchmark name to its suite family."""
    if name == "__suite__":
        return "suite"
    if name.startswith("Splice"):
        return "splice-stress"
    if name.startswith("Synth"):
        return "synthetic"
    if name.startswith("Circuit"):
        return "circuit"
    return "table1"


def read_trend(path):
    """Parses the trend CSV into {family: {run: {"wall": s, "solver": s}}}.

    Per-family values are sums over the family's benchmarks present in that
    run. Returns (families, runs) with runs sorted ascending.
    """
    families = OrderedDict()
    runs = set()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"benchmark", "run", "time_s", "solver_time_s"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise SystemExit(
                f"{path}: not a perf-diff --trend CSV "
                f"(expected columns {sorted(required)}, got {reader.fieldnames})"
            )
        for row in reader:
            family = family_of(row["benchmark"])
            run = int(row["run"])
            runs.add(run)
            bucket = families.setdefault(family, {}).setdefault(
                run, {"wall": 0.0, "solver": 0.0}
            )
            bucket["wall"] += float(row["time_s"] or 0.0)
            # The __suite__ series has no solver-time column value.
            bucket["solver"] += float(row["solver_time_s"] or 0.0)
    return families, sorted(runs)


def series(families, family, runs, key):
    """One family's metric across runs; None where the run lacks the family."""
    return [
        families[family][run][key] if run in families[family] else None
        for run in runs
    ]


def ascii_sparkline(values):
    """Renders a series as a bar string, scaling to the series maximum."""
    bars = " ▁▂▃▄▅▆▇█"
    present = [v for v in values if v is not None]
    top = max(present) if present else 0.0
    out = []
    for value in values:
        if value is None:
            out.append("·")
        elif top <= 0.0:
            out.append(bars[1])
        else:
            out.append(bars[1 + round(value / top * (len(bars) - 2))])
    return "".join(out)


def render_ascii(families, runs):
    """Fallback text rendering when matplotlib is unavailable."""
    print(f"trend across {len(runs)} runs (per-family totals, seconds)")
    for metric, key in (("wall time", "wall"), ("solver time", "solver")):
        print(f"\n{metric}:")
        for family in families:
            values = series(families, family, runs, key)
            present = [v for v in values if v is not None]
            if not present:
                continue
            first, last = present[0], present[-1]
            delta = "n/a" if first <= 0.0 else f"{(last / first - 1.0) * 100:+.1f}%"
            print(
                f"  {family:<14} {ascii_sparkline(values)}  "
                f"first {first:9.3f}s  last {last:9.3f}s  ({delta})"
            )


def render_plots(families, runs, out_dir):
    """Writes wall.png and solver.png with one line per family."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for metric, key, filename in (
        ("wall time", "wall", "wall.png"),
        ("solver time", "solver", "solver.png"),
    ):
        fig, ax = plt.subplots(figsize=(8, 4.5))
        for family in families:
            values = series(families, family, runs, key)
            if not any(v is not None for v in values):
                continue
            ax.plot(runs, values, marker="o", label=family)
        ax.set_xlabel("run")
        ax.set_ylabel(f"{metric} (s)")
        ax.set_title(f"per-family {metric} trend")
        ax.set_xticks(runs)
        ax.grid(True, alpha=0.3)
        ax.legend()
        path = os.path.join(out_dir, filename)
        fig.tight_layout()
        fig.savefig(path, dpi=120)
        plt.close(fig)
        written.append(path)
    return written


def main():
    parser = argparse.ArgumentParser(
        description="Plot per-family time trends from perf-diff --trend CSV."
    )
    parser.add_argument("csv", help="trend CSV produced by perf-diff --trend")
    parser.add_argument(
        "--out",
        default="trend-plots",
        help="output directory for PNG plots (default: trend-plots/)",
    )
    parser.add_argument(
        "--ascii",
        action="store_true",
        help="force the ASCII rendering even when matplotlib is available",
    )
    options = parser.parse_args()

    families, runs = read_trend(options.csv)
    if not runs:
        raise SystemExit(f"{options.csv}: no data rows")

    if not options.ascii:
        try:
            written = render_plots(families, runs, options.out)
        except ImportError:
            print(
                "matplotlib unavailable; falling back to ASCII rendering",
                file=sys.stderr,
            )
        else:
            for path in written:
                print(f"wrote {path}")
            return
    render_ascii(families, runs)


if __name__ == "__main__":
    main()
