//! # active-model-learning
//!
//! Umbrella crate for the reproduction of *Active Learning of Abstract System
//! Models from Traces using Model Checking* (DATE 2022). It re-exports the
//! workspace crates under stable module names so that examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`expr`] — typed expressions, sorts, valuations (`amle-expr`);
//! * [`system`] — transition systems, traces, the random-input simulator
//!   (`amle-system`);
//! * [`automaton`] — symbolic NFAs with predicate-labelled edges
//!   (`amle-automaton`);
//! * [`learner`] — pluggable passive learners: history, k-tails, SAT-based
//!   DFA identification, L\* (`amle-learner`);
//! * [`sat`] / [`bitblast`] / [`checker`] — the CDCL solver behind the
//!   pluggable [`sat::IncrementalSolver`] backend seam, the word-level CNF
//!   encoder (generic over any [`sat::ClauseSink`]) and the k-induction
//!   model checker with persistent incremental solver sessions;
//! * [`active`] — the active-learning loop, completeness conditions,
//!   invariants and the random-sampling baseline (`amle-core`);
//! * [`benchmarks`] — the Stateflow-style evaluation suite
//!   (`amle-benchmarks`).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the paper-to-code mapping and the experiment naming used by `amle-bench`.
//!
//! ```
//! use active_model_learning::prelude::*;
//!
//! let benchmark = benchmarks::benchmark_by_name("HomeClimateControlCooler").unwrap();
//! let config = ActiveLearnerConfig {
//!     observables: Some(benchmark.observables.clone()),
//!     initial_traces: 10,
//!     trace_length: 10,
//!     k: 4,
//!     ..ActiveLearnerConfig::default()
//! };
//! let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
//! let report = runner.run()?;
//! assert!(report.converged);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amle_automaton as automaton;
pub use amle_benchmarks as benchmarks;
pub use amle_bitblast as bitblast;
pub use amle_checker as checker;
pub use amle_circuit as circuit;
pub use amle_core as active;
pub use amle_expr as expr;
pub use amle_learner as learner;
pub use amle_sat as sat;
pub use amle_system as system;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::benchmarks;
    pub use amle_automaton::Nfa;
    pub use amle_core::{
        random_sampling_baseline, ActiveLearner, ActiveLearnerConfig, CheckerStats, RunReport,
        SolverStats,
    };
    pub use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
    pub use amle_learner::{
        HistoryLearner, KTailsLearner, LstarLearner, ModelLearner, SatDfaLearner,
    };
    pub use amle_system::{Simulator, System, SystemBuilder, Trace, TraceSet};
}
