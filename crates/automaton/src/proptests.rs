//! Property-based tests for the symbolic NFA.

use crate::Nfa;
use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
use proptest::prelude::*;

fn vars() -> VarSet {
    let mut vars = VarSet::new();
    vars.declare("x", Sort::int(3)).unwrap();
    vars
}

fn obs(x: i64) -> Valuation {
    let vs = vars();
    let mut v = Valuation::zeroed(&vs);
    v.set(VarId::from_index(0), Value::Int(x));
    v
}

/// Builds a random automaton over guards of the form `x == c` / `x > c`.
fn arb_nfa() -> impl Strategy<Value = Nfa> {
    let transition = (0usize..4, 0usize..4, 0i64..8, any::<bool>());
    (
        proptest::collection::vec(transition, 1..12),
        proptest::collection::btree_set(0usize..4, 1..3),
    )
        .prop_map(|(transitions, initials)| {
            let mut nfa = Nfa::new();
            nfa.add_states(4);
            for i in initials {
                nfa.mark_initial(crate::StateId::from_index(i));
            }
            let xe = Expr::var(VarId::from_index(0), Sort::int(3));
            for (from, to, c, use_eq) in transitions {
                let guard = if use_eq {
                    xe.eq(&Expr::int_val(c, 3))
                } else {
                    xe.gt(&Expr::int_val(c, 3))
                };
                nfa.add_transition(
                    crate::StateId::from_index(from),
                    crate::StateId::from_index(to),
                    guard,
                );
            }
            nfa
        })
}

fn arb_word() -> impl Strategy<Value = Vec<Valuation>> {
    proptest::collection::vec(0i64..8, 0..8).prop_map(|xs| xs.into_iter().map(obs).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn language_is_prefix_closed(nfa in arb_nfa(), word in arb_word()) {
        if nfa.accepts(&word) {
            for k in 0..=word.len() {
                prop_assert!(nfa.accepts(&word[..k]));
            }
        }
    }

    #[test]
    fn longest_prefix_is_consistent_with_acceptance(nfa in arb_nfa(), word in arb_word()) {
        let j = nfa.longest_accepted_prefix(&word);
        prop_assert!(j <= word.len());
        prop_assert!(nfa.accepts(&word[..j]) || j == 0);
        if j < word.len() {
            prop_assert!(!nfa.accepts(&word[..j + 1]));
        } else {
            prop_assert!(nfa.accepts(&word));
        }
    }

    #[test]
    fn trimming_preserves_acceptance(nfa in arb_nfa(), word in arb_word()) {
        let trimmed = nfa.trim_unreachable();
        prop_assert_eq!(nfa.accepts(&word), trimmed.accepts(&word));
        prop_assert!(trimmed.num_states() <= nfa.num_states());
    }

    #[test]
    fn merging_parallel_edges_preserves_acceptance(nfa in arb_nfa(), word in arb_word()) {
        let merged = nfa.merge_parallel_edges();
        prop_assert_eq!(nfa.accepts(&word), merged.accepts(&word));
        prop_assert!(merged.num_transitions() <= nfa.num_transitions());
    }

    #[test]
    fn simplifying_guards_preserves_acceptance(nfa in arb_nfa(), word in arb_word()) {
        let simplified = nfa.simplify_guards();
        prop_assert_eq!(nfa.accepts(&word), simplified.accepts(&word));
    }
}
