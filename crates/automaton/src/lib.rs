//! # amle-automaton
//!
//! Symbolic non-deterministic finite automata (NFAs) with predicate-labelled
//! edges — the abstraction formalism of the paper.
//!
//! An [`Nfa`] has a finite set of states, a set of initial states and
//! transitions guarded by boolean [`amle_expr::Expr`] predicates over the
//! observable variables. The alphabet is the (possibly infinite) set of
//! valuations; a transition can be taken on an observation `v` when its guard
//! evaluates to true on `v`. All states are accepting: a trace is rejected
//! only by running into a dead end, which makes the accepted language
//! prefix-closed — exactly the setting of Section II-A of the paper.
//!
//! The crate provides acceptance checking against traces, structural
//! utilities used by the condition-extraction step (incoming/outgoing
//! predicates per state), reachability-based trimming, language-sampling
//! comparison helpers and DOT export for visual inspection (Fig. 2 of the
//! paper is regenerated this way).
//!
//! ## Example
//!
//! ```
//! use amle_automaton::Nfa;
//! use amle_expr::{Expr, Sort, Valuation, Value, VarSet};
//!
//! let mut vars = VarSet::new();
//! let on = vars.declare("on", Sort::Bool).unwrap();
//! let one = Expr::var(on, Sort::Bool);
//!
//! let mut nfa = Nfa::new();
//! let q1 = nfa.add_state();
//! let q2 = nfa.add_state();
//! nfa.mark_initial(q1);
//! nfa.add_transition(q1, q2, one.clone());
//! nfa.add_transition(q2, q2, one.clone());
//!
//! let mut v_on = Valuation::zeroed(&vars);
//! v_on.set(on, Value::Bool(true));
//! let v_off = Valuation::zeroed(&vars);
//!
//! assert!(nfa.accepts(&[v_on.clone(), v_on.clone()]));
//! assert!(!nfa.accepts(&[v_off]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod nfa;

pub use dot::display_expr;
pub use nfa::{Nfa, StateId, Transition};

#[cfg(test)]
mod proptests;
