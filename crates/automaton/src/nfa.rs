//! The symbolic NFA data structure.

use amle_expr::{simplify, Expr, Valuation};
use amle_system::Trace;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The dense index of the state.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a state id from a raw index.
    pub fn from_index(index: usize) -> Self {
        StateId(index)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A guarded transition between two automaton states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Boolean predicate over the observable variables; the transition can be
    /// taken on observation `v` iff the guard evaluates to true on `v`.
    pub guard: Expr,
}

/// A symbolic non-deterministic finite automaton over valuations.
///
/// All states are accepting; the automaton rejects by reaching a dead end, so
/// its language is prefix-closed (Definition 1 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Nfa {
    num_states: usize,
    initial: BTreeSet<StateId>,
    transitions: Vec<Transition>,
}

impl Nfa {
    /// Creates an automaton with no states.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.num_states);
        self.num_states += 1;
        id
    }

    /// Adds `n` fresh states and returns their ids in order.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Marks a state as initial.
    ///
    /// # Panics
    ///
    /// Panics if the state does not exist.
    pub fn mark_initial(&mut self, state: StateId) {
        assert!(state.0 < self.num_states, "unknown state {state}");
        self.initial.insert(state);
    }

    /// Adds a transition with the given guard.
    ///
    /// # Panics
    ///
    /// Panics if either state does not exist or the guard is not boolean.
    pub fn add_transition(&mut self, from: StateId, to: StateId, guard: Expr) {
        assert!(from.0 < self.num_states, "unknown source state {from}");
        assert!(to.0 < self.num_states, "unknown target state {to}");
        assert!(guard.sort().is_bool(), "transition guard must be boolean");
        self.transitions.push(Transition { from, to, guard });
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.initial.iter().copied()
    }

    /// All states in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states).map(StateId)
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving a state.
    pub fn transitions_from(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Transitions entering a state.
    pub fn transitions_to(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.to == state)
    }

    /// The set of guards on transitions leaving `state` — the paper's
    /// `P(j,out)`.
    pub fn outgoing_predicates(&self, state: StateId) -> Vec<Expr> {
        self.transitions_from(state)
            .map(|t| t.guard.clone())
            .collect()
    }

    /// The set of guards on transitions entering `state` — the paper's
    /// `P(j,in)`.
    pub fn incoming_predicates(&self, state: StateId) -> Vec<Expr> {
        self.transitions_to(state)
            .map(|t| t.guard.clone())
            .collect()
    }

    /// The guards on transitions leaving any initial state — the paper's
    /// `P(0,out)` used in condition (1).
    pub fn initial_outgoing_predicates(&self) -> Vec<Expr> {
        self.initial
            .iter()
            .flat_map(|q| self.outgoing_predicates(*q))
            .collect()
    }

    /// The set of states reachable from `states` on observation `v`.
    pub fn successors(&self, states: &BTreeSet<StateId>, v: &Valuation) -> BTreeSet<StateId> {
        self.transitions
            .iter()
            .filter(|t| states.contains(&t.from) && t.guard.eval_bool(v))
            .map(|t| t.to)
            .collect()
    }

    /// Checks whether the automaton admits the observation sequence.
    ///
    /// Acceptance follows the paper: a sequence `v1..vn` is admitted if there
    /// is a run `q1..q(n+1)` with `q1` initial and each step taken on `vi`.
    /// The empty sequence is admitted iff the automaton has an initial state.
    pub fn accepts(&self, observations: &[Valuation]) -> bool {
        let mut current = self.initial.clone();
        if current.is_empty() {
            return false;
        }
        for v in observations {
            current = self.successors(&current, v);
            if current.is_empty() {
                return false;
            }
        }
        true
    }

    /// Checks whether the automaton admits a [`Trace`].
    pub fn accepts_trace(&self, trace: &Trace) -> bool {
        self.accepts(trace.observations())
    }

    /// The longest prefix length of the observation sequence that is admitted.
    ///
    /// Returns `observations.len()` when the whole sequence is admitted; the
    /// value is the `j` used when splicing counterexamples in Section III-B.
    pub fn longest_accepted_prefix(&self, observations: &[Valuation]) -> usize {
        let mut current = self.initial.clone();
        if current.is_empty() {
            return 0;
        }
        for (i, v) in observations.iter().enumerate() {
            current = self.successors(&current, v);
            if current.is_empty() {
                return i;
            }
        }
        observations.len()
    }

    /// Removes states that are unreachable from the initial states (and their
    /// transitions), renumbering the remaining states densely.
    pub fn trim_unreachable(&self) -> Nfa {
        let mut reachable: BTreeSet<StateId> = self.initial.clone();
        let mut frontier: Vec<StateId> = self.initial.iter().copied().collect();
        while let Some(q) = frontier.pop() {
            for t in self.transitions_from(q) {
                if reachable.insert(t.to) {
                    frontier.push(t.to);
                }
            }
        }
        let ordered: Vec<StateId> = self.states().filter(|q| reachable.contains(q)).collect();
        let remap = |q: StateId| StateId(ordered.iter().position(|o| *o == q).expect("reachable"));
        let mut out = Nfa::new();
        out.add_states(ordered.len());
        for q in &ordered {
            if self.initial.contains(q) {
                out.mark_initial(remap(*q));
            }
        }
        for t in &self.transitions {
            if reachable.contains(&t.from) && reachable.contains(&t.to) {
                out.add_transition(remap(t.from), remap(t.to), t.guard.clone());
            }
        }
        out
    }

    /// Returns a copy of the automaton with every guard simplified.
    pub fn simplify_guards(&self) -> Nfa {
        let mut out = self.clone();
        for t in &mut out.transitions {
            t.guard = simplify(&t.guard);
        }
        out
    }

    /// Merges parallel transitions (same source and destination) into a single
    /// transition whose guard is the disjunction of the originals.
    pub fn merge_parallel_edges(&self) -> Nfa {
        let mut out = Nfa::new();
        out.add_states(self.num_states);
        for q in self.initial.iter() {
            out.mark_initial(*q);
        }
        let mut grouped: Vec<(StateId, StateId, Vec<Expr>)> = Vec::new();
        for t in &self.transitions {
            match grouped
                .iter_mut()
                .find(|(f, to, _)| *f == t.from && *to == t.to)
            {
                Some((_, _, guards)) => guards.push(t.guard.clone()),
                None => grouped.push((t.from, t.to, vec![t.guard.clone()])),
            }
        }
        for (from, to, guards) in grouped {
            out.add_transition(from, to, simplify(&Expr::or_all(guards)));
        }
        out
    }

    /// The fraction of traces in `traces` admitted by the automaton.
    ///
    /// Used both for the paper's accuracy score `d` (with ground-truth
    /// witness traces, one per Stateflow transition) and for quick coverage
    /// estimates in reports. Returns 1.0 for an empty slice.
    pub fn acceptance_ratio(&self, traces: &[Trace]) -> f64 {
        if traces.is_empty() {
            return 1.0;
        }
        let accepted = traces.iter().filter(|t| self.accepts_trace(t)).count();
        accepted as f64 / traces.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value, VarId, VarSet};

    fn bool_vars() -> (VarSet, VarId) {
        let mut vars = VarSet::new();
        let on = vars.declare("on", Sort::Bool).unwrap();
        (vars, on)
    }

    fn obs(vars: &VarSet, on: bool) -> Valuation {
        let mut v = Valuation::zeroed(vars);
        v.set(VarId::from_index(0), Value::Bool(on));
        v
    }

    /// q0 --on--> q1 --!on--> q0, q1 --on--> q1
    fn toggle_nfa(on: &Expr) -> Nfa {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q1, on.clone());
        nfa.add_transition(q1, q0, on.not());
        nfa.add_transition(q1, q1, on.clone());
        nfa
    }

    #[test]
    fn construction_and_accessors() {
        let (_, on) = bool_vars();
        let on_e = Expr::var(on, Sort::Bool);
        let nfa = toggle_nfa(&on_e);
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(nfa.num_transitions(), 3);
        assert_eq!(nfa.initial_states().count(), 1);
        assert_eq!(nfa.outgoing_predicates(StateId(1)).len(), 2);
        assert_eq!(nfa.incoming_predicates(StateId(0)).len(), 1);
        assert_eq!(nfa.initial_outgoing_predicates().len(), 1);
        assert_eq!(nfa.states().count(), 2);
        assert_eq!(nfa.transitions_to(StateId(1)).count(), 2);
    }

    #[test]
    fn acceptance() {
        let (vars, _) = bool_vars();
        let on_e = Expr::var(VarId::from_index(0), Sort::Bool);
        let nfa = toggle_nfa(&on_e);
        // on, on, off is admitted; off.. from the initial state is not.
        assert!(nfa.accepts(&[obs(&vars, true), obs(&vars, true), obs(&vars, false)]));
        assert!(!nfa.accepts(&[obs(&vars, false)]));
        assert!(nfa.accepts(&[]));
        // Dead end after returning to q0 on an immediate `off`.
        assert!(!nfa.accepts(&[obs(&vars, true), obs(&vars, false), obs(&vars, false)]));
    }

    #[test]
    fn empty_automaton_rejects_everything() {
        let nfa = Nfa::new();
        assert!(!nfa.accepts(&[]));
        let mut nfa = Nfa::new();
        nfa.add_state();
        // A state exists but is not initial.
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn longest_prefix() {
        let (vars, _) = bool_vars();
        let on_e = Expr::var(VarId::from_index(0), Sort::Bool);
        let nfa = toggle_nfa(&on_e);
        let seq = [obs(&vars, true), obs(&vars, false), obs(&vars, false)];
        assert_eq!(nfa.longest_accepted_prefix(&seq), 2);
        let seq = [obs(&vars, false)];
        assert_eq!(nfa.longest_accepted_prefix(&seq), 0);
        let seq = [obs(&vars, true), obs(&vars, true)];
        assert_eq!(nfa.longest_accepted_prefix(&seq), 2);
    }

    #[test]
    fn prefix_closure_property() {
        let (vars, _) = bool_vars();
        let on_e = Expr::var(VarId::from_index(0), Sort::Bool);
        let nfa = toggle_nfa(&on_e);
        let seq = vec![
            obs(&vars, true),
            obs(&vars, true),
            obs(&vars, false),
            obs(&vars, true),
        ];
        assert!(nfa.accepts(&seq));
        for k in 0..=seq.len() {
            assert!(nfa.accepts(&seq[..k]), "prefix of length {k} rejected");
        }
    }

    #[test]
    fn trim_unreachable_states() {
        let (_, on) = bool_vars();
        let on_e = Expr::var(on, Sort::Bool);
        let mut nfa = toggle_nfa(&on_e);
        let orphan = nfa.add_state();
        nfa.add_transition(orphan, StateId(0), on_e.clone());
        assert_eq!(nfa.num_states(), 3);
        let trimmed = nfa.trim_unreachable();
        assert_eq!(trimmed.num_states(), 2);
        assert_eq!(trimmed.num_transitions(), 3);
        assert_eq!(trimmed.initial_states().count(), 1);
    }

    #[test]
    fn merge_parallel_edges_disjoins_guards() {
        let (vars, on) = bool_vars();
        let on_e = Expr::var(on, Sort::Bool);
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q1, on_e.clone());
        nfa.add_transition(q0, q1, on_e.not());
        let merged = nfa.merge_parallel_edges();
        assert_eq!(merged.num_transitions(), 1);
        assert!(merged.accepts(&[obs(&vars, true)]));
        assert!(merged.accepts(&[obs(&vars, false)]));
    }

    #[test]
    fn simplify_guards_preserves_language() {
        let (vars, on) = bool_vars();
        let on_e = Expr::var(on, Sort::Bool);
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q0, Expr::true_().and(&on_e).or(&Expr::false_()));
        let simplified = nfa.simplify_guards();
        assert_eq!(simplified.transitions()[0].guard.to_string(), "x0");
        assert!(simplified.accepts(&[obs(&vars, true)]));
        assert!(!simplified.accepts(&[obs(&vars, false)]));
    }

    #[test]
    fn acceptance_ratio() {
        let (vars, _) = bool_vars();
        let on_e = Expr::var(VarId::from_index(0), Sort::Bool);
        let nfa = toggle_nfa(&on_e);
        let good: Trace = [obs(&vars, true), obs(&vars, false)].into_iter().collect();
        let bad: Trace = [obs(&vars, false)].into_iter().collect();
        assert_eq!(nfa.acceptance_ratio(&[good.clone(), bad.clone()]), 0.5);
        assert_eq!(nfa.acceptance_ratio(&[good]), 1.0);
        assert_eq!(nfa.acceptance_ratio(&[]), 1.0);
        assert!(!nfa.accepts_trace(&bad));
    }

    #[test]
    #[should_panic(expected = "unknown source state")]
    fn transition_with_unknown_state_panics() {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        nfa.add_transition(StateId(5), q0, Expr::true_());
    }

    #[test]
    #[should_panic(expected = "must be boolean")]
    fn non_boolean_guard_panics() {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        nfa.add_transition(q0, q0, Expr::int_val(1, 4));
    }
}
