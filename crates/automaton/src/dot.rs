//! DOT (Graphviz) export of symbolic automata.

use crate::Nfa;
use amle_expr::{Expr, ExprKind, VarSet};
use std::fmt::Write as _;

impl Nfa {
    /// Renders the automaton in Graphviz DOT syntax, using variable names
    /// from `vars` inside the guards.
    ///
    /// The output mirrors the style of Fig. 2 in the paper: circular nodes,
    /// initial states marked with an incoming arrow from a hidden point node,
    /// guards as edge labels.
    pub fn to_dot(&self, vars: &VarSet) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph abstraction {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        for q in self.initial_states() {
            let _ = writeln!(out, "  __init_{} [shape=point, style=invis];", q.index());
            let _ = writeln!(out, "  __init_{} -> q{};", q.index(), q.index());
        }
        for q in self.states() {
            let _ = writeln!(out, "  q{} [label=\"q{}\"];", q.index(), q.index());
        }
        for t in self.transitions() {
            let _ = writeln!(
                out,
                "  q{} -> q{} [label=\"{}\"];",
                t.from.index(),
                t.to.index(),
                escape(&render_guard(&t.guard, vars))
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Renders an expression with variable names substituted for the `x<i>`
/// placeholders of the default [`std::fmt::Display`] implementation.
///
/// Used for edge labels in DOT output and for printing extracted invariants
/// in reports.
pub fn display_expr(guard: &Expr, vars: &VarSet) -> String {
    render_expr(guard, vars)
}

pub(crate) fn render_guard(guard: &Expr, vars: &VarSet) -> String {
    render_expr(guard, vars)
}

fn render_expr(e: &Expr, vars: &VarSet) -> String {
    match e.kind() {
        ExprKind::Const(_) => e.to_string(),
        ExprKind::Var(id) => vars
            .info(*id)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| id.to_string()),
        ExprKind::Unary(op, a) => {
            let symbol = match op {
                amle_expr::UnOp::Not => "!",
                amle_expr::UnOp::Neg => "-",
            };
            format!("{symbol}({})", render_expr(a, vars))
        }
        ExprKind::Binary(op, a, b) => format!(
            "({} {} {})",
            render_expr(a, vars),
            op.symbol(),
            render_expr(b, vars)
        ),
        ExprKind::Ite(c, t, els) => format!(
            "(if {} then {} else {})",
            render_expr(c, vars),
            render_expr(t, vars),
            render_expr(els, vars)
        ),
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Expr, Sort, VarSet};

    #[test]
    fn dot_output_contains_states_edges_and_names() {
        let mut vars = VarSet::new();
        let temp = vars.declare("inp_temp", Sort::int(8)).unwrap();
        let guard = Expr::var(temp, Sort::int(8)).gt(&Expr::int_val(75, 8));

        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q1, guard);

        let dot = nfa.to_dot(&vars);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("q0 -> q1"));
        assert!(dot.contains("inp_temp"));
        assert!(dot.contains("__init_0 -> q0"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn guard_rendering_uses_variable_names_and_variants() {
        let mut vars = VarSet::new();
        let mode_sort = Sort::enumeration("Mode", ["Off", "On"]);
        let mode = vars.declare("mode", mode_sort.clone()).unwrap();
        let b = vars.declare("flag", Sort::Bool).unwrap();
        let guard = Expr::var(mode, mode_sort.clone())
            .eq(&Expr::enum_val(&mode_sort, "On"))
            .and(&Expr::var(b, Sort::Bool).not());
        let text = render_guard(&guard, &vars);
        assert_eq!(text, "((mode == On) && !(flag))");
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
