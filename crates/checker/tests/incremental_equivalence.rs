//! Differential tests of the incremental checker sessions.
//!
//! The persistent, assumption-activated sessions must produce exactly the
//! verdicts of the original from-scratch re-encoding
//! ([`CheckerMode::FreshPerQuery`]) on every benchmark of the suite, and the
//! aggregated backend statistics must grow monotonically as queries are
//! issued at increasing k-induction bounds.

use amle_benchmarks::all_benchmarks;
use amle_checker::{CheckResult, CheckerMode, KInductionChecker, SpuriousResult};
use amle_expr::{Expr, Valuation, VarId};

/// State formulas to probe reachability with: the initial valuation plus
/// valuations observed along the benchmark's witness traces (all genuinely
/// reachable).
fn probe_formulas(
    checker: &KInductionChecker<'_>,
    observables: &[VarId],
    witnesses: &[amle_system::Trace],
    initial: &Valuation,
) -> Vec<Expr> {
    let mut formulas = vec![checker.state_formula(initial, observables)];
    for trace in witnesses.iter().take(3) {
        for obs in trace.observations().iter().take(3) {
            formulas.push(checker.state_formula(obs, observables));
        }
    }
    formulas.truncate(6);
    formulas
}

#[test]
fn incremental_and_fresh_sessions_agree_on_every_benchmark() {
    for benchmark in all_benchmarks() {
        let system = &benchmark.system;
        let observables = &benchmark.observables;
        let mut incremental = KInductionChecker::new(system);
        let mut fresh = KInductionChecker::with_mode(system, CheckerMode::FreshPerQuery);
        assert_eq!(incremental.mode(), CheckerMode::Incremental);
        assert_eq!(fresh.mode(), CheckerMode::FreshPerQuery);

        let initial = system.initial_valuation();
        let k = benchmark.k.clamp(1, 8);

        // Condition checks: truth, a tautology and a contradiction-shaped
        // conclusion, plus per-observable constancy claims (usually violated,
        // exercising the counterexample path).
        let mut conditions = vec![
            (Expr::true_(), Expr::true_()),
            (Expr::true_(), Expr::false_()),
        ];
        for id in observables.iter().take(2) {
            let sort = system.vars().sort(*id).clone();
            let var = Expr::var(*id, sort.clone());
            let value = Expr::constant(&sort, initial.value(*id)).unwrap();
            conditions.push((Expr::true_(), var.eq(&value)));
            conditions.push((var.eq(&value), var.eq(&value)));
        }

        for (assumption, conclusion) in &conditions {
            let a = incremental.check_condition(assumption, &[], conclusion);
            let b = fresh.check_condition(assumption, &[], conclusion);
            // Verdicts must agree; specific counterexample transitions may
            // legitimately differ, but both must be genuine transitions.
            assert_eq!(
                a.is_valid(),
                b.is_valid(),
                "condition verdict mismatch on {} for {:?} => {:?}",
                benchmark.name,
                assumption,
                conclusion
            );
            for result in [&a, &b] {
                if let CheckResult::Violated { from, to } = result {
                    assert!(
                        system.is_transition(from, to),
                        "spurious counterexample transition on {}",
                        benchmark.name
                    );
                }
            }
        }

        // Spurious checks over reachable/perturbed state formulas.
        for formula in probe_formulas(&incremental, observables, &benchmark.witnesses, &initial) {
            let a = incremental.check_spurious(&formula, k);
            let b = fresh.check_spurious(&formula, k);
            assert_eq!(
                a, b,
                "spurious verdict mismatch on {} (k = {})",
                benchmark.name, k
            );
            // Witness-trace states are genuinely reachable; k-induction is a
            // sound unreachability proof, so it must never call them
            // spurious.
            assert_ne!(
                a,
                SpuriousResult::Spurious,
                "reachable state proved spurious on {}",
                benchmark.name
            );
        }
    }
}

#[test]
fn solver_stats_grow_monotonically_across_bounds() {
    let benchmark = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "HomeClimateControlCooler")
        .expect("suite includes the cooler");
    let system = &benchmark.system;
    let mut checker = KInductionChecker::new(system);
    let initial = system.initial_valuation();
    let formula = checker.state_formula(&initial, &benchmark.observables);

    let mut last = checker.stats();
    for k in 1..=6 {
        let _ = checker.check_spurious(&formula, k);
        let stats = checker.stats();
        assert!(stats.solver.solve_calls > last.solver.solve_calls);
        assert!(stats.solver.decisions >= last.solver.decisions);
        assert!(stats.solver.propagations >= last.solver.propagations);
        assert!(stats.solver.conflicts >= last.solver.conflicts);
        assert!(stats.solver.solve_time >= last.solver.solve_time);
        assert!(stats.sat_queries > last.sat_queries);
        last = stats;
    }
    assert_eq!(last.spurious_checks, 6);
    assert_eq!(checker.backend_name(), "cdcl");
}
