//! Property-based cross-validation of the SAT-based checker against the
//! explicit-state oracle and against trace semantics.

use crate::{CheckResult, ExplicitChecker, KInductionChecker, SpuriousResult};
use amle_expr::{Expr, Sort, Value};
use amle_system::{System, SystemBuilder};
use proptest::prelude::*;

/// A small parametric controller: mod-N counter with enable, plus a flag
/// tracking whether the counter passed a threshold.
fn parametric_system(n: i64, threshold: i64) -> System {
    let bits = 4;
    let mut b = SystemBuilder::new();
    let en = b.input("en", Sort::Bool).unwrap();
    let c = b.state("c", Sort::int(bits), Value::Int(0)).unwrap();
    let flag = b.state("flag", Sort::Bool, Value::Bool(false)).unwrap();
    let ce = b.var(c);
    let wrapped = ce
        .add(&Expr::int_val(1, bits))
        .ge(&Expr::int_val(n, bits))
        .ite(&Expr::int_val(0, bits), &ce.add(&Expr::int_val(1, bits)));
    let next_c = b.var(en).ite(&wrapped, &ce);
    b.update(c, next_c.clone()).unwrap();
    b.update(flag, next_c.ge(&Expr::int_val(threshold, bits)))
        .unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn violated_conditions_produce_real_transitions(n in 3i64..10, threshold in 1i64..8, bound in 0i64..9) {
        let sys = parametric_system(n, threshold);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        let mut checker = KInductionChecker::new(&sys);
        // "The counter is never `bound` after one step" — may or may not hold.
        let conclusion = ce.ne(&Expr::int_val(bound, 4));
        match checker.check_condition(&Expr::true_(), &[], &conclusion) {
            CheckResult::Valid => {}
            CheckResult::Violated { from, to } => {
                prop_assert!(sys.is_transition(&from, &to));
                prop_assert_eq!(to.value(c).to_i64(), bound);
            }
        }
    }

    #[test]
    fn valid_conditions_hold_on_all_reachable_transitions(n in 3i64..8, threshold in 1i64..6) {
        let sys = parametric_system(n, threshold);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        let mut sat_checker = KInductionChecker::new(&sys);
        let mut explicit = ExplicitChecker::new(&sys, 10_000);
        // Check a family of candidate invariants; whenever the k-induction
        // checker says Valid, the explicit oracle must agree on reachable
        // transitions (the converse need not hold).
        for bound in 0..n + 2 {
            let conclusion = ce.lt(&Expr::int_val(bound.min(15), 4));
            let sat_valid = sat_checker
                .check_condition(&Expr::true_(), &[], &conclusion)
                .is_valid();
            if sat_valid {
                prop_assert_eq!(
                    explicit.condition_holds_on_reachable(&Expr::true_(), &conclusion),
                    Some(true)
                );
            }
        }
    }

    #[test]
    fn spurious_verdicts_agree_with_explicit_reachability(n in 3i64..8, threshold in 1i64..6, target in 0i64..10) {
        let sys = parametric_system(n, threshold);
        let c = sys.vars().lookup("c").unwrap();
        let flag = sys.vars().lookup("flag").unwrap();
        let mut sat_checker = KInductionChecker::new(&sys);
        let mut explicit = ExplicitChecker::new(&sys, 10_000);

        let mut state = sys.initial_valuation();
        state.set(c, Value::Int(target.min(15)));
        state.set(flag, Value::Bool(target >= threshold && target < n));
        let formula = sat_checker.state_formula(&state, &[c, flag]);
        // A bound of 2*n exceeds the diameter of this system.
        let verdict = sat_checker.check_spurious(&formula, (2 * n) as usize);
        let truly_reachable = explicit.is_reachable(&formula).unwrap();
        match verdict {
            SpuriousResult::Spurious => prop_assert!(!truly_reachable, "spurious verdict for a reachable state"),
            SpuriousResult::Reachable => prop_assert!(truly_reachable, "reachable verdict for an unreachable state"),
            SpuriousResult::Inconclusive => {}
        }
    }

    #[test]
    fn explicit_engine_matches_kinduction_exactly(n in 3i64..10, threshold in 1i64..8, bound in 0i64..9) {
        // The production explicit engine decides the same formulas as the
        // SAT engine — same verdicts AND the same canonical counterexample
        // transitions — for both query shapes.
        let sys = parametric_system(n, threshold);
        let c = sys.vars().lookup("c").unwrap();
        let flag = sys.vars().lookup("flag").unwrap();
        let ce = sys.var(c);
        let mut sat_checker = KInductionChecker::new(&sys);
        let mut explicit = ExplicitChecker::new(&sys, 100_000);

        let conclusion = ce.ne(&Expr::int_val(bound, 4));
        let mut budget = u64::MAX;
        prop_assert_eq!(
            explicit
                .check_condition_budgeted(&Expr::true_(), &[], std::slice::from_ref(&conclusion), &mut budget)
                .unwrap(),
            sat_checker.check_condition(&Expr::true_(), &[], &conclusion)
        );

        let mut state = sys.initial_valuation();
        state.set(c, Value::Int(bound.min(15)));
        state.set(flag, Value::Bool(bound >= threshold));
        let formula = sat_checker.state_formula(&state, &[c, flag]);
        for k in [1usize, 3, (2 * n) as usize] {
            let mut budget = u64::MAX;
            prop_assert_eq!(
                explicit.check_spurious_budgeted(&formula, k, &mut budget).unwrap(),
                sat_checker.check_spurious(&formula, k),
                "k = {}", k
            );
        }
    }
}
