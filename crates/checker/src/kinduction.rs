//! The SAT-based bounded model checker with k-induction.

use amle_bitblast::Encoder;
use amle_expr::{Expr, Valuation, VarId};
use amle_sat::SolveResult;
use amle_system::System;

/// Outcome of a single condition check (Fig. 3a of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The condition holds on the system: for every transition from a state
    /// satisfying the assumption, the conclusion holds in the successor.
    Valid,
    /// The condition is violated; the counterexample is the offending
    /// transition `(v_t, v_{t+1})`.
    Violated {
        /// The pre-state of the counterexample transition.
        from: Valuation,
        /// The post-state of the counterexample transition.
        to: Valuation,
    },
}

impl CheckResult {
    /// Returns `true` if the condition holds.
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckResult::Valid)
    }
}

/// Outcome of a spurious-counterexample check (Fig. 3b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpuriousResult {
    /// Both the base and the step case of the k-induction proof hold: the
    /// state is unreachable and the counterexample is spurious.
    Spurious,
    /// The base case failed: the state is reachable within `k` steps from an
    /// initial state, so the counterexample is definitely valid.
    Reachable,
    /// Only the step case failed: no conclusive evidence either way. The
    /// paper treats such counterexamples as valid but records them.
    Inconclusive,
}

/// Aggregate statistics of a checker instance (for the `%Tm` and runtime
/// columns of the evaluation tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Number of SAT queries issued.
    pub sat_queries: u64,
    /// Number of condition checks performed.
    pub condition_checks: u64,
    /// Number of spurious-counterexample checks performed.
    pub spurious_checks: u64,
    /// Total number of CNF clauses across all queries.
    pub total_clauses: u64,
}

/// Bounded model checker with k-induction over a [`System`].
#[derive(Debug)]
pub struct KInductionChecker<'a> {
    system: &'a System,
    stats: CheckerStats,
}

impl<'a> KInductionChecker<'a> {
    /// Creates a checker for the given system.
    pub fn new(system: &'a System) -> Self {
        KInductionChecker {
            system,
            stats: CheckerStats::default(),
        }
    }

    /// The system under check.
    pub fn system(&self) -> &System {
        self.system
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    fn new_encoder(&self) -> Encoder {
        Encoder::new(self.system.vars())
    }

    /// Encodes one unrolling of the transition relation between `frame` and
    /// `frame + 1`: every state variable's next value is its update
    /// expression over `frame`, every input variable in `frame + 1` respects
    /// its range.
    fn encode_transition(&self, enc: &mut Encoder, frame: usize) {
        for id in self.system.state_vars() {
            enc.assert_var_equals_expr_across(frame + 1, *id, frame, self.system.update(*id));
        }
        let input_constraints = self.system.input_constraints_expr();
        enc.assert_expr(frame + 1, &input_constraints);
    }

    fn encode_input_constraints(&self, enc: &mut Encoder, frame: usize) {
        let input_constraints = self.system.input_constraints_expr();
        enc.assert_expr(frame, &input_constraints);
    }

    fn solve(&mut self, enc: &Encoder) -> (SolveResult, Vec<bool>) {
        self.stats.sat_queries += 1;
        self.stats.total_clauses += enc.cnf().num_clauses() as u64;
        let mut solver = enc.cnf().to_solver();
        let result = solver.solve();
        (result, solver.model())
    }

    /// Checks a condition of the form
    /// `assume(r); X' = f(X); assert(s)` (Fig. 3a): is there a transition
    /// from a state satisfying `r` (and none of the `blocked` states) whose
    /// successor violates `s`?
    ///
    /// `blocked` holds the state formulas `s'` of counterexamples already
    /// proven spurious; they strengthen the assumption to `r ∧ ¬s'` exactly as
    /// in Section III-C of the paper.
    pub fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        conclusion: &Expr,
    ) -> CheckResult {
        self.stats.condition_checks += 1;
        let mut enc = self.new_encoder();
        enc.assert_expr(0, assumption);
        for blocked_state in blocked {
            enc.assert_not_expr(0, blocked_state);
        }
        self.encode_input_constraints(&mut enc, 0);
        self.encode_transition(&mut enc, 0);
        enc.assert_not_expr(1, conclusion);
        let (result, model) = self.solve(&enc);
        match result {
            SolveResult::Unsat => CheckResult::Valid,
            SolveResult::Sat => CheckResult::Violated {
                from: enc.decode_frame(&model, 0),
                to: enc.decode_frame(&model, 1),
            },
        }
    }

    /// Checks the initial-state condition (1) of the paper:
    /// `v ⊨ Init ∧ (v, v') ⊨ R ⟹ v' ⊨ ⋁ outgoing`.
    pub fn check_initial_condition(&mut self, outgoing: &[Expr]) -> CheckResult {
        let conclusion = Expr::or_all(outgoing.iter().cloned());
        let init = self.system.init_expr();
        self.check_condition(&init, &[], &conclusion)
    }

    /// Checks a per-state condition (2) of the paper for one incoming
    /// predicate `p_i`:
    /// `v ⊨ p_i ∧ (v, v') ⊨ R ⟹ v' ⊨ ⋁ outgoing`.
    pub fn check_state_condition(
        &mut self,
        incoming: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        let conclusion = Expr::or_all(outgoing.iter().cloned());
        self.check_condition(incoming, blocked, &conclusion)
    }

    /// The state formula `s' := ⋀ (x_i = v(x_i))` over the given variables,
    /// used both to block spurious states and to query reachability.
    pub fn state_formula(&self, state: &Valuation, over: &[VarId]) -> Expr {
        let vars = self.system.vars();
        Expr::and_all(over.iter().map(|id| {
            let sort = vars.sort(*id).clone();
            let value = Expr::constant(&sort, state.value(*id)).expect("trace value fits sort");
            Expr::var(*id, sort).eq(&value)
        }))
    }

    /// Spurious-counterexample check (Fig. 3b): decides by k-induction with
    /// bound `k` whether the state characterised by `state_formula` is
    /// unreachable from the initial states.
    ///
    /// * base case: no path of length `0..=k` from an `Init` state reaches the
    ///   state — checked by asserting `Init(X_0)`, unrolling `k` transitions
    ///   and asserting that the state holds at some frame;
    /// * step case: there is no path of `k` consecutive non-`state` valuations
    ///   followed by a transition into the state.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult {
        assert!(k > 0, "k-induction bound must be positive");
        self.stats.spurious_checks += 1;

        // Base case: Init(X0) ∧ R-chain ∧ (state at some frame 0..=k).
        let mut enc = self.new_encoder();
        enc.assert_expr(0, &self.system.init_expr());
        for frame in 0..k {
            self.encode_transition(&mut enc, frame);
        }
        // "The state holds in at least one frame of the unrolling": a single
        // clause over the per-frame output literals.
        let frame_lits: Vec<_> = (0..=k)
            .map(|frame| enc.encode_bool(frame, state_formula))
            .collect();
        enc.assert_any(&frame_lits);
        let (base, _) = self.solve(&enc);
        if base == SolveResult::Sat {
            return SpuriousResult::Reachable;
        }

        // Step case: ¬state(X_0..k-1) ∧ R-chain ∧ state(X_k).
        let mut enc = self.new_encoder();
        self.encode_input_constraints(&mut enc, 0);
        for frame in 0..k {
            enc.assert_not_expr(frame, state_formula);
            self.encode_transition(&mut enc, frame);
        }
        enc.assert_expr(k, state_formula);
        let (step, _) = self.solve(&enc);
        if step == SolveResult::Unsat {
            SpuriousResult::Spurious
        } else {
            SpuriousResult::Inconclusive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::SystemBuilder;

    /// A saturating counter 0..=5 driven by an enable input; `flag` is true
    /// exactly when the counter is at its limit.
    fn saturating_counter() -> System {
        let mut b = SystemBuilder::new();
        b.name("sat_counter");
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        let flag = b.state("flag", Sort::Bool, Value::Bool(false)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(5, 4))
            .ite(&ce.add(&Expr::int_val(1, 4)), &ce);
        let next_c = b.var(en).ite(&bumped, &ce);
        b.update(c, next_c.clone()).unwrap();
        b.update(flag, next_c.ge(&Expr::int_val(5, 4))).unwrap();
        b.build().unwrap()
    }

    fn var_expr(sys: &System, name: &str) -> Expr {
        let id = sys.vars().lookup(name).unwrap();
        sys.var(id)
    }

    #[test]
    fn valid_condition_is_proved() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        // From any state with c <= 5, after one step c <= 5 still holds
        // (the counter saturates).
        let c = var_expr(&sys, "c");
        let assumption = c.le(&Expr::int_val(5, 4));
        let conclusion = c.le(&Expr::int_val(5, 4));
        assert!(checker
            .check_condition(&assumption, &[], &conclusion)
            .is_valid());
        assert_eq!(checker.stats().condition_checks, 1);
        assert!(checker.stats().sat_queries >= 1);
    }

    #[test]
    fn violated_condition_returns_a_real_transition() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        // "After one step the counter is never 3" is violated from c = 2 with
        // the enable input set.
        let c = var_expr(&sys, "c");
        let assumption = Expr::true_();
        let conclusion = c.ne(&Expr::int_val(3, 4));
        match checker.check_condition(&assumption, &[], &conclusion) {
            CheckResult::Valid => panic!("condition should be violated"),
            CheckResult::Violated { from, to } => {
                assert!(sys.is_transition(&from, &to), "counterexample must be a transition");
                let c_id = sys.vars().lookup("c").unwrap();
                assert_eq!(to.value(c_id).to_i64(), 3);
            }
        }
    }

    #[test]
    fn blocking_states_strengthens_the_assumption() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c = var_expr(&sys, "c");
        // Without blocking, "next c != 3" is violated (from c = 2).
        let conclusion = c.ne(&Expr::int_val(3, 4));
        let unblocked = checker.check_condition(&Expr::true_(), &[], &conclusion);
        assert!(!unblocked.is_valid());
        // Blocking both offending pre-states (c = 2 with the counter enabled
        // and c = 3 idling in place) makes the check pass.
        let blocked = vec![c.eq(&Expr::int_val(2, 4)), c.eq(&Expr::int_val(3, 4))];
        assert!(checker
            .check_condition(&Expr::true_(), &blocked, &conclusion)
            .is_valid());
    }

    #[test]
    fn initial_condition_check() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c = var_expr(&sys, "c");
        // From Init (c = 0), one step leads to c = 0 or c = 1.
        let outgoing = vec![
            c.eq(&Expr::int_val(0, 4)),
            c.eq(&Expr::int_val(1, 4)),
        ];
        assert!(checker.check_initial_condition(&outgoing).is_valid());
        // Claiming the successor is always exactly 1 is violated (en = false).
        let too_strong = vec![c.eq(&Expr::int_val(1, 4))];
        assert!(!checker.check_initial_condition(&too_strong).is_valid());
    }

    #[test]
    fn unreachable_state_is_spurious() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let flag_id = sys.vars().lookup("flag").unwrap();
        // flag = true with c = 0 is unreachable: flag is true only when the
        // counter has saturated.
        let mut ghost = sys.initial_valuation();
        ghost.set(c_id, Value::Int(0));
        ghost.set(flag_id, Value::Bool(true));
        let formula = checker.state_formula(&ghost, &[c_id, flag_id]);
        assert_eq!(checker.check_spurious(&formula, 8), SpuriousResult::Spurious);
        assert_eq!(checker.stats().spurious_checks, 1);
    }

    #[test]
    fn reachable_state_is_detected_in_base_case() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let mut target = sys.initial_valuation();
        target.set(c_id, Value::Int(3));
        let formula = checker.state_formula(&target, &[c_id]);
        assert_eq!(checker.check_spurious(&formula, 5), SpuriousResult::Reachable);
    }

    #[test]
    fn too_small_bound_is_inconclusive_or_reachable_but_never_spurious_for_reachable_states() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        // c = 5 is reachable but only after 5 steps; with k = 2 the base case
        // cannot find it and the step case cannot exclude it.
        let mut target = sys.initial_valuation();
        target.set(c_id, Value::Int(5));
        let formula = checker.state_formula(&target, &[c_id]);
        let result = checker.check_spurious(&formula, 2);
        assert_ne!(result, SpuriousResult::Spurious);
        // With a sufficiently large bound the base case finds the path.
        assert_eq!(checker.check_spurious(&formula, 6), SpuriousResult::Reachable);
    }

    #[test]
    fn state_formula_mentions_only_requested_variables() {
        let sys = saturating_counter();
        let checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let v = sys.initial_valuation();
        let formula = checker.state_formula(&v, &[c_id]);
        assert_eq!(formula.free_vars().len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bound_is_rejected() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let _ = checker.check_spurious(&Expr::true_(), 0);
    }
}
