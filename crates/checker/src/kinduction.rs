//! The SAT-based bounded model checker with k-induction.
//!
//! The checker keeps **persistent incremental solver sessions** — one per
//! query shape — instead of bit-blasting a fresh CNF per query:
//!
//! * the *condition session* holds one unrolling of the transition relation
//!   (frames 0 → 1); per-query assumption/blocked/conclusion constraints are
//!   selected with assumption literals, so repeated condition checks share
//!   the transition clauses, Tseitin definitions and everything the solver
//!   learnt about them. The conclusion disjunction `⋁ outgoing'` is
//!   **delta-encoded**: each disjunct is Tseitin-encoded once, keyed by its
//!   canonical [`ExprId`] in a persistent ledger, and a query assumes the
//!   negation of exactly its disjuncts (`¬(⋁ dᵢ) = ⋀ ¬dᵢ`). An iteration
//!   that adds 3 outgoing transitions to a state with 80 existing ones
//!   therefore encodes 3 disjuncts, not 83 — and no or-chain spine at all.
//!   Disjuncts dropped from a later query are retracted by simply not
//!   assuming them; their definitional clauses stay but never bite;
//! * the *base session* holds `Init(X₀)` plus a growing unrolling of the
//!   transition relation; "the target state is hit within `k` steps" is
//!   **chain-encoded**: one activation literal per `(formula, frame)` pair
//!   with the clause `act_f → lit_f ∨ act_{f-1}`, assumed only at `act_k`.
//!   Growing `k → k+1` for a known formula therefore encodes one new frame
//!   literal and one chaining clause instead of a fresh clause re-listing
//!   every frame `0..=k+1`;
//! * the *step session* holds the same unrolling without `Init`; the
//!   k-induction step case is expressed purely through assumptions
//!   (`¬state` on frames `0..k`, `state` on frame `k`).
//!
//! Because the transition relation is a total function of the previous frame
//! and input ranges are non-empty, a longer unrolling never constrains a
//! shorter query — frames beyond `k` simply extend any witness — so sessions
//! can grow monotonically across queries with different bounds.
//!
//! [`CheckerMode::FreshPerQuery`] retains the original blob-per-query
//! behaviour as a differential-testing oracle.

use amle_bitblast::Encoder;
use amle_expr::{Expr, ExprId, Valuation, Value, VarId};
use amle_sat::{
    cdcl_backend, ActivationLedger, ClauseSink, IncrementalSolver, Lit, SolveResult, SolverConfig,
    SolverStats,
};
use amle_system::System;
use std::fmt;

/// Outcome of a single condition check (Fig. 3a of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The condition holds on the system: for every transition from a state
    /// satisfying the assumption, the conclusion holds in the successor.
    Valid,
    /// The condition is violated; the counterexample is the offending
    /// transition `(v_t, v_{t+1})`.
    Violated {
        /// The pre-state of the counterexample transition.
        from: Valuation,
        /// The post-state of the counterexample transition.
        to: Valuation,
    },
}

impl CheckResult {
    /// Returns `true` if the condition holds.
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckResult::Valid)
    }
}

/// Outcome of a spurious-counterexample check (Fig. 3b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpuriousResult {
    /// Both the base and the step case of the k-induction proof hold: the
    /// state is unreachable and the counterexample is spurious.
    Spurious,
    /// The base case failed: the state is reachable within `k` steps from an
    /// initial state, so the counterexample is definitely valid.
    Reachable,
    /// Only the step case failed: no conclusive evidence either way. The
    /// paper treats such counterexamples as valid but records them.
    Inconclusive,
}

/// Aggregate statistics of a checker instance (for the `%Tm` and runtime
/// columns of the evaluation tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Number of SAT queries issued.
    pub sat_queries: u64,
    /// Number of condition checks performed.
    pub condition_checks: u64,
    /// Number of spurious-counterexample checks performed.
    pub spurious_checks: u64,
    /// Total number of CNF clauses live in the backing solvers, summed over
    /// queries (a proxy for encoding work; with incremental sessions the
    /// per-query increment is what shrinks).
    pub total_clauses: u64,
    /// Queries (condition + spurious) answered by the k-induction engine.
    /// With a portfolio oracle this attributes each query to the engine that
    /// actually produced the verdict.
    pub kinduction_queries: u64,
    /// Queries (condition + spurious) answered by the explicit-state engine.
    pub explicit_queries: u64,
    /// Concrete work units (state and transition evaluations) spent by the
    /// explicit-state engine — its analogue of `sat_queries`.
    pub explicit_work: u64,
    /// Queries the portfolio routed to the explicit engine whose work budget
    /// ran out, forcing a k-induction re-run.
    pub explicit_fallbacks: u64,
    /// Conclusion disjuncts Tseitin-encoded for the first time in a
    /// condition session (delta mode: per distinct canonical disjunct; full
    /// mode: every disjunct of a first-seen conclusion).
    pub disj_encoded: u64,
    /// Conclusion disjuncts answered from the session's persistent ledger
    /// without re-encoding.
    pub disj_reused: u64,
    /// Base-session frame disjuncts encoded for the first time (delta mode:
    /// one chain link per new `(formula, frame)` pair; full mode: every frame
    /// of a first-seen `(formula, k)` query).
    pub frames_encoded: u64,
    /// Base-session frame disjuncts answered from the activation ledger
    /// without re-encoding.
    pub frames_reused: u64,
    /// Aggregated backend solver statistics across all sessions, including
    /// sessions already retired.
    pub solver: SolverStats,
}

impl std::ops::AddAssign for CheckerStats {
    fn add_assign(&mut self, rhs: CheckerStats) {
        self.sat_queries += rhs.sat_queries;
        self.condition_checks += rhs.condition_checks;
        self.spurious_checks += rhs.spurious_checks;
        self.total_clauses += rhs.total_clauses;
        self.kinduction_queries += rhs.kinduction_queries;
        self.explicit_queries += rhs.explicit_queries;
        self.explicit_work += rhs.explicit_work;
        self.explicit_fallbacks += rhs.explicit_fallbacks;
        self.disj_encoded += rhs.disj_encoded;
        self.disj_reused += rhs.disj_reused;
        self.frames_encoded += rhs.frames_encoded;
        self.frames_reused += rhs.frames_reused;
        self.solver += rhs.solver;
    }
}

impl std::ops::Add for CheckerStats {
    type Output = CheckerStats;

    fn add(mut self, rhs: CheckerStats) -> CheckerStats {
        self += rhs;
        self
    }
}

impl CheckerStats {
    /// The work done since an earlier snapshot of the same (accumulating)
    /// checker — counters are differenced, the embedded solver gauge passes
    /// through via [`SolverStats::since`]. This is what lets a long-lived
    /// oracle session attribute per-refinement work: snapshot before, `since`
    /// after.
    pub fn since(&self, earlier: &CheckerStats) -> CheckerStats {
        CheckerStats {
            sat_queries: self.sat_queries.saturating_sub(earlier.sat_queries),
            condition_checks: self
                .condition_checks
                .saturating_sub(earlier.condition_checks),
            spurious_checks: self.spurious_checks.saturating_sub(earlier.spurious_checks),
            total_clauses: self.total_clauses.saturating_sub(earlier.total_clauses),
            kinduction_queries: self
                .kinduction_queries
                .saturating_sub(earlier.kinduction_queries),
            explicit_queries: self
                .explicit_queries
                .saturating_sub(earlier.explicit_queries),
            explicit_work: self.explicit_work.saturating_sub(earlier.explicit_work),
            explicit_fallbacks: self
                .explicit_fallbacks
                .saturating_sub(earlier.explicit_fallbacks),
            disj_encoded: self.disj_encoded.saturating_sub(earlier.disj_encoded),
            disj_reused: self.disj_reused.saturating_sub(earlier.disj_reused),
            frames_encoded: self.frames_encoded.saturating_sub(earlier.frames_encoded),
            frames_reused: self.frames_reused.saturating_sub(earlier.frames_reused),
            solver: self.solver.since(&earlier.solver),
        }
    }
}

/// How the checker manages its SAT backend across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckerMode {
    /// One persistent solver session per query shape; per-query constraints
    /// are selected with assumption literals. The default.
    #[default]
    Incremental,
    /// Re-encode and re-solve from scratch at every query, as the original
    /// implementation did. Kept as a reference oracle for differential
    /// testing and overhead measurements.
    FreshPerQuery,
}

/// Factory producing fresh solver instances for the checker's sessions.
///
/// The produced solver is `Send` so whole checkers (and their persistent
/// sessions) can be moved into worker threads by the parallel engine.
pub type SolverBackend = fn() -> Box<dyn IncrementalSolver + Send>;

/// One persistent encoder-over-solver pair.
struct Session {
    enc: Encoder<Box<dyn IncrementalSolver + Send>>,
    /// Number of transition steps already unrolled (frames `0..=unrolled`
    /// exist and are linked).
    unrolled: usize,
    /// Activation literals already attached for "formula holds in some frame
    /// `0..=k`" disjunctions, keyed by `(interned formula id, k)` — an O(1)
    /// probe — so repeated base-case queries re-assume instead of re-adding
    /// the clause.
    activations: ActivationLedger<(ExprId, usize)>,
    /// Conclusion-disjunct ledger of the condition session: the frame-1
    /// Tseitin literal of each canonical disjunct already encoded (in full
    /// mode, of each whole conclusion). A query assumes the negations of
    /// exactly its disjuncts' literals; everything else stays retracted.
    disjuncts: ActivationLedger<ExprId>,
}

impl Session {
    fn new(system: &System, backend: SolverBackend, config: SolverConfig) -> Self {
        let mut sink = backend();
        sink.configure(&config);
        Session {
            enc: Encoder::with_sink(system.vars(), sink),
            unrolled: 0,
            activations: ActivationLedger::new(),
            disjuncts: ActivationLedger::new(),
        }
    }

    /// Encodes one unrolling of the transition relation between `frame` and
    /// `frame + 1`: every state variable's next value is its update
    /// expression over `frame`, every input variable in `frame + 1` respects
    /// its range.
    fn encode_transition(&mut self, system: &System, frame: usize) {
        for id in system.state_vars() {
            self.enc
                .assert_var_equals_expr_across(frame + 1, *id, frame, system.update(*id));
        }
        let input_constraints = system.input_constraints_expr();
        self.enc.assert_expr(frame + 1, &input_constraints);
    }

    /// Grows the unrolling so that at least `steps` transitions exist.
    fn ensure_unrolled(&mut self, system: &System, steps: usize) {
        while self.unrolled < steps {
            let frame = self.unrolled;
            self.encode_transition(system, frame);
            self.unrolled += 1;
        }
    }

    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.enc.sink_mut().solve(assumptions)
    }

    fn solver_stats(&self) -> SolverStats {
        self.enc.sink().stats()
    }

    fn num_clauses(&self) -> usize {
        self.enc.sink().num_clauses()
    }
}

/// Bounded model checker with k-induction over a [`System`].
pub struct KInductionChecker<'a> {
    system: &'a System,
    stats: CheckerStats,
    mode: CheckerMode,
    backend: SolverBackend,
    /// Fig. 3a session: one transition unrolling, query via assumptions.
    condition: Option<Session>,
    /// Fig. 3b base-case session: `Init` plus a growing unrolling.
    base: Option<Session>,
    /// Fig. 3b step-case session: a growing unrolling without `Init`.
    step: Option<Session>,
    /// Solver statistics of sessions that have been dropped (fresh mode).
    retired: SolverStats,
    /// Delta-encode conclusion disjunctions (the default). `false` restores
    /// the full per-query or-chain encoding as a differential oracle.
    conclusion_delta: bool,
    /// Chain-encode base-session frame disjunctions (the default). `false`
    /// restores the full per-`(formula, k)` frame clause as a differential
    /// oracle.
    base_delta: bool,
    /// Search policy applied to every solver session this checker creates.
    solver_config: SolverConfig,
}

impl fmt::Debug for KInductionChecker<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KInductionChecker")
            .field("system", &self.system.name())
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'a> KInductionChecker<'a> {
    /// Creates a checker for the given system with persistent incremental
    /// sessions and the default CDCL backend.
    pub fn new(system: &'a System) -> Self {
        Self::with_mode(system, CheckerMode::Incremental)
    }

    /// Creates a checker with an explicit session [`CheckerMode`].
    pub fn with_mode(system: &'a System, mode: CheckerMode) -> Self {
        Self::with_backend(system, mode, cdcl_backend)
    }

    /// Creates a checker with an explicit mode and solver backend factory.
    pub fn with_backend(system: &'a System, mode: CheckerMode, backend: SolverBackend) -> Self {
        KInductionChecker {
            system,
            stats: CheckerStats::default(),
            mode,
            backend,
            condition: None,
            base: None,
            step: None,
            retired: SolverStats::default(),
            conclusion_delta: true,
            base_delta: true,
            solver_config: SolverConfig::default(),
        }
    }

    /// Sets whether conclusion disjunctions are delta-encoded (default) or
    /// re-encoded as one or-chain per query. Both modes return byte-identical
    /// results; the switch exists so the differential harness can pin that.
    pub fn with_conclusion_delta(mut self, on: bool) -> Self {
        self.set_conclusion_delta(on);
        self
    }

    /// In-place variant of [`KInductionChecker::with_conclusion_delta`].
    pub fn set_conclusion_delta(&mut self, on: bool) {
        self.conclusion_delta = on;
    }

    /// Whether conclusion disjunctions are delta-encoded.
    pub fn conclusion_delta(&self) -> bool {
        self.conclusion_delta
    }

    /// Sets whether base-session frame disjunctions are chain-encoded
    /// (default) or emitted as one full `0..=k` clause per `(formula, k)`
    /// query. Both modes return byte-identical results with identical solve
    /// counts; the switch exists so the differential harness can pin that.
    pub fn with_base_delta(mut self, on: bool) -> Self {
        self.set_base_delta(on);
        self
    }

    /// In-place variant of [`KInductionChecker::with_base_delta`].
    pub fn set_base_delta(&mut self, on: bool) {
        self.base_delta = on;
    }

    /// Whether base-session frame disjunctions are chain-encoded.
    pub fn base_delta(&self) -> bool {
        self.base_delta
    }

    /// Sets the solver search policy for every session. Applied immediately
    /// to live sessions and to all sessions created afterwards. Every
    /// [`SolverConfig`] setting is verdict-neutral, so this never changes
    /// results — only search effort.
    pub fn with_solver_config(mut self, config: SolverConfig) -> Self {
        self.set_solver_config(config);
        self
    }

    /// In-place variant of [`KInductionChecker::with_solver_config`].
    pub fn set_solver_config(&mut self, config: SolverConfig) {
        self.solver_config = config;
        for session in [&mut self.condition, &mut self.base, &mut self.step]
            .into_iter()
            .flatten()
        {
            session.enc.sink_mut().configure(&config);
        }
    }

    /// The solver search policy applied to this checker's sessions.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver_config
    }

    /// The system under check.
    pub fn system(&self) -> &System {
        self.system
    }

    /// Creates an independent checker over the same system, mode and solver
    /// backend, with fresh sessions and zeroed statistics.
    ///
    /// This is the session-cloning primitive of the parallel engine: each
    /// worker forks the template checker once and then keeps its own
    /// persistent incremental sessions for the lifetime of the run. Because
    /// counterexamples are canonicalised (see
    /// [`KInductionChecker::check_condition`]), forked checkers return
    /// byte-identical results to the original for any query sequence.
    pub fn fork(&self) -> KInductionChecker<'a> {
        Self::with_backend(self.system, self.mode, self.backend)
            .with_conclusion_delta(self.conclusion_delta)
            .with_base_delta(self.base_delta)
            .with_solver_config(self.solver_config)
    }

    /// The session mode of this checker.
    pub fn mode(&self) -> CheckerMode {
        self.mode
    }

    /// The name of the SAT backend in use, read from a live session when one
    /// exists (constructing a throwaway backend instance only as a fallback).
    pub fn backend_name(&self) -> &'static str {
        [&self.condition, &self.base, &self.step]
            .into_iter()
            .flatten()
            .next()
            .map(|session| session.enc.sink().backend_name())
            .unwrap_or_else(|| (self.backend)().backend_name())
    }

    /// Statistics accumulated so far, including aggregated solver statistics
    /// across every session this checker has driven.
    pub fn stats(&self) -> CheckerStats {
        let mut stats = self.stats;
        stats.solver = self.solver_stats();
        stats
    }

    /// Aggregated backend statistics across all (live and retired) sessions.
    pub fn solver_stats(&self) -> SolverStats {
        let mut total = self.retired;
        for session in [&self.condition, &self.base, &self.step]
            .into_iter()
            .flatten()
        {
            total += session.solver_stats();
        }
        total
    }

    /// The condition session, created on first use: input constraints on
    /// frame 0 plus one transition unrolling (which constrains frame 1).
    fn condition_session(system: &System, backend: SolverBackend, config: SolverConfig) -> Session {
        let mut session = Session::new(system, backend, config);
        let input_constraints = system.input_constraints_expr();
        session.enc.assert_expr(0, &input_constraints);
        session.ensure_unrolled(system, 1);
        session
    }

    /// The base-case session: `Init(X₀)`; the unrolling grows per query.
    fn base_session(system: &System, backend: SolverBackend, config: SolverConfig) -> Session {
        let mut session = Session::new(system, backend, config);
        let init = system.init_expr();
        session.enc.assert_expr(0, &init);
        session
    }

    /// The step-case session: input constraints on frame 0; the unrolling
    /// grows per query.
    fn step_session(system: &System, backend: SolverBackend, config: SolverConfig) -> Session {
        let mut session = Session::new(system, backend, config);
        let input_constraints = system.input_constraints_expr();
        session.enc.assert_expr(0, &input_constraints);
        session
    }

    /// Records one SAT query against `session` in the counters.
    fn count_query(stats: &mut CheckerStats, session: &Session) {
        stats.sat_queries += 1;
        stats.total_clauses += session.num_clauses() as u64;
    }

    /// Runs a condition query against a session. The session must contain
    /// the one-step transition unrolling; everything query-specific travels
    /// through assumptions. `outgoing` holds the *canonical* conclusion
    /// disjuncts.
    ///
    /// In delta mode the query assumes `¬dᵢ` per disjunct — semantically
    /// `¬(⋁ dᵢ)` — with each `dᵢ` encoded at most once per session via the
    /// disjunct ledger and no or-chain spine ever built. In full mode the
    /// canonical or-chain is encoded as one formula, as the original
    /// implementation did; verdicts, counterexamples and solve counts are
    /// byte-identical either way, only the encoding work differs.
    fn condition_query(
        stats: &mut CheckerStats,
        session: &mut Session,
        system: &System,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
        delta: bool,
    ) -> CheckResult {
        let mut assumptions = Vec::with_capacity(blocked.len() + outgoing.len() + 1);
        assumptions.push(session.enc.encode_bool(0, assumption));
        for blocked_state in blocked {
            assumptions.push(!session.enc.encode_bool(0, blocked_state));
        }
        if delta {
            let (fresh, reused) = (session.disjuncts.fresh(), session.disjuncts.reused());
            for disjunct in outgoing {
                let lit = session
                    .disjuncts
                    .get_or_insert_with(disjunct.id(), || session.enc.encode_bool(1, disjunct));
                assumptions.push(!lit);
            }
            stats.disj_encoded += session.disjuncts.fresh() - fresh;
            stats.disj_reused += session.disjuncts.reused() - reused;
        } else {
            let conclusion = Expr::or_all(outgoing.iter().cloned()).canonical();
            let fresh = session.disjuncts.fresh();
            let lit = session
                .disjuncts
                .get_or_insert_with(conclusion.id(), || session.enc.encode_bool(1, &conclusion));
            // Attribute the whole disjunct batch to whichever bucket the
            // conclusion landed in, so delta and full runs report comparable
            // totals.
            if session.disjuncts.fresh() > fresh {
                stats.disj_encoded += outgoing.len() as u64;
            } else {
                stats.disj_reused += outgoing.len() as u64;
            }
            assumptions.push(!lit);
        }
        Self::count_query(stats, session);
        match session.solve(&assumptions) {
            SolveResult::Unsat => CheckResult::Valid,
            SolveResult::Sat => {
                let (from, to) = Self::canonical_transition(stats, session, system, assumptions);
                CheckResult::Violated { from, to }
            }
        }
    }

    /// Extracts the **canonical** (lexicographically minimal) counterexample
    /// transition of a satisfiable condition query.
    ///
    /// A CDCL solver's satisfying model depends on its clause-learning and
    /// phase-saving history, so two sessions that served different query
    /// sequences can return different (equally valid) counterexamples for the
    /// same query. The active-learning loop feeds counterexamples back into
    /// the trace set, so that nondeterminism would compound into different
    /// learned models. Canonicalisation removes it: starting from the query
    /// assumptions, each free variable bit is probed in a fixed order
    /// (frame 0 before frame 1, declaration order, most significant bit
    /// first) and pinned to 0 whenever the query stays satisfiable, to 1
    /// otherwise. Frame-1 *state* bits are functionally implied by the
    /// transition clauses once frame 0 is pinned, so they are not probed:
    /// their values are read off the update expressions directly. The result
    /// is the unique minimal satisfying transition — a pure function of the
    /// query semantics, independent of solver history, session reuse and
    /// worker count (the probe set is static, so even the per-counterexample
    /// solve count is deterministic).
    fn canonical_transition(
        stats: &mut CheckerStats,
        session: &mut Session,
        system: &System,
        mut fixed: Vec<Lit>,
    ) -> (Valuation, Valuation) {
        let vars = system.vars();
        let mut probe_var = |frame: usize, id: VarId| {
            let word = session.enc.word(frame, id);
            let mut raw: i64 = 0;
            for b in (0..word.bits().len()).rev() {
                let bit = word.bits()[b];
                fixed.push(!bit);
                Self::count_query(stats, session);
                if session.solve(&fixed) == SolveResult::Unsat {
                    // The bit is forced to 1 under everything pinned so far;
                    // flip the assumption and keep going.
                    fixed.pop();
                    fixed.push(bit);
                    raw |= 1 << b;
                }
            }
            Value::from_i64(vars.sort(id), raw)
        };
        let mut from = Valuation::zeroed(vars);
        for (id, _) in vars.iter() {
            from.set(id, probe_var(0, id));
        }
        let mut to = Valuation::zeroed(vars);
        for id in system.input_vars() {
            to.set(*id, probe_var(1, *id));
        }
        for id in system.state_vars() {
            to.set(*id, system.update(*id).eval(&from));
        }
        (from, to)
    }

    /// Runs the k-induction base case against a session holding `Init`:
    /// is the state reachable within `k` steps? The per-query disjunction
    /// "state holds in some frame `0..=k`" is attached behind activation
    /// literals so it can be retracted by simply not assuming it.
    ///
    /// In delta mode the disjunction is a **chain**: one activation literal
    /// `act_f` per `(formula, frame)` pair with the clause
    /// `act_f → lit_f ∨ act_{f-1}`, and the query assumes only `act_k`.
    /// Assuming `act_k` forces the formula to hold in some frame `≤ k` (the
    /// one-directional Tseitin chain unrolls to the full disjunction), so
    /// growing `k → k+1` for a known formula encodes exactly one new frame
    /// literal and one two-or-three-literal chaining clause instead of a
    /// fresh `k+2`-literal clause re-listing every frame. In full mode the
    /// original per-`(formula, k)` whole-disjunction clause is emitted, as a
    /// differential oracle. Either way there is exactly one solve per query
    /// and the encodings are equisatisfiable, so verdicts and solve counts
    /// are byte-identical.
    fn base_query(
        stats: &mut CheckerStats,
        session: &mut Session,
        system: &System,
        state_formula: &Expr,
        k: usize,
        delta: bool,
    ) -> SolveResult {
        session.ensure_unrolled(system, k);
        let enc = &mut session.enc;
        let act = if delta {
            let (fresh, reused) = (session.activations.fresh(), session.activations.reused());
            let mut prev: Option<Lit> = None;
            for frame in 0..=k {
                let act =
                    session
                        .activations
                        .get_or_insert_with((state_formula.id(), frame), || {
                            let lit = enc.encode_bool(frame, state_formula);
                            let act = Lit::positive(enc.sink_mut().new_var());
                            let mut clause = vec![!act, lit];
                            clause.extend(prev);
                            enc.sink_mut().add_clause(&clause);
                            act
                        });
                prev = Some(act);
            }
            stats.frames_encoded += session.activations.fresh() - fresh;
            stats.frames_reused += session.activations.reused() - reused;
            prev.expect("0..=k is never empty")
        } else {
            let fresh = session.activations.fresh();
            let act = session
                .activations
                .get_or_insert_with((state_formula.id(), k), || {
                    let frame_lits: Vec<Lit> = (0..=k)
                        .map(|frame| enc.encode_bool(frame, state_formula))
                        .collect();
                    let act = Lit::positive(enc.sink_mut().new_var());
                    let mut clause = Vec::with_capacity(frame_lits.len() + 1);
                    clause.push(!act);
                    clause.extend(frame_lits);
                    enc.sink_mut().add_clause(&clause);
                    act
                });
            // Attribute all k+1 frames to whichever bucket the whole-clause
            // entry landed in, so delta and full runs report comparable
            // totals.
            if session.activations.fresh() > fresh {
                stats.frames_encoded += (k + 1) as u64;
            } else {
                stats.frames_reused += (k + 1) as u64;
            }
            act
        };
        Self::count_query(stats, session);
        session.solve(&[act])
    }

    /// Runs the k-induction step case against a session without `Init`:
    /// `¬state` on frames `0..k`, one more transition, `state` on frame `k` —
    /// expressed entirely through assumptions.
    fn step_query(
        stats: &mut CheckerStats,
        session: &mut Session,
        system: &System,
        state_formula: &Expr,
        k: usize,
    ) -> SolveResult {
        session.ensure_unrolled(system, k);
        let mut assumptions = Vec::with_capacity(k + 1);
        for frame in 0..k {
            assumptions.push(!session.enc.encode_bool(frame, state_formula));
        }
        assumptions.push(session.enc.encode_bool(k, state_formula));
        Self::count_query(stats, session);
        session.solve(&assumptions)
    }

    /// Runs one query against the session in `slot`, handling the mode
    /// dispatch in one place: incremental mode reuses (or lazily builds) the
    /// persistent session, fresh mode builds a throwaway session and folds
    /// its solver statistics into `retired`.
    fn run_query<R>(
        mode: CheckerMode,
        stats: &mut CheckerStats,
        retired: &mut SolverStats,
        slot: &mut Option<Session>,
        make: impl FnOnce() -> Session,
        query: impl FnOnce(&mut CheckerStats, &mut Session) -> R,
    ) -> R {
        match mode {
            CheckerMode::Incremental => {
                let mut session = slot.take().unwrap_or_else(make);
                let result = query(stats, &mut session);
                *slot = Some(session);
                result
            }
            CheckerMode::FreshPerQuery => {
                let mut session = make();
                let result = query(stats, &mut session);
                *retired += session.solver_stats();
                result
            }
        }
    }

    /// Checks a condition of the form
    /// `assume(r); X' = f(X); assert(s)` (Fig. 3a): is there a transition
    /// from a state satisfying `r` (and none of the `blocked` states) whose
    /// successor violates `s`?
    ///
    /// `blocked` holds the state formulas `s'` of counterexamples already
    /// proven spurious; they strengthen the assumption to `r ∧ ¬s'` exactly as
    /// in Section III-C of the paper.
    pub fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        conclusion: &Expr,
    ) -> CheckResult {
        self.check_condition_disjuncts(assumption, blocked, std::slice::from_ref(conclusion))
    }

    /// [`KInductionChecker::check_condition`] with the conclusion handed
    /// over as its disjuncts `⋁ outgoing'`, the structured form the
    /// learning loop produces. This is what makes the conclusion
    /// incremental: each canonical disjunct is encoded into the condition
    /// session at most once (see the module documentation), so a growing
    /// outgoing set costs only its delta.
    pub fn check_condition_disjuncts(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        self.stats.condition_checks += 1;
        self.stats.kinduction_queries += 1;
        // Session reuse works on canonical query forms: semantically
        // identical predicates assembled in different shapes share one set
        // of Tseitin definitions and assumption literals inside the
        // persistent session. Verdicts and (canonicalised) counterexamples
        // are untouched — the rewrites are semantics-preserving.
        let assumption = assumption.canonical();
        let blocked: Vec<Expr> = blocked.iter().map(Expr::canonical).collect();
        let outgoing: Vec<Expr> = outgoing.iter().map(Expr::canonical).collect();
        let delta = self.conclusion_delta;
        let (system, backend, config) = (self.system, self.backend, self.solver_config);
        Self::run_query(
            self.mode,
            &mut self.stats,
            &mut self.retired,
            &mut self.condition,
            || Self::condition_session(system, backend, config),
            |stats, session| {
                Self::condition_query(
                    stats,
                    session,
                    system,
                    &assumption,
                    &blocked,
                    &outgoing,
                    delta,
                )
            },
        )
    }

    /// Checks the initial-state condition (1) of the paper:
    /// `v ⊨ Init ∧ (v, v') ⊨ R ⟹ v' ⊨ ⋁ outgoing`.
    pub fn check_initial_condition(&mut self, outgoing: &[Expr]) -> CheckResult {
        let init = self.system.init_expr();
        self.check_condition_disjuncts(&init, &[], outgoing)
    }

    /// Checks a per-state condition (2) of the paper for one incoming
    /// predicate `p_i`:
    /// `v ⊨ p_i ∧ (v, v') ⊨ R ⟹ v' ⊨ ⋁ outgoing`.
    pub fn check_state_condition(
        &mut self,
        incoming: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        self.check_condition_disjuncts(incoming, blocked, outgoing)
    }

    /// The state formula `s' := ⋀ (x_i = v(x_i))` over the given variables,
    /// used both to block spurious states and to query reachability.
    ///
    /// Delegates to the engine-independent [`crate::state_formula`].
    pub fn state_formula(&self, state: &Valuation, over: &[VarId]) -> Expr {
        crate::oracle::state_formula(self.system.vars(), state, over)
    }

    /// Spurious-counterexample check (Fig. 3b): decides by k-induction with
    /// bound `k` whether the state characterised by `state_formula` is
    /// unreachable from the initial states.
    ///
    /// * base case: no path of length `0..=k` from an `Init` state reaches the
    ///   state — checked by asserting `Init(X_0)`, unrolling `k` transitions
    ///   and asserting that the state holds at some frame;
    /// * step case: there is no path of `k` consecutive non-`state` valuations
    ///   followed by a transition into the state.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult {
        assert!(k > 0, "k-induction bound must be positive");
        self.stats.spurious_checks += 1;
        self.stats.kinduction_queries += 1;
        // Same-state queries built in different shapes share the activation
        // literal and the per-frame encodings of both sessions.
        let state_formula = &state_formula.canonical();

        let (system, backend, config) = (self.system, self.backend, self.solver_config);
        let base_delta = self.base_delta;
        let base = Self::run_query(
            self.mode,
            &mut self.stats,
            &mut self.retired,
            &mut self.base,
            || Self::base_session(system, backend, config),
            |stats, session| Self::base_query(stats, session, system, state_formula, k, base_delta),
        );
        if base == SolveResult::Sat {
            return SpuriousResult::Reachable;
        }

        let step = Self::run_query(
            self.mode,
            &mut self.stats,
            &mut self.retired,
            &mut self.step,
            || Self::step_session(system, backend, config),
            |stats, session| Self::step_query(stats, session, system, state_formula, k),
        );
        if step == SolveResult::Unsat {
            SpuriousResult::Spurious
        } else {
            SpuriousResult::Inconclusive
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::SystemBuilder;

    /// A saturating counter 0..=5 driven by an enable input; `flag` is true
    /// exactly when the counter is at its limit.
    fn saturating_counter() -> System {
        let mut b = SystemBuilder::new();
        b.name("sat_counter");
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        let flag = b.state("flag", Sort::Bool, Value::Bool(false)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(5, 4))
            .ite(&ce.add(&Expr::int_val(1, 4)), &ce);
        let next_c = b.var(en).ite(&bumped, &ce);
        b.update(c, next_c.clone()).unwrap();
        b.update(flag, next_c.ge(&Expr::int_val(5, 4))).unwrap();
        b.build().unwrap()
    }

    fn var_expr(sys: &System, name: &str) -> Expr {
        let id = sys.vars().lookup(name).unwrap();
        sys.var(id)
    }

    #[test]
    fn valid_condition_is_proved() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        // From any state with c <= 5, after one step c <= 5 still holds
        // (the counter saturates).
        let c = var_expr(&sys, "c");
        let assumption = c.le(&Expr::int_val(5, 4));
        let conclusion = c.le(&Expr::int_val(5, 4));
        assert!(checker
            .check_condition(&assumption, &[], &conclusion)
            .is_valid());
        assert_eq!(checker.stats().condition_checks, 1);
        assert!(checker.stats().sat_queries >= 1);
    }

    #[test]
    fn violated_condition_returns_a_real_transition() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        // "After one step the counter is never 3" is violated from c = 2 with
        // the enable input set.
        let c = var_expr(&sys, "c");
        let assumption = Expr::true_();
        let conclusion = c.ne(&Expr::int_val(3, 4));
        match checker.check_condition(&assumption, &[], &conclusion) {
            CheckResult::Valid => panic!("condition should be violated"),
            CheckResult::Violated { from, to } => {
                assert!(
                    sys.is_transition(&from, &to),
                    "counterexample must be a transition"
                );
                let c_id = sys.vars().lookup("c").unwrap();
                assert_eq!(to.value(c_id).to_i64(), 3);
            }
        }
    }

    #[test]
    fn blocking_states_strengthens_the_assumption() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c = var_expr(&sys, "c");
        // Without blocking, "next c != 3" is violated (from c = 2).
        let conclusion = c.ne(&Expr::int_val(3, 4));
        let unblocked = checker.check_condition(&Expr::true_(), &[], &conclusion);
        assert!(!unblocked.is_valid());
        // Blocking both offending pre-states (c = 2 with the counter enabled
        // and c = 3 idling in place) makes the check pass.
        let blocked = vec![c.eq(&Expr::int_val(2, 4)), c.eq(&Expr::int_val(3, 4))];
        assert!(checker
            .check_condition(&Expr::true_(), &blocked, &conclusion)
            .is_valid());
    }

    #[test]
    fn initial_condition_check() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c = var_expr(&sys, "c");
        // From Init (c = 0), one step leads to c = 0 or c = 1.
        let outgoing = vec![c.eq(&Expr::int_val(0, 4)), c.eq(&Expr::int_val(1, 4))];
        assert!(checker.check_initial_condition(&outgoing).is_valid());
        // Claiming the successor is always exactly 1 is violated (en = false).
        let too_strong = vec![c.eq(&Expr::int_val(1, 4))];
        assert!(!checker.check_initial_condition(&too_strong).is_valid());
    }

    #[test]
    fn unreachable_state_is_spurious() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let flag_id = sys.vars().lookup("flag").unwrap();
        // flag = true with c = 0 is unreachable: flag is true only when the
        // counter has saturated.
        let mut ghost = sys.initial_valuation();
        ghost.set(c_id, Value::Int(0));
        ghost.set(flag_id, Value::Bool(true));
        let formula = checker.state_formula(&ghost, &[c_id, flag_id]);
        assert_eq!(
            checker.check_spurious(&formula, 8),
            SpuriousResult::Spurious
        );
        assert_eq!(checker.stats().spurious_checks, 1);
    }

    #[test]
    fn reachable_state_is_detected_in_base_case() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let mut target = sys.initial_valuation();
        target.set(c_id, Value::Int(3));
        let formula = checker.state_formula(&target, &[c_id]);
        assert_eq!(
            checker.check_spurious(&formula, 5),
            SpuriousResult::Reachable
        );
    }

    #[test]
    fn too_small_bound_is_inconclusive_or_reachable_but_never_spurious_for_reachable_states() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        // c = 5 is reachable but only after 5 steps; with k = 2 the base case
        // cannot find it and the step case cannot exclude it.
        let mut target = sys.initial_valuation();
        target.set(c_id, Value::Int(5));
        let formula = checker.state_formula(&target, &[c_id]);
        let result = checker.check_spurious(&formula, 2);
        assert_ne!(result, SpuriousResult::Spurious);
        // With a sufficiently large bound the base case finds the path.
        assert_eq!(
            checker.check_spurious(&formula, 6),
            SpuriousResult::Reachable
        );
    }

    #[test]
    fn state_formula_mentions_only_requested_variables() {
        let sys = saturating_counter();
        let checker = KInductionChecker::new(&sys);
        let c_id = sys.vars().lookup("c").unwrap();
        let v = sys.initial_valuation();
        let formula = checker.state_formula(&v, &[c_id]);
        assert_eq!(formula.free_vars().len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bound_is_rejected() {
        let sys = saturating_counter();
        let mut checker = KInductionChecker::new(&sys);
        let _ = checker.check_spurious(&Expr::true_(), 0);
    }

    #[test]
    fn checkers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<KInductionChecker<'static>>();
        assert_send::<CheckResult>();
        assert_send::<SpuriousResult>();
    }

    #[test]
    fn retracted_disjuncts_never_poison_the_session() {
        // The delta-encoded conclusion ledger keeps Tseitin clauses of every
        // disjunct ever encoded; a later query that *drops* a disjunct must
        // not be influenced by the stale encoding. Sequence: prove the
        // initial condition with {c=0, c=1}, retract c=1, and require the
        // weakened condition to be Violated with exactly the counterexample
        // a cold checker produces.
        let sys = saturating_counter();
        let c = var_expr(&sys, "c");
        let d0 = c.eq(&Expr::int_val(0, 4));
        let d1 = c.eq(&Expr::int_val(1, 4));

        let mut warm = KInductionChecker::new(&sys);
        assert!(warm
            .check_initial_condition(&[d0.clone(), d1.clone()])
            .is_valid());
        let stats = warm.stats();
        assert_eq!(stats.disj_encoded, 2);
        assert_eq!(stats.disj_reused, 0);

        // Retracted d1: its clauses stay in the solver but are not assumed.
        let weakened = warm.check_initial_condition(std::slice::from_ref(&d0));
        let mut cold = KInductionChecker::new(&sys);
        let reference = cold.check_initial_condition(std::slice::from_ref(&d0));
        assert!(!reference.is_valid(), "weakened condition must be violated");
        assert_eq!(weakened, reference, "stale disjunct influenced a verdict");
        let stats = warm.stats();
        assert_eq!(stats.disj_encoded, 2, "retraction must not re-encode");
        assert_eq!(stats.disj_reused, 1);

        // Re-adding the retracted disjunct reuses both ledger entries and
        // restores the original verdict.
        assert!(warm.check_initial_condition(&[d0, d1]).is_valid());
        let stats = warm.stats();
        assert_eq!(stats.disj_encoded, 2);
        assert_eq!(stats.disj_reused, 3);
    }

    #[test]
    fn delta_and_full_conclusion_encodings_agree() {
        // AMLE_CONCLUSION_DELTA=0's checker-level switch: the same query
        // sequence (growing, shrinking and permuted conclusions) must give
        // byte-identical verdicts and counterexamples in both modes.
        let sys = saturating_counter();
        let c = var_expr(&sys, "c");
        let disjuncts = [
            c.eq(&Expr::int_val(0, 4)),
            c.eq(&Expr::int_val(1, 4)),
            c.eq(&Expr::int_val(2, 4)),
        ];
        let mut delta = KInductionChecker::new(&sys);
        let mut full = KInductionChecker::new(&sys).with_conclusion_delta(false);
        assert!(delta.conclusion_delta());
        assert!(!full.conclusion_delta());
        assert!(!full.fork().conclusion_delta(), "fork must keep the mode");
        let queries: [&[Expr]; 5] = [
            &disjuncts[0..2],
            &disjuncts[0..3],
            &disjuncts[0..1],
            &[disjuncts[2].clone(), disjuncts[0].clone()],
            &[],
        ];
        for outgoing in queries {
            assert_eq!(
                delta.check_initial_condition(outgoing),
                full.check_initial_condition(outgoing),
                "modes disagree on {outgoing:?}"
            );
        }
        // Same number of solver queries either way — only encoding differs.
        assert_eq!(
            delta.stats().sat_queries,
            full.stats().sat_queries,
            "delta encoding changed the query count"
        );
    }

    #[test]
    fn base_chain_reuses_frames_across_growing_bounds() {
        // Growing k → k+1 for the same formula must encode exactly one new
        // chain link; shrinking back re-assumes an interior link without
        // touching the ledger's fresh count.
        let sys = saturating_counter();
        let c_id = sys.vars().lookup("c").unwrap();
        let flag_id = sys.vars().lookup("flag").unwrap();
        let mut checker = KInductionChecker::new(&sys);
        assert!(checker.base_delta());
        let mut ghost = sys.initial_valuation();
        ghost.set(c_id, Value::Int(0));
        ghost.set(flag_id, Value::Bool(true));
        let formula = checker.state_formula(&ghost, &[c_id, flag_id]);

        assert_eq!(
            checker.check_spurious(&formula, 4),
            SpuriousResult::Spurious
        );
        let stats = checker.stats();
        assert_eq!(stats.frames_encoded, 5, "k=4 encodes frames 0..=4");
        assert_eq!(stats.frames_reused, 0);

        // k=5: one new link, five reused.
        assert_eq!(
            checker.check_spurious(&formula, 5),
            SpuriousResult::Spurious
        );
        let stats = checker.stats();
        assert_eq!(stats.frames_encoded, 6);
        assert_eq!(stats.frames_reused, 5);

        // Back to k=3: a pure-reuse interior query.
        assert_eq!(
            checker.check_spurious(&formula, 3),
            SpuriousResult::Spurious
        );
        let stats = checker.stats();
        assert_eq!(stats.frames_encoded, 6, "shrinking must not re-encode");
        assert_eq!(stats.frames_reused, 9);
    }

    #[test]
    fn base_delta_and_full_encodings_agree() {
        // AMLE_BASE_DELTA=0's checker-level switch: the same spurious-check
        // sequence (growing, repeated and shrinking bounds, reachable and
        // unreachable targets) must give identical verdicts with identical
        // solve counts in both modes.
        let sys = saturating_counter();
        let c_id = sys.vars().lookup("c").unwrap();
        let flag_id = sys.vars().lookup("flag").unwrap();
        let mut delta = KInductionChecker::new(&sys);
        let mut full = KInductionChecker::new(&sys).with_base_delta(false);
        assert!(delta.base_delta());
        assert!(!full.base_delta());
        assert!(!full.fork().base_delta(), "fork must keep the mode");

        let mut ghost = sys.initial_valuation();
        ghost.set(c_id, Value::Int(0));
        ghost.set(flag_id, Value::Bool(true));
        let unreachable = delta.state_formula(&ghost, &[c_id, flag_id]);
        let mut target = sys.initial_valuation();
        target.set(c_id, Value::Int(3));
        let reachable = delta.state_formula(&target, &[c_id]);

        let queries = [
            (&unreachable, 2),
            (&unreachable, 3),
            (&unreachable, 3),
            (&reachable, 5),
            (&unreachable, 1),
            (&reachable, 6),
        ];
        for (formula, k) in queries {
            assert_eq!(
                delta.check_spurious(formula, k),
                full.check_spurious(formula, k),
                "modes disagree at k={k}"
            );
        }
        assert_eq!(
            delta.stats().sat_queries,
            full.stats().sat_queries,
            "base chaining changed the query count"
        );
        // The chain amortises: by the end reuse dominates fresh encodes in
        // delta mode, while full mode re-encodes every distinct (formula, k).
        let stats = delta.stats();
        assert!(
            stats.frames_reused > stats.frames_encoded,
            "reuse {} should dominate encodes {}",
            stats.frames_reused,
            stats.frames_encoded
        );
    }

    #[test]
    fn solver_config_is_applied_and_verdict_neutral() {
        use amle_sat::{PhaseMode, RestartStrategy};
        let sys = saturating_counter();
        let c = var_expr(&sys, "c");
        let conclusion = c.ne(&Expr::int_val(3, 4));
        let config = SolverConfig {
            restart: RestartStrategy::NoneBelow(u64::MAX),
            phase_saving: PhaseMode::ResetPerQuery,
            ..SolverConfig::default()
        };
        let mut tuned = KInductionChecker::new(&sys).with_solver_config(config);
        assert_eq!(tuned.solver_config(), config);
        assert_eq!(tuned.fork().solver_config(), config, "fork keeps config");

        let mut default = KInductionChecker::new(&sys);
        let reference = default.check_condition(&Expr::true_(), &[], &conclusion);
        let got = tuned.check_condition(&Expr::true_(), &[], &conclusion);
        assert_eq!(got, reference, "search policy changed a counterexample");
        assert_eq!(
            tuned.stats().sat_queries,
            default.stats().sat_queries,
            "search policy changed the solve count"
        );
        // Reconfiguring a live session applies to it immediately and stays
        // verdict-neutral.
        tuned.set_solver_config(SolverConfig::default());
        let again = tuned.check_condition(&Expr::true_(), &[], &conclusion);
        assert_eq!(again, reference);
    }

    #[test]
    fn counterexamples_are_canonical_across_sessions_and_forks() {
        let sys = saturating_counter();
        let c = var_expr(&sys, "c");
        let conclusion = c.ne(&Expr::int_val(3, 4));

        // A fresh checker answering the query cold.
        let mut cold = KInductionChecker::new(&sys);
        let direct = cold.check_condition(&Expr::true_(), &[], &conclusion);

        // A warmed-up checker whose condition session served unrelated
        // queries first (different learnt clauses and saved phases), plus a
        // fork of it.
        let mut warm = KInductionChecker::new(&sys);
        let side = c.le(&Expr::int_val(5, 4));
        assert!(warm.check_condition(&side, &[], &side).is_valid());
        let _ = warm.check_condition(&Expr::true_(), &[], &c.ne(&Expr::int_val(1, 4)));
        let warmed = warm.check_condition(&Expr::true_(), &[], &conclusion);
        let forked = warm
            .fork()
            .check_condition(&Expr::true_(), &[], &conclusion);

        // And the fresh-per-query oracle.
        let mut fresh = KInductionChecker::with_mode(&sys, CheckerMode::FreshPerQuery);
        let oracle = fresh.check_condition(&Expr::true_(), &[], &conclusion);

        assert_eq!(direct, warmed, "session history changed the model");
        assert_eq!(direct, forked, "fork changed the model");
        assert_eq!(direct, oracle, "session mode changed the model");
        match direct {
            CheckResult::Valid => panic!("condition should be violated"),
            CheckResult::Violated { from, to } => {
                assert!(sys.is_transition(&from, &to));
            }
        }
    }
}
