//! The portfolio oracle: per-query routing between the explicit-state
//! engine and the k-induction checker.
//!
//! Cheap concrete enumeration beats SAT on small input/state products —
//! violated conditions especially, where the SAT path needs a full
//! bit-by-bit canonicalisation probe per counterexample while the explicit
//! engine's first hit *is* the canonical counterexample. The portfolio
//! estimates each query's concrete size and routes it accordingly:
//!
//! * estimated cost ≤ routing threshold → explicit engine, under a work
//!   budget;
//! * otherwise, or whenever the budget runs out mid-query → k-induction.
//!
//! Because both engines decide the same formulas and return identical
//! canonical counterexamples (see [`crate::explicit`]), routing is
//! invisible in a run's verdicts: only the per-engine attribution counters
//! in [`CheckerStats`] reveal which engine answered. The *cross-validation
//! mode* asserts that invariant at runtime by answering every
//! explicitly-routed query with both engines and comparing.

use crate::explicit::ExplicitChecker;
use crate::kinduction::{CheckResult, CheckerStats, KInductionChecker, SpuriousResult};
use crate::oracle::ConditionOracle;
use amle_expr::Expr;
use amle_system::System;

/// A [`ConditionOracle`] routing each query between an [`ExplicitChecker`]
/// and a [`KInductionChecker`] by estimated concrete cost.
#[derive(Debug)]
pub struct PortfolioOracle<'a> {
    explicit: ExplicitChecker<'a>,
    kinduction: KInductionChecker<'a>,
    explicit_budget: u64,
    route_threshold: u64,
    cross_validate: bool,
    fallbacks: u64,
    name: &'static str,
}

impl<'a> PortfolioOracle<'a> {
    /// Creates a portfolio over `system`.
    ///
    /// `explicit_budget` bounds the work one explicitly-routed query may
    /// spend before falling back to k-induction; `route_threshold` is the
    /// largest estimated concrete cost still routed to the explicit engine
    /// (`u64::MAX` yields the explicit-first stack of
    /// [`crate::OracleKind::Explicit`]); `cross_validate` additionally
    /// answers every explicitly-routed query with k-induction and asserts
    /// agreement.
    pub fn new(
        system: &'a System,
        explicit_budget: u64,
        route_threshold: u64,
        cross_validate: bool,
    ) -> Self {
        PortfolioOracle {
            explicit: ExplicitChecker::with_budget(system, usize::MAX, explicit_budget),
            kinduction: KInductionChecker::new(system),
            explicit_budget,
            route_threshold,
            cross_validate,
            fallbacks: 0,
            name: "portfolio",
        }
    }

    /// Overrides the reported engine name (used by
    /// [`crate::build_oracle`] to label the explicit-first stack).
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Sets whether the inner k-induction checker delta-encodes conclusion
    /// disjunctions (see [`KInductionChecker::with_conclusion_delta`]).
    pub fn conclusion_delta(mut self, on: bool) -> Self {
        self.kinduction.set_conclusion_delta(on);
        self
    }

    /// Sets whether the inner k-induction checker chain-encodes base-session
    /// frame disjunctions (see [`KInductionChecker::with_base_delta`]).
    pub fn base_delta(mut self, on: bool) -> Self {
        self.kinduction.set_base_delta(on);
        self
    }

    /// Sets the CDCL search policy of the inner k-induction checker's
    /// sessions (see [`KInductionChecker::with_solver_config`]).
    pub fn solver_config(mut self, config: amle_sat::SolverConfig) -> Self {
        self.kinduction.set_solver_config(config);
        self
    }

    /// The system under check.
    pub fn system(&self) -> &System {
        self.kinduction.system()
    }

    /// Number of explicitly-routed queries whose budget ran out, forcing a
    /// k-induction re-run.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl ConditionOracle for PortfolioOracle<'_> {
    fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        if self.explicit.estimate_condition_cost() <= self.route_threshold {
            let mut budget = self.explicit_budget;
            if let Some(result) =
                self.explicit
                    .check_condition_budgeted(assumption, blocked, outgoing, &mut budget)
            {
                if self.cross_validate {
                    let reference = self
                        .kinduction
                        .check_condition_disjuncts(assumption, blocked, outgoing);
                    assert_eq!(
                        result, reference,
                        "explicit and k-induction engines disagree on a condition check"
                    );
                }
                return result;
            }
            self.fallbacks += 1;
        }
        self.kinduction
            .check_condition_disjuncts(assumption, blocked, outgoing)
    }

    fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult {
        if self.explicit.estimate_spurious_cost(k) <= self.route_threshold {
            let mut budget = self.explicit_budget;
            if let Some(result) =
                self.explicit
                    .check_spurious_budgeted(state_formula, k, &mut budget)
            {
                if self.cross_validate {
                    let reference = self.kinduction.check_spurious(state_formula, k);
                    assert_eq!(
                        result, reference,
                        "explicit and k-induction engines disagree on a spurious check"
                    );
                }
                return result;
            }
            self.fallbacks += 1;
        }
        self.kinduction.check_spurious(state_formula, k)
    }

    fn stats(&self) -> CheckerStats {
        let mut stats = self.explicit.stats();
        stats += self.kinduction.stats();
        stats.explicit_fallbacks += self.fallbacks;
        stats
    }

    fn engine_name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::SystemBuilder;

    /// The saturating counter used across the checker tests.
    fn saturating_counter() -> System {
        let mut b = SystemBuilder::new();
        b.name("sat_counter");
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        let flag = b.state("flag", Sort::Bool, Value::Bool(false)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(5, 4))
            .ite(&ce.add(&Expr::int_val(1, 4)), &ce);
        let next_c = b.var(en).ite(&bumped, &ce);
        b.update(c, next_c.clone()).unwrap();
        b.update(flag, next_c.ge(&Expr::int_val(5, 4))).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cross_validation_passes_on_a_mixed_query_sequence() {
        let sys = saturating_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        // Threshold u64::MAX: everything routed explicitly, every answer
        // double-checked against k-induction.
        let mut oracle = PortfolioOracle::new(&sys, u64::MAX, u64::MAX, true);
        for bound in 0..8 {
            let _ = oracle.check_condition(&Expr::true_(), &[], &[ce.ne(&Expr::int_val(bound, 4))]);
        }
        let mut state = sys.initial_valuation();
        state.set(c, Value::Int(3));
        let formula = crate::oracle::state_formula(sys.vars(), &state, &[c]);
        assert_eq!(
            oracle.check_spurious(&formula, 5),
            SpuriousResult::Reachable
        );
        let stats = oracle.stats();
        assert!(stats.explicit_queries > 0);
        // Cross-validation runs both engines on every query.
        assert_eq!(stats.kinduction_queries, stats.explicit_queries);
        assert_eq!(oracle.fallbacks(), 0);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_kinduction() {
        let sys = saturating_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        // A 2-unit budget cannot finish any query on this system.
        let mut oracle = PortfolioOracle::new(&sys, 2, u64::MAX, false);
        let conclusion = ce.le(&Expr::int_val(5, 4));
        assert!(oracle
            .check_condition(&conclusion, &[], std::slice::from_ref(&conclusion))
            .is_valid());
        assert_eq!(oracle.fallbacks(), 1);
        let stats = oracle.stats();
        assert_eq!(stats.explicit_fallbacks, 1);
        assert_eq!(stats.kinduction_queries, 1);
        assert_eq!(stats.explicit_queries, 0);
        // The (aborted) explicit attempt does not count as an answered
        // condition check.
        assert_eq!(stats.condition_checks, 1);
    }

    #[test]
    fn oversized_queries_are_routed_straight_to_kinduction() {
        let sys = saturating_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        // Threshold 0: nothing is small enough for the explicit engine.
        let mut oracle = PortfolioOracle::new(&sys, u64::MAX, 0, false);
        let conclusion = ce.le(&Expr::int_val(5, 4));
        assert!(oracle
            .check_condition(&conclusion, &[], std::slice::from_ref(&conclusion))
            .is_valid());
        let stats = oracle.stats();
        assert_eq!(stats.explicit_queries, 0);
        assert_eq!(stats.explicit_work, 0);
        assert_eq!(stats.kinduction_queries, 1);
        assert_eq!(oracle.fallbacks(), 0, "routing misses are not fallbacks");
    }

    #[test]
    fn portfolio_counterexamples_match_kinduction_byte_for_byte() {
        let sys = saturating_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        let mut portfolio = PortfolioOracle::new(&sys, u64::MAX, u64::MAX, false);
        let mut sat = KInductionChecker::new(&sys);
        for bound in 0..8 {
            let conclusion = ce.ne(&Expr::int_val(bound, 4));
            assert_eq!(
                portfolio.check_condition(&Expr::true_(), &[], std::slice::from_ref(&conclusion)),
                sat.check_condition(&Expr::true_(), &[], &conclusion),
                "bound {bound}"
            );
        }
    }
}
