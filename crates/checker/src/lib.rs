//! # amle-checker
//!
//! Software model checking for the active learning loop: bounded model
//! checking and k-induction over the functional transition relation of an
//! [`amle_system::System`], bit-blasted to CNF (`amle-bitblast`) and decided
//! with the CDCL solver (`amle-sat`).
//!
//! The crate implements the two query shapes of the paper (Fig. 3):
//!
//! * **Condition checks** (Fig. 3a) — "from any state satisfying the
//!   assumption `r`, does one system transition always lead to a state
//!   satisfying `s`?" — used with `k = 1` to verify the completeness
//!   conditions (1) and (2) extracted from the candidate abstraction. A
//!   failed check returns the pair of valuations `(v_t, v_{t+1})` as a
//!   counterexample.
//! * **Spurious-counterexample checks** (Fig. 3b) — "is the state `v_t`
//!   reachable from an initial state?" — answered by k-induction with a
//!   user-supplied bound `k`: if both the base case and the step case hold,
//!   the counterexample is guaranteed spurious; if only the step case fails
//!   the result is inconclusive and the paper's rule is to treat the
//!   counterexample as valid but record it.
//!
//! Both query shapes are answered behind the pluggable [`ConditionOracle`]
//! trait by three interchangeable engines:
//!
//! * [`KInductionChecker`] — the incremental SAT engine above;
//! * [`ExplicitChecker`] — a production-grade explicit-state engine that
//!   streams input assignments through an odometer (never materialising the
//!   cartesian product), interns its reachability frontier, runs under
//!   deterministic work budgets, and decides **exactly** the same formulas
//!   as the SAT engine — including byte-identical canonical
//!   counterexamples;
//! * [`PortfolioOracle`] — routes each query by its estimated concrete
//!   size, falls back to k-induction when the explicit budget runs out,
//!   and offers a cross-validation mode asserting engine agreement.
//!
//! [`build_oracle`] assembles the stack described by an
//! [`OracleSettings`]/[`OracleKind`] pair.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod explicit;
mod kinduction;
mod oracle;
mod portfolio;

pub use explicit::{ExplicitChecker, Odometer, DEFAULT_QUERY_BUDGET};
pub use kinduction::{
    CheckResult, CheckerMode, CheckerStats, KInductionChecker, SolverBackend, SpuriousResult,
};
pub use oracle::{
    build_oracle, state_formula, ConditionOracle, OracleKind, OracleSettings,
    DEFAULT_EXPLICIT_BUDGET, DEFAULT_ROUTE_THRESHOLD,
};
pub use portfolio::PortfolioOracle;

#[cfg(test)]
mod proptests;
