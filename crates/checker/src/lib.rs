//! # amle-checker
//!
//! Software model checking for the active learning loop: bounded model
//! checking and k-induction over the functional transition relation of an
//! [`amle_system::System`], bit-blasted to CNF (`amle-bitblast`) and decided
//! with the CDCL solver (`amle-sat`).
//!
//! The crate implements the two query shapes of the paper (Fig. 3):
//!
//! * **Condition checks** (Fig. 3a) — "from any state satisfying the
//!   assumption `r`, does one system transition always lead to a state
//!   satisfying `s`?" — used with `k = 1` to verify the completeness
//!   conditions (1) and (2) extracted from the candidate abstraction. A
//!   failed check returns the pair of valuations `(v_t, v_{t+1})` as a
//!   counterexample.
//! * **Spurious-counterexample checks** (Fig. 3b) — "is the state `v_t`
//!   reachable from an initial state?" — answered by k-induction with a
//!   user-supplied bound `k`: if both the base case and the step case hold,
//!   the counterexample is guaranteed spurious; if only the step case fails
//!   the result is inconclusive and the paper's rule is to treat the
//!   counterexample as valid but record it.
//!
//! An explicit-state breadth-first reachability engine ([`ExplicitChecker`])
//! is provided as an independent oracle for cross-validating the SAT-based
//! results on small systems in tests and property tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod explicit;
mod kinduction;

pub use explicit::ExplicitChecker;
pub use kinduction::{
    CheckResult, CheckerMode, CheckerStats, KInductionChecker, SolverBackend, SpuriousResult,
};

#[cfg(test)]
mod proptests;
