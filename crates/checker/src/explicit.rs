//! The explicit-state engine: streamed concrete enumeration of transitions
//! and bounded reachability, usable both as a production oracle for small
//! input/state products and as an independent cross-validation oracle for
//! the SAT-based k-induction checker.
//!
//! Three properties make the engine production-grade rather than test-only:
//!
//! * **Streamed enumeration.** Input assignments and frame-0 valuations are
//!   produced by an [`Odometer`] — a cursor over per-variable value runs —
//!   so the cartesian product of the input ranges is never materialised.
//!   Memory is O(number of variables) regardless of how wide the inputs
//!   are; earlier revisions built the full product up front, which is
//!   exponential in the number of inputs.
//! * **Interned, resumable reachability.** Breadth-first exploration from
//!   the initial states interns every visited valuation once and records
//!   the layer structure, so repeated spurious-counterexample checks reuse
//!   the explored prefix and only extend it on demand.
//! * **Deterministic budgets.** Every query runs under a work budget
//!   (valuation/transition evaluations). Budget charging is a pure function
//!   of the query: cached reachability layers re-charge their recorded
//!   construction cost instead of being free, so whether a query exhausts
//!   its budget — and hence whether a [`crate::PortfolioOracle`] falls back
//!   to k-induction — never depends on which queries an engine instance
//!   served before. The cache accelerates wall-clock time, not the budget.
//!
//! **Exact agreement with k-induction.** The budgeted query methods decide
//! *the same formulas* as [`crate::KInductionChecker`]'s sessions — frame-0
//! state variables range over their full sort encoding (the bit-blaster
//! blocks out-of-range enumeration codes, which the domains here mirror),
//! inputs over their declared ranges, and the spurious check emulates the
//! base and step cases of k-induction rather than exact reachability. For
//! violated conditions the odometer enumerates candidate transitions in
//! exactly the canonical order of the SAT checker's counterexample
//! canonicalisation (raw-bit-pattern lexicographic: frame-0 variables in
//! declaration order, then frame-1 inputs), so the first violation found
//! *is* the lexicographically minimal transition the SAT checker would
//! return. Verdicts and counterexamples are therefore byte-identical across
//! engines, which the portfolio's cross-validation mode asserts.

use crate::kinduction::{CheckResult, CheckerStats, SpuriousResult};
use amle_expr::{Expr, Sort, Valuation, Value, VarId};
use amle_system::System;
use std::collections::{HashMap, HashSet};

/// Default per-query work budget used by [`ExplicitChecker::new`].
pub const DEFAULT_QUERY_BUDGET: u64 = 1 << 18;

/// The admissible values of one variable as inclusive runs of *raw* (bit
/// pattern) encodings in ascending raw order.
///
/// Raw order matches the order in which the SAT checker's counterexample
/// canonicalisation minimises variable words (most significant bit probed
/// first, preferring 0), which is what makes the explicit engine's first
/// violation the canonical one. For booleans, unsigned integers and
/// enumerations raw order coincides with value order; for signed integers
/// it enumerates `0..=max` before `min..=-1`.
#[derive(Debug, Clone)]
struct VarDomain {
    id: VarId,
    sort: Sort,
    /// Inclusive `(start, end)` runs of raw encodings, ascending.
    runs: Vec<(u64, u64)>,
    count: u64,
}

impl VarDomain {
    fn new(id: VarId, sort: Sort, lo: i64, hi: i64) -> VarDomain {
        debug_assert!(lo <= hi, "empty domain for {id}");
        let mut runs = Vec::new();
        match &sort {
            Sort::Int { bits, signed: true } => {
                let wrap = 1u64 << bits;
                if hi >= 0 {
                    runs.push((lo.max(0) as u64, hi as u64));
                }
                if lo < 0 {
                    let nlo = (lo as i128 + wrap as i128) as u64;
                    let nhi = (hi.min(-1) as i128 + wrap as i128) as u64;
                    runs.push((nlo, nhi));
                }
            }
            _ => runs.push((lo as u64, hi as u64)),
        }
        let count = runs.iter().map(|(a, b)| b - a + 1).sum();
        VarDomain {
            id,
            sort,
            runs,
            count,
        }
    }

    fn value_of_raw(&self, raw: u64) -> Value {
        Value::from_i64(&self.sort, raw as i64)
    }
}

/// Where an [`Odometer`] is in its enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OdometerState {
    /// `advance` has not been called yet.
    Fresh,
    /// The cursor points at the current assignment.
    Running,
    /// Every assignment has been produced.
    Done,
}

/// A streaming cursor over the cartesian product of per-variable value
/// domains, yielding assignments in canonical (raw-bit-pattern
/// lexicographic) order with the *last* variable varying fastest.
///
/// The odometer holds one `(run, raw)` cursor per variable — O(variables)
/// memory however large the product is — and advances in O(1) amortised
/// time per assignment. Use [`Odometer::advance`] +
/// [`Odometer::write_pairs`]/[`Odometer::write_valuation`] in hot loops to
/// avoid per-assignment allocation; the [`Iterator`] implementation clones
/// for convenience.
#[derive(Debug, Clone)]
pub struct Odometer {
    domains: Vec<VarDomain>,
    /// Per-variable cursor: (run index, raw encoding).
    cursor: Vec<(usize, u64)>,
    state: OdometerState,
}

impl Odometer {
    fn new(domains: Vec<VarDomain>) -> Odometer {
        let cursor = domains.iter().map(|d| (0, d.runs[0].0)).collect();
        Odometer {
            domains,
            cursor,
            state: OdometerState::Fresh,
        }
    }

    /// Total number of assignments, saturating at `u64::MAX`.
    ///
    /// An odometer over zero variables yields exactly one (empty)
    /// assignment. (Named `size` rather than `count` to stay clear of
    /// [`Iterator::count`], which would consume the odometer.)
    pub fn size(&self) -> u64 {
        let mut total: u128 = 1;
        for d in &self.domains {
            total = total.saturating_mul(d.count as u128);
            if total > u64::MAX as u128 {
                return u64::MAX;
            }
        }
        total as u64
    }

    /// Moves the cursor to the next assignment; returns `false` once every
    /// assignment has been produced.
    pub fn advance(&mut self) -> bool {
        match self.state {
            OdometerState::Done => false,
            OdometerState::Fresh => {
                self.state = OdometerState::Running;
                true
            }
            OdometerState::Running => {
                for i in (0..self.domains.len()).rev() {
                    let d = &self.domains[i];
                    let (run, raw) = self.cursor[i];
                    if raw < d.runs[run].1 {
                        self.cursor[i] = (run, raw + 1);
                        return true;
                    }
                    if run + 1 < d.runs.len() {
                        self.cursor[i] = (run + 1, d.runs[run + 1].0);
                        return true;
                    }
                    // Digit exhausted: reset it and carry into the next
                    // more-significant variable.
                    self.cursor[i] = (0, d.runs[0].0);
                }
                self.state = OdometerState::Done;
                false
            }
        }
    }

    /// Rewinds the odometer to the state before the first `advance`.
    pub fn reset(&mut self) {
        for (cursor, d) in self.cursor.iter_mut().zip(&self.domains) {
            *cursor = (0, d.runs[0].0);
        }
        self.state = OdometerState::Fresh;
    }

    /// Writes the current assignment into `out` as `(variable, value)`
    /// pairs in domain order, reusing the buffer.
    pub fn write_pairs(&self, out: &mut Vec<(VarId, Value)>) {
        debug_assert_eq!(self.state, OdometerState::Running);
        out.clear();
        for (d, &(_, raw)) in self.domains.iter().zip(&self.cursor) {
            out.push((d.id, d.value_of_raw(raw)));
        }
    }

    /// Writes the current assignment into a valuation (touching only the
    /// odometer's own variables).
    pub fn write_valuation(&self, v: &mut Valuation) {
        debug_assert_eq!(self.state, OdometerState::Running);
        for (d, &(_, raw)) in self.domains.iter().zip(&self.cursor) {
            v.set(d.id, d.value_of_raw(raw));
        }
    }
}

impl Iterator for Odometer {
    type Item = Vec<(VarId, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.advance() {
            return None;
        }
        let mut out = Vec::with_capacity(self.domains.len());
        self.write_pairs(&mut out);
        Some(out)
    }
}

/// The interned, resumable breadth-first reachability cache.
#[derive(Debug, Default)]
struct ReachCache {
    /// Interner: valuation → dense index into `states`.
    index: HashMap<Valuation, u32>,
    /// Every distinct reachable valuation, in BFS discovery order.
    states: Vec<Valuation>,
    /// `layer_ends[d]` = number of states with BFS depth ≤ `d`.
    layer_ends: Vec<usize>,
    /// Deterministic construction cost of each layer (expansions charged to
    /// whichever query triggered — or re-uses — the layer).
    layer_costs: Vec<u64>,
    /// Set once a layer added no new states: the reachable set is fully
    /// explored and deeper queries need no further expansion.
    complete: bool,
}

impl ReachCache {
    fn intern(&mut self, v: Valuation) {
        if !self.index.contains_key(&v) {
            let id = self.states.len() as u32;
            self.index.insert(v.clone(), id);
            self.states.push(v);
        }
    }
}

/// Explicit-state oracle over a [`System`]: streamed condition checks,
/// k-induction-shaped spurious checks and classic fixpoint reachability,
/// all under deterministic work budgets.
///
/// See the module-level documentation above for the engine's guarantees and its
/// exact-agreement relationship with [`crate::KInductionChecker`].
#[derive(Debug)]
pub struct ExplicitChecker<'a> {
    system: &'a System,
    /// Cap on interned states for the legacy fixpoint queries
    /// ([`ExplicitChecker::reachable_states`] and friends).
    max_states: usize,
    /// Work budget for one budgeted query (used by the unbudgeted
    /// [`crate::ConditionOracle`] entry points via `u64::MAX`).
    query_budget: u64,
    stats: CheckerStats,
    reach: ReachCache,
}

impl<'a> ExplicitChecker<'a> {
    /// Creates an explicit checker with a cap on the number of distinct
    /// states the fixpoint queries may intern, and the default per-query
    /// work budget.
    pub fn new(system: &'a System, max_states: usize) -> Self {
        Self::with_budget(system, max_states, DEFAULT_QUERY_BUDGET)
    }

    /// Creates an explicit checker with an explicit per-query work budget.
    pub fn with_budget(system: &'a System, max_states: usize, query_budget: u64) -> Self {
        ExplicitChecker {
            system,
            max_states,
            query_budget,
            stats: CheckerStats::default(),
            reach: ReachCache::default(),
        }
    }

    /// The system under check.
    pub fn system(&self) -> &System {
        self.system
    }

    /// The per-query work budget of this checker.
    pub fn query_budget(&self) -> u64 {
        self.query_budget
    }

    /// Statistics accumulated so far. `explicit_work` counts charged work
    /// units, which are a pure function of the queries served (cached
    /// reachability layers re-charge their recorded cost).
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// Charges `cost` work units against the query budget. Returns `false`
    /// (leaving the budget untouched) when the budget cannot cover the
    /// cost.
    fn charge(stats: &mut CheckerStats, budget: &mut u64, cost: u64) -> bool {
        if *budget < cost {
            return false;
        }
        *budget -= cost;
        stats.explicit_work += cost;
        true
    }

    fn domain_of(&self, id: VarId) -> VarDomain {
        let sort = self.system.vars().sort(id).clone();
        let (lo, hi) = if self.system.is_input(id) {
            self.system.input_range(id)
        } else {
            sort.value_range()
        };
        VarDomain::new(id, sort, lo, hi)
    }

    /// The streamed odometer over all input assignments (the cartesian
    /// product of the declared input ranges, never materialised).
    pub fn input_assignments(&self) -> Odometer {
        Odometer::new(
            self.system
                .input_vars()
                .iter()
                .map(|id| self.domain_of(*id))
                .collect(),
        )
    }

    /// The streamed odometer over all frame-0 valuations of a condition
    /// query: state variables range over their full sort encoding (matching
    /// the bit-blaster, which only blocks out-of-range enumeration codes),
    /// inputs over their declared ranges — in declaration order, exactly
    /// the canonicalisation order of the SAT checker.
    fn frame0_assignments(&self) -> Odometer {
        Odometer::new(
            self.system
                .all_vars()
                .into_iter()
                .map(|id| self.domain_of(id))
                .collect(),
        )
    }

    /// Estimated work of one condition check: frame-0 valuations × input
    /// assignments, saturating.
    pub fn estimate_condition_cost(&self) -> u64 {
        let f0 = self.frame0_assignments().size() as u128;
        let inp = self.input_assignments().size() as u128;
        u64::try_from(f0.saturating_mul(inp)).unwrap_or(u64::MAX)
    }

    /// Estimated work of one spurious check with bound `k` (dominated by
    /// the step case: up to `k` expansions of the full valuation space).
    pub fn estimate_spurious_cost(&self, k: usize) -> u64 {
        let f0 = self.frame0_assignments().size() as u128;
        let inp = self.input_assignments().size() as u128;
        u64::try_from(f0.saturating_mul(inp).saturating_mul(k.max(1) as u128)).unwrap_or(u64::MAX)
    }

    /// Condition check (Fig. 3a) under a work budget, deciding exactly the
    /// formula of [`crate::KInductionChecker::check_condition`]. Returns
    /// `None` when the budget runs out before an answer is reached; a
    /// `Some` answer — including the counterexample valuations — is
    /// byte-identical to the SAT checker's.
    pub fn check_condition_budgeted(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
        budget: &mut u64,
    ) -> Option<CheckResult> {
        // The emulated k-induction cases evaluate the query predicates once
        // per enumerated valuation; canonical forms (memoised in the
        // interner) shrink the evaluated DAG — constant subtrees folded,
        // duplicate conjuncts deduplicated — without touching verdicts or
        // the canonical counterexample order. The conclusion stays in
        // disjunct form: `⋁ dᵢ` evaluates as "some disjunct holds", which
        // short-circuits exactly like the folded or-chain would.
        let assumption = assumption.canonical();
        let blocked: Vec<Expr> = blocked.iter().map(Expr::canonical).collect();
        let outgoing: Vec<Expr> = outgoing.iter().map(Expr::canonical).collect();
        let (assumption, blocked, outgoing) = (&assumption, &blocked, &outgoing);
        let system = self.system;
        let mut frame0 = self.frame0_assignments();
        let mut inputs = self.input_assignments();
        let stats = &mut self.stats;
        let vars = system.vars();
        let mut from = Valuation::zeroed(vars);
        let mut to = Valuation::zeroed(vars);
        while frame0.advance() {
            if !Self::charge(stats, budget, 1) {
                return None;
            }
            frame0.write_valuation(&mut from);
            if !assumption.eval_bool(&from) {
                continue;
            }
            if blocked.iter().any(|b| b.eval_bool(&from)) {
                continue;
            }
            // Frame-1 state values are functions of `from` alone; compute
            // them once and sweep the frame-1 inputs.
            for id in system.state_vars() {
                to.set(*id, system.update(*id).eval(&from));
            }
            inputs.reset();
            while inputs.advance() {
                if !Self::charge(stats, budget, 1) {
                    return None;
                }
                inputs.write_valuation(&mut to);
                if !outgoing.iter().any(|d| d.eval_bool(&to)) {
                    stats.condition_checks += 1;
                    stats.explicit_queries += 1;
                    return Some(CheckResult::Violated {
                        from: from.clone(),
                        to: to.clone(),
                    });
                }
            }
        }
        stats.condition_checks += 1;
        stats.explicit_queries += 1;
        Some(CheckResult::Valid)
    }

    /// Spurious-counterexample check (Fig. 3b) under a work budget,
    /// emulating the k-induction base and step cases exactly (rather than
    /// deciding exact reachability, which could disagree with the bounded
    /// SAT verdicts). Returns `None` on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, like the SAT checker.
    pub fn check_spurious_budgeted(
        &mut self,
        state_formula: &Expr,
        k: usize,
        budget: &mut u64,
    ) -> Option<SpuriousResult> {
        assert!(k > 0, "k-induction bound must be positive");
        let state_formula = &state_formula.canonical();
        let result = if self.base_reachable_within(state_formula, k, budget)? {
            SpuriousResult::Reachable
        } else if self.step_case_holds(state_formula, k, budget)? {
            SpuriousResult::Spurious
        } else {
            SpuriousResult::Inconclusive
        };
        self.stats.spurious_checks += 1;
        self.stats.explicit_queries += 1;
        Some(result)
    }

    /// Condition check with an effectively unbounded budget (the
    /// [`crate::ConditionOracle`] entry point).
    pub(crate) fn check_condition_unbudgeted(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        let mut budget = u64::MAX;
        self.check_condition_budgeted(assumption, blocked, outgoing, &mut budget)
            .expect("unbounded budget cannot be exhausted")
    }

    /// Spurious check with an effectively unbounded budget.
    pub(crate) fn check_spurious_unbudgeted(
        &mut self,
        state_formula: &Expr,
        k: usize,
    ) -> SpuriousResult {
        let mut budget = u64::MAX;
        self.check_spurious_budgeted(state_formula, k, &mut budget)
            .expect("unbounded budget cannot be exhausted")
    }

    /// The k-induction base case: is a state satisfying `formula` reachable
    /// from `Init` within `k` steps? Scans (and lazily extends) the interned
    /// BFS layers; cached layers re-charge their recorded construction cost
    /// so the budget verdict is a pure function of the query.
    fn base_reachable_within(
        &mut self,
        formula: &Expr,
        k: usize,
        budget: &mut u64,
    ) -> Option<bool> {
        let mut scanned = 0usize;
        let mut depth = 0usize;
        loop {
            if depth < self.reach.layer_ends.len() {
                let cost = self.reach.layer_costs[depth];
                if !Self::charge(&mut self.stats, budget, cost) {
                    return None;
                }
            } else if self.reach.complete {
                break;
            } else if !self.build_next_layer(budget) {
                return None;
            }
            let end = self.reach.layer_ends[depth];
            for i in scanned..end {
                if !Self::charge(&mut self.stats, budget, 1) {
                    return None;
                }
                if formula.eval_bool(&self.reach.states[i]) {
                    return Some(true);
                }
            }
            scanned = end;
            if depth == k {
                break;
            }
            depth += 1;
        }
        Some(false)
    }

    /// Builds the next BFS layer of the reachability cache, charging its
    /// (deterministic) construction cost. Returns `false` on budget
    /// exhaustion, leaving the cache unchanged.
    fn build_next_layer(&mut self, budget: &mut u64) -> bool {
        let system = self.system;
        let d = self.reach.layer_ends.len();
        let mut inputs = self.input_assignments();
        let input_count = inputs.size();
        let mut pairs: Vec<(VarId, Value)> = Vec::new();
        if d == 0 {
            // Layer 0: the initial state values under every input
            // assignment.
            if !Self::charge(&mut self.stats, budget, input_count) {
                return false;
            }
            while inputs.advance() {
                inputs.write_pairs(&mut pairs);
                let mut v = system.initial_valuation();
                for (id, value) in &pairs {
                    v.set(*id, *value);
                }
                self.reach.intern(v);
            }
            self.reach.layer_ends.push(self.reach.states.len());
            self.reach.layer_costs.push(input_count);
            return true;
        }
        let start = if d == 1 {
            0
        } else {
            self.reach.layer_ends[d - 2]
        };
        let end = self.reach.layer_ends[d - 1];
        let cost = ((end - start) as u64).saturating_mul(input_count);
        if !Self::charge(&mut self.stats, budget, cost) {
            return false;
        }
        for i in start..end {
            let current = self.reach.states[i].clone();
            inputs.reset();
            while inputs.advance() {
                inputs.write_pairs(&mut pairs);
                self.reach.intern(system.step(&current, &pairs));
            }
        }
        let new_end = self.reach.states.len();
        self.reach.complete = new_end == end;
        self.reach.layer_ends.push(new_end);
        self.reach.layer_costs.push(cost);
        true
    }

    /// The k-induction step case: `true` when there is **no** path of `k`
    /// transitions whose first `k` valuations violate `formula` and whose
    /// last satisfies it. Streams the frontier forward from *all* frame-0
    /// valuations (matching the step session, which has no `Init`
    /// constraint).
    fn step_case_holds(&mut self, formula: &Expr, k: usize, budget: &mut u64) -> Option<bool> {
        let system = self.system;
        let mut frame0 = self.frame0_assignments();
        let mut inputs = self.input_assignments();
        let mut pairs: Vec<(VarId, Value)> = Vec::new();
        let mut v = Valuation::zeroed(system.vars());
        let mut current: Vec<Valuation> = Vec::new();
        while frame0.advance() {
            if !Self::charge(&mut self.stats, budget, 1) {
                return None;
            }
            frame0.write_valuation(&mut v);
            if !formula.eval_bool(&v) {
                current.push(v.clone());
            }
        }
        let mut seen: HashSet<Valuation> = HashSet::new();
        for depth in 1..=k {
            if current.is_empty() {
                return Some(true);
            }
            let last = depth == k;
            let mut next_layer: Vec<Valuation> = Vec::new();
            seen.clear();
            for state in &current {
                inputs.reset();
                while inputs.advance() {
                    if !Self::charge(&mut self.stats, budget, 1) {
                        return None;
                    }
                    inputs.write_pairs(&mut pairs);
                    let next = system.step(state, &pairs);
                    if last {
                        if formula.eval_bool(&next) {
                            return Some(false);
                        }
                    } else if !formula.eval_bool(&next) && seen.insert(next.clone()) {
                        next_layer.push(next);
                    }
                }
            }
            if !last {
                current = next_layer;
            }
        }
        Some(true)
    }

    /// Runs the interned BFS to its fixpoint, honouring `max_states`.
    fn explore_to_fixpoint(&mut self) -> bool {
        let mut budget = u64::MAX;
        while !self.reach.complete {
            if self.reach.states.len() > self.max_states {
                return false;
            }
            if !self.build_next_layer(&mut budget) {
                return false;
            }
        }
        self.reach.states.len() <= self.max_states
    }

    /// Computes the set of reachable valuations (up to the state cap).
    ///
    /// Returns `None` if the cap is exhausted before the exploration
    /// completes. Exploration already performed is retained and resumed by
    /// later queries.
    pub fn reachable_states(&mut self) -> Option<HashSet<Valuation>> {
        if !self.explore_to_fixpoint() {
            return None;
        }
        Some(self.reach.states.iter().cloned().collect())
    }

    /// Decides whether any reachable state satisfies the predicate.
    ///
    /// Returns `None` when the state cap is exhausted.
    pub fn is_reachable(&mut self, predicate: &Expr) -> Option<bool> {
        if !self.explore_to_fixpoint() {
            return None;
        }
        Some(self.reach.states.iter().any(|v| predicate.eval_bool(v)))
    }

    /// Decides whether the condition `assumption ∧ R ⟹ conclusion'` holds on
    /// all *reachable* transitions. This is stronger than the k-induction
    /// condition check (which ranges over arbitrary, possibly unreachable,
    /// pre-states), so `Valid` answers from the SAT checker must imply `true`
    /// here — the property exploited by the cross-validation tests.
    ///
    /// Returns `None` when the state cap is exhausted.
    pub fn condition_holds_on_reachable(
        &mut self,
        assumption: &Expr,
        conclusion: &Expr,
    ) -> Option<bool> {
        if !self.explore_to_fixpoint() {
            return None;
        }
        let mut inputs = self.input_assignments();
        let mut pairs: Vec<(VarId, Value)> = Vec::new();
        for i in 0..self.reach.states.len() {
            let state = self.reach.states[i].clone();
            if !assumption.eval_bool(&state) {
                continue;
            }
            inputs.reset();
            while inputs.advance() {
                inputs.write_pairs(&mut pairs);
                let next = self.system.step(&state, &pairs);
                if !conclusion.eval_bool(&next) {
                    return Some(false);
                }
            }
        }
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KInductionChecker;
    use amle_expr::Sort;
    use amle_system::SystemBuilder;

    fn small_counter() -> System {
        let mut b = SystemBuilder::new();
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(3), Value::Int(0)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(4, 3))
            .ite(&ce.add(&Expr::int_val(1, 3)), &ce);
        b.update(c, b.var(en).ite(&bumped, &ce)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachable_states_of_saturating_counter() {
        let sys = small_counter();
        let mut checker = ExplicitChecker::new(&sys, 1000);
        let states = checker.reachable_states().unwrap();
        let c = sys.vars().lookup("c").unwrap();
        let values: std::collections::BTreeSet<i64> =
            states.iter().map(|v| v.value(c).to_i64()).collect();
        assert_eq!(values, (0..=4).collect());
    }

    #[test]
    fn reachability_queries() {
        let sys = small_counter();
        let mut checker = ExplicitChecker::new(&sys, 1000);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        assert_eq!(
            checker.is_reachable(&ce.eq(&Expr::int_val(4, 3))),
            Some(true)
        );
        assert_eq!(
            checker.is_reachable(&ce.eq(&Expr::int_val(7, 3))),
            Some(false)
        );
    }

    #[test]
    fn state_budget_is_respected() {
        let sys = small_counter();
        let mut checker = ExplicitChecker::new(&sys, 2);
        assert_eq!(checker.reachable_states(), None);
        assert_eq!(checker.is_reachable(&Expr::true_()), None);
    }

    #[test]
    fn condition_check_on_reachable_states() {
        let sys = small_counter();
        let mut checker = ExplicitChecker::new(&sys, 1000);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        // The counter never exceeds 4 on reachable transitions.
        assert_eq!(
            checker.condition_holds_on_reachable(&Expr::true_(), &ce.le(&Expr::int_val(4, 3))),
            Some(true)
        );
        // It does reach values above 2.
        assert_eq!(
            checker.condition_holds_on_reachable(&Expr::true_(), &ce.le(&Expr::int_val(2, 3))),
            Some(false)
        );
    }

    #[test]
    fn odometer_streams_without_materialising_wide_products() {
        // Four 15-bit inputs: the cartesian product has 2^60 assignments;
        // the retired implementation materialised it up front. The odometer
        // must report the (saturated-safe) count and stream the first few
        // assignments in O(1) memory.
        let mut b = SystemBuilder::new();
        for name in ["a", "b", "c", "d"] {
            b.input(name, Sort::int(15)).unwrap();
        }
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        b.update(s, Expr::true_()).unwrap();
        let sys = b.build().unwrap();
        let checker = ExplicitChecker::new(&sys, 10);
        let odo = checker.input_assignments();
        assert_eq!(odo.size(), 1u64 << 60);
        let first: Vec<_> = odo.take(3).collect();
        assert_eq!(first.len(), 3);
        // Last variable varies fastest; all values start at the range low.
        assert_eq!(first[0].iter().map(|(_, v)| v.to_i64()).max(), Some(0));
        assert_eq!(first[1][3].1.to_i64(), 1);
        assert_eq!(first[2][3].1.to_i64(), 2);
    }

    #[test]
    fn odometer_orders_signed_domains_by_raw_pattern() {
        // Signed 3-bit input restricted to -2..=2: raw-pattern order is
        // 0, 1, 2 (non-negative) then -2, -1 (sign bit set), matching the
        // SAT canonicalisation order, not numeric order.
        let mut b = SystemBuilder::new();
        let x = b.input_in_range("x", Sort::signed_int(3), -2, 2).unwrap();
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        b.update(s, Expr::true_()).unwrap();
        let sys = b.build().unwrap();
        let checker = ExplicitChecker::new(&sys, 10);
        let values: Vec<i64> = checker
            .input_assignments()
            .map(|a| a[0].1.to_i64())
            .collect();
        assert_eq!(values, vec![0, 1, 2, -2, -1]);
        let _ = x;
    }

    #[test]
    fn odometer_over_zero_inputs_yields_one_empty_assignment() {
        let mut b = SystemBuilder::new();
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        b.update(s, Expr::true_()).unwrap();
        let sys = b.build().unwrap();
        let checker = ExplicitChecker::new(&sys, 10);
        let mut odo = checker.input_assignments();
        assert_eq!(odo.size(), 1);
        assert!(odo.advance());
        assert!(!odo.advance());
    }

    #[test]
    fn budgeted_condition_check_agrees_with_kinduction_exactly() {
        let sys = small_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        let mut explicit = ExplicitChecker::new(&sys, 10_000);
        let mut sat = KInductionChecker::new(&sys);
        for bound in 0..8 {
            let conclusion = ce.ne(&Expr::int_val(bound, 3));
            let mut budget = u64::MAX;
            let explicit_result = explicit
                .check_condition_budgeted(
                    &Expr::true_(),
                    &[],
                    std::slice::from_ref(&conclusion),
                    &mut budget,
                )
                .unwrap();
            let sat_result = sat.check_condition(&Expr::true_(), &[], &conclusion);
            assert_eq!(
                explicit_result, sat_result,
                "engines disagree for bound {bound}"
            );
        }
    }

    #[test]
    fn budgeted_spurious_check_agrees_with_kinduction() {
        let sys = small_counter();
        let c = sys.vars().lookup("c").unwrap();
        let mut explicit = ExplicitChecker::new(&sys, 10_000);
        let mut sat = KInductionChecker::new(&sys);
        for target in 0..8 {
            let mut state = sys.initial_valuation();
            state.set(c, Value::Int(target));
            let formula = sat.state_formula(&state, &[c]);
            for k in [1, 2, 8] {
                let mut budget = u64::MAX;
                let explicit_verdict = explicit
                    .check_spurious_budgeted(&formula, k, &mut budget)
                    .unwrap();
                let sat_verdict = sat.check_spurious(&formula, k);
                assert_eq!(
                    explicit_verdict, sat_verdict,
                    "verdicts disagree for target {target}, k {k}"
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_returns_none_and_is_deterministic() {
        let sys = small_counter();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        let conclusion = ce.le(&Expr::int_val(4, 3));
        let mut checker = ExplicitChecker::new(&sys, 10_000);
        let mut tiny = 3;
        assert_eq!(
            checker.check_condition_budgeted(
                &Expr::true_(),
                &[],
                std::slice::from_ref(&conclusion),
                &mut tiny
            ),
            None
        );
        // A warmed-up checker must make the same budget decision: charging
        // is a pure function of the query, not of cache state.
        let mut budget = u64::MAX;
        let _ = checker.check_spurious_budgeted(&ce.eq(&Expr::int_val(4, 3)), 3, &mut budget);
        let mut tiny = 3;
        assert_eq!(
            checker.check_condition_budgeted(
                &Expr::true_(),
                &[],
                std::slice::from_ref(&conclusion),
                &mut tiny
            ),
            None
        );
        // And with enough budget the answer appears.
        let mut enough = u64::MAX;
        assert!(checker
            .check_condition_budgeted(
                &Expr::true_(),
                &[],
                std::slice::from_ref(&conclusion),
                &mut enough
            )
            .is_some());
    }

    #[test]
    fn cached_reach_layers_recharge_their_cost() {
        let sys = small_counter();
        let c = sys.vars().lookup("c").unwrap();
        let mut checker = ExplicitChecker::new(&sys, 10_000);
        let mut state = sys.initial_valuation();
        state.set(c, Value::Int(4));
        let formula = crate::oracle::state_formula(sys.vars(), &state, &[c]);
        let mut first = u64::MAX;
        let verdict = checker
            .check_spurious_budgeted(&formula, 6, &mut first)
            .unwrap();
        let spent_first = u64::MAX - first;
        let mut second = u64::MAX;
        assert_eq!(
            checker.check_spurious_budgeted(&formula, 6, &mut second),
            Some(verdict)
        );
        let spent_second = u64::MAX - second;
        assert_eq!(
            spent_first, spent_second,
            "budget charging must not depend on the cache state"
        );
    }
}
