//! Explicit-state reachability: an independent oracle used to cross-validate
//! the SAT-based k-induction results (the Fig. 3b spurious-counterexample
//! checks of the paper) on small systems.

use amle_expr::{Expr, Valuation, Value, VarId};
use amle_system::System;
use std::collections::{HashSet, VecDeque};

/// Breadth-first explicit-state reachability over a [`System`].
///
/// The engine enumerates every combination of input values on every step, so
/// it is only usable when the product of the input ranges is small; callers
/// supply a state budget and receive `None` when it is exhausted. The active
/// learning pipeline never depends on this checker — it exists so that tests
/// can confirm the bit-blasted k-induction checker against ground truth.
#[derive(Debug)]
pub struct ExplicitChecker<'a> {
    system: &'a System,
    max_states: usize,
}

impl<'a> ExplicitChecker<'a> {
    /// Creates an explicit checker with a budget on the number of distinct
    /// states to explore.
    pub fn new(system: &'a System, max_states: usize) -> Self {
        ExplicitChecker { system, max_states }
    }

    /// Enumerates all input assignments (cartesian product of the ranges).
    fn input_assignments(&self) -> Vec<Vec<(VarId, Value)>> {
        let mut assignments: Vec<Vec<(VarId, Value)>> = vec![Vec::new()];
        for id in self.system.input_vars() {
            let (lo, hi) = self.system.input_range(*id);
            let sort = self.system.vars().sort(*id).clone();
            let mut next = Vec::new();
            for assignment in &assignments {
                for raw in lo..=hi {
                    let mut extended = assignment.clone();
                    extended.push((*id, Value::from_i64(&sort, raw)));
                    next.push(extended);
                }
            }
            assignments = next;
        }
        assignments
    }

    /// Computes the set of reachable valuations (up to the state budget).
    ///
    /// Returns `None` if the budget is exhausted before the exploration
    /// completes.
    pub fn reachable_states(&self) -> Option<HashSet<Valuation>> {
        let inputs = self.input_assignments();
        let mut seen: HashSet<Valuation> = HashSet::new();
        let mut queue: VecDeque<Valuation> = VecDeque::new();

        // Initial states: the initial valuation with every input assignment.
        for assignment in &inputs {
            let mut v = self.system.initial_valuation();
            for (id, value) in assignment {
                v.set(*id, *value);
            }
            if seen.insert(v.clone()) {
                queue.push_back(v);
            }
        }

        while let Some(current) = queue.pop_front() {
            if seen.len() > self.max_states {
                return None;
            }
            for assignment in &inputs {
                let next = self.system.step(&current, assignment);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        Some(seen)
    }

    /// Decides whether any reachable state satisfies the predicate.
    ///
    /// Returns `None` when the state budget is exhausted.
    pub fn is_reachable(&self, predicate: &Expr) -> Option<bool> {
        self.reachable_states()
            .map(|states| states.iter().any(|v| predicate.eval_bool(v)))
    }

    /// Decides whether the condition `assumption ∧ R ⟹ conclusion'` holds on
    /// all *reachable* transitions. This is stronger than the k-induction
    /// condition check (which ranges over arbitrary, possibly unreachable,
    /// pre-states), so `Valid` answers from the SAT checker must imply `true`
    /// here — the property exploited by the cross-validation tests.
    ///
    /// Returns `None` when the state budget is exhausted.
    pub fn condition_holds_on_reachable(
        &self,
        assumption: &Expr,
        conclusion: &Expr,
    ) -> Option<bool> {
        let states = self.reachable_states()?;
        let inputs = self.input_assignments();
        for state in &states {
            if !assumption.eval_bool(state) {
                continue;
            }
            for assignment in &inputs {
                let next = self.system.step(state, assignment);
                if !conclusion.eval_bool(&next) {
                    return Some(false);
                }
            }
        }
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Sort;
    use amle_system::SystemBuilder;

    fn small_counter() -> System {
        let mut b = SystemBuilder::new();
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(3), Value::Int(0)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(4, 3))
            .ite(&ce.add(&Expr::int_val(1, 3)), &ce);
        b.update(c, b.var(en).ite(&bumped, &ce)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachable_states_of_saturating_counter() {
        let sys = small_counter();
        let checker = ExplicitChecker::new(&sys, 1000);
        let states = checker.reachable_states().unwrap();
        let c = sys.vars().lookup("c").unwrap();
        let values: std::collections::BTreeSet<i64> =
            states.iter().map(|v| v.value(c).to_i64()).collect();
        assert_eq!(values, (0..=4).collect());
    }

    #[test]
    fn reachability_queries() {
        let sys = small_counter();
        let checker = ExplicitChecker::new(&sys, 1000);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        assert_eq!(
            checker.is_reachable(&ce.eq(&Expr::int_val(4, 3))),
            Some(true)
        );
        assert_eq!(
            checker.is_reachable(&ce.eq(&Expr::int_val(7, 3))),
            Some(false)
        );
    }

    #[test]
    fn state_budget_is_respected() {
        let sys = small_counter();
        let checker = ExplicitChecker::new(&sys, 2);
        assert_eq!(checker.reachable_states(), None);
        assert_eq!(checker.is_reachable(&Expr::true_()), None);
    }

    #[test]
    fn condition_check_on_reachable_states() {
        let sys = small_counter();
        let checker = ExplicitChecker::new(&sys, 1000);
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);
        // The counter never exceeds 4 on reachable transitions.
        assert_eq!(
            checker.condition_holds_on_reachable(&Expr::true_(), &ce.le(&Expr::int_val(4, 3))),
            Some(true)
        );
        // It does reach values above 2.
        assert_eq!(
            checker.condition_holds_on_reachable(&Expr::true_(), &ce.le(&Expr::int_val(2, 3))),
            Some(false)
        );
    }
}
