//! The pluggable condition-oracle interface.
//!
//! The active-learning loop asks exactly two kinds of questions (Fig. 3 of
//! the paper): condition checks and spurious-counterexample checks. Both are
//! decision procedures over the system's transition relation, and nothing in
//! the loop depends on *how* they are decided — the k-induction checker
//! answers them with incremental SAT, the explicit engine by streaming
//! concrete enumeration, and the portfolio by routing each query to
//! whichever engine its size estimate favours.
//!
//! [`ConditionOracle`] captures that seam. Every implementation in this
//! crate is **answer-deterministic**: for a given query the verdict — and,
//! for violated conditions, the counterexample transition — is a pure
//! function of the query and the system, independent of the engine, of
//! session history and of worker count. The k-induction checker achieves
//! this by canonicalising counterexamples to the lexicographically minimal
//! satisfying transition; the explicit engine enumerates candidate
//! transitions in exactly that canonical order, so its first hit *is* the
//! minimal one. This agreement is what lets `amle-core` cache verdicts
//! across iterations and swap engines without perturbing a run's semantic
//! fingerprint, and it is asserted at runtime by the portfolio's
//! cross-validation mode.

use crate::explicit::ExplicitChecker;
use crate::kinduction::{CheckResult, CheckerStats, KInductionChecker, SpuriousResult};
use crate::portfolio::PortfolioOracle;
use amle_expr::{Expr, Valuation, VarId, VarSet};
use amle_system::System;

/// A decision procedure for the two query shapes of the learning loop.
///
/// Implementations must be answer-deterministic (see the module-level
/// documentation): two oracles over the same system must return
/// identical results for identical queries, including the counterexample
/// valuations of violated conditions.
pub trait ConditionOracle: Send {
    /// Checks a completeness condition (Fig. 3a): is there a transition from
    /// a state satisfying `assumption` (and none of the `blocked` state
    /// formulas) whose successor violates the conclusion `⋁ outgoing'`?
    ///
    /// The conclusion travels as its structured disjunct list rather than a
    /// pre-built or-chain so that incremental engines can encode only the
    /// disjuncts a session has not seen yet (the learning loop's conclusion
    /// sets grow monotonically per state). Engines that need the folded
    /// formula build it themselves; verdicts never depend on the packaging.
    fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult;

    /// Spurious-counterexample check (Fig. 3b): decides with bound `k`
    /// whether the state characterised by `state_formula` is unreachable.
    fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult;

    /// Statistics accumulated by this oracle so far, including the
    /// per-engine query attribution counters.
    fn stats(&self) -> CheckerStats;

    /// A short static name of the engine, for reports and tables.
    fn engine_name(&self) -> &'static str;
}

/// The state formula `s' := ⋀ (x_i = v(x_i))` over the given variables, used
/// both to block spurious states and to query reachability.
///
/// This is engine-independent (it only reads the variable table), so it
/// lives next to the oracle trait rather than on any one checker. The
/// conjunction is built through the canonical constructors
/// ([`Expr::canonical`]): the same state described over the same variables
/// always interns to the same node, whatever order the caller's variable
/// list is in — which is what lets the checkers' session maps (activation
/// literals, blocked-state encodings) and the explicit engine's emulated
/// base/step cases treat repeated states as O(1) repeats. State formulas
/// are internal to checking and never rendered, so the canonical shape
/// cannot perturb any report.
pub fn state_formula(vars: &VarSet, state: &Valuation, over: &[VarId]) -> Expr {
    Expr::and_all(over.iter().map(|id| {
        let sort = vars.sort(*id).clone();
        let value = Expr::constant(&sort, state.value(*id)).expect("trace value fits sort");
        Expr::var(*id, sort).eq(&value)
    }))
    .canonical()
}

/// Which oracle implementation answers the loop's queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OracleKind {
    /// The incremental SAT k-induction checker for every query. The paper's
    /// configuration and the default.
    #[default]
    KInduction,
    /// Explicit-first: every query is attempted with the streaming
    /// explicit-state engine and falls back to k-induction only when the
    /// per-query work budget runs out.
    Explicit,
    /// The portfolio: each query is routed by its estimated concrete size —
    /// small input/state products go to the explicit engine, everything
    /// else (and every budget exhaustion) to k-induction.
    Portfolio,
}

impl OracleKind {
    /// The flag/environment spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::KInduction => "kinduction",
            OracleKind::Explicit => "explicit",
            OracleKind::Portfolio => "portfolio",
        }
    }

    /// Parses a flag/environment spelling (`kinduction`, `explicit` or
    /// `portfolio`).
    pub fn from_name(name: &str) -> Option<OracleKind> {
        match name.trim() {
            "kinduction" | "k-induction" | "sat" => Some(OracleKind::KInduction),
            "explicit" => Some(OracleKind::Explicit),
            "portfolio" => Some(OracleKind::Portfolio),
            _ => None,
        }
    }
}

/// Construction-time settings of an oracle stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleSettings {
    /// Which engine (or combination) answers queries.
    pub kind: OracleKind,
    /// Work budget (state/transition evaluations) the explicit engine may
    /// spend on a single query before the portfolio falls back to
    /// k-induction.
    pub explicit_budget: u64,
    /// Portfolio routing threshold: a query goes to the explicit engine only
    /// when its estimated concrete cost (input/state product size) is at
    /// most this many evaluations.
    pub route_threshold: u64,
    /// When `true`, every query the portfolio answers explicitly is *also*
    /// answered by k-induction and the two results are asserted equal — the
    /// cross-validation mode used by the differential tests.
    pub cross_validate: bool,
    /// Delta-encode conclusion disjunctions in the k-induction condition
    /// session (default). `false` restores the full per-query or-chain
    /// encode; results are byte-identical either way.
    pub conclusion_delta: bool,
    /// Chain-encode base-session frame disjunctions in the k-induction
    /// spurious checks (default). `false` restores the full per-`(formula,
    /// k)` frame clause; results are byte-identical either way.
    pub base_delta: bool,
    /// CDCL search policy for every SAT session the oracle stack creates.
    /// Verdict-neutral: only search effort (conflicts, propagations, wall
    /// time) depends on it.
    pub solver: amle_sat::SolverConfig,
}

impl Default for OracleSettings {
    fn default() -> Self {
        OracleSettings {
            kind: OracleKind::default(),
            explicit_budget: DEFAULT_EXPLICIT_BUDGET,
            route_threshold: DEFAULT_ROUTE_THRESHOLD,
            cross_validate: false,
            conclusion_delta: true,
            base_delta: true,
            solver: amle_sat::SolverConfig::default(),
        }
    }
}

/// Default per-query work budget of the explicit engine.
pub const DEFAULT_EXPLICIT_BUDGET: u64 = 1 << 18;

/// Default portfolio routing threshold (estimated evaluations).
pub const DEFAULT_ROUTE_THRESHOLD: u64 = 1 << 14;

/// Builds the oracle stack described by `settings` over `system`.
///
/// * [`OracleKind::KInduction`] — a bare [`KInductionChecker`];
/// * [`OracleKind::Explicit`] — a [`PortfolioOracle`] with an unbounded
///   routing threshold (explicit-first, k-induction rescue on budget
///   exhaustion);
/// * [`OracleKind::Portfolio`] — a [`PortfolioOracle`] with the configured
///   threshold.
///
/// Each call builds fresh sessions with zeroed statistics, so the parallel
/// engine can call it once per worker.
pub fn build_oracle<'a>(
    system: &'a System,
    settings: &OracleSettings,
) -> Box<dyn ConditionOracle + 'a> {
    match settings.kind {
        OracleKind::KInduction => Box::new(
            KInductionChecker::new(system)
                .with_conclusion_delta(settings.conclusion_delta)
                .with_base_delta(settings.base_delta)
                .with_solver_config(settings.solver),
        ),
        OracleKind::Explicit => Box::new(
            PortfolioOracle::new(
                system,
                settings.explicit_budget,
                u64::MAX,
                settings.cross_validate,
            )
            .conclusion_delta(settings.conclusion_delta)
            .base_delta(settings.base_delta)
            .solver_config(settings.solver)
            .named("explicit"),
        ),
        OracleKind::Portfolio => Box::new(
            PortfolioOracle::new(
                system,
                settings.explicit_budget,
                settings.route_threshold,
                settings.cross_validate,
            )
            .conclusion_delta(settings.conclusion_delta)
            .base_delta(settings.base_delta)
            .solver_config(settings.solver),
        ),
    }
}

impl ConditionOracle for KInductionChecker<'_> {
    fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        KInductionChecker::check_condition_disjuncts(self, assumption, blocked, outgoing)
    }

    fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult {
        KInductionChecker::check_spurious(self, state_formula, k)
    }

    fn stats(&self) -> CheckerStats {
        KInductionChecker::stats(self)
    }

    fn engine_name(&self) -> &'static str {
        "kinduction"
    }
}

/// The bare explicit engine as an oracle runs **unbudgeted** (no
/// k-induction rescue): suitable for small systems and for cross-validation
/// harnesses, but a wide input/state product will be enumerated in full.
/// [`build_oracle`] therefore never constructs it — [`OracleKind::Explicit`]
/// gets the explicit-first portfolio, whose budget bounds every query.
impl ConditionOracle for ExplicitChecker<'_> {
    fn check_condition(
        &mut self,
        assumption: &Expr,
        blocked: &[Expr],
        outgoing: &[Expr],
    ) -> CheckResult {
        self.check_condition_unbudgeted(assumption, blocked, outgoing)
    }

    fn check_spurious(&mut self, state_formula: &Expr, k: usize) -> SpuriousResult {
        self.check_spurious_unbudgeted(state_formula, k)
    }

    fn stats(&self) -> CheckerStats {
        ExplicitChecker::stats(self)
    }

    fn engine_name(&self) -> &'static str {
        "explicit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            OracleKind::KInduction,
            OracleKind::Explicit,
            OracleKind::Portfolio,
        ] {
            assert_eq!(OracleKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OracleKind::from_name("sat"), Some(OracleKind::KInduction));
        assert_eq!(OracleKind::from_name("nonsense"), None);
    }

    #[test]
    fn bare_explicit_checker_works_through_the_oracle_trait() {
        use amle_system::SystemBuilder;
        let mut b = SystemBuilder::new();
        let en = b.input("en", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(3), Value::Int(0)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(4, 3))
            .ite(&ce.add(&Expr::int_val(1, 3)), &ce);
        b.update(c, b.var(en).ite(&bumped, &ce)).unwrap();
        let sys = b.build().unwrap();
        let c = sys.vars().lookup("c").unwrap();
        let ce = sys.var(c);

        let mut explicit: Box<dyn ConditionOracle + '_> =
            Box::new(ExplicitChecker::new(&sys, 10_000));
        let mut sat: Box<dyn ConditionOracle + '_> = Box::new(KInductionChecker::new(&sys));
        assert_eq!(explicit.engine_name(), "explicit");
        for bound in 0..8 {
            let conclusion = [ce.ne(&Expr::int_val(bound, 3))];
            assert_eq!(
                explicit.check_condition(&Expr::true_(), &[], &conclusion),
                sat.check_condition(&Expr::true_(), &[], &conclusion),
                "bound {bound}"
            );
        }
        let mut state = sys.initial_valuation();
        state.set(c, Value::Int(4));
        let formula = state_formula(sys.vars(), &state, &[c]);
        assert_eq!(
            explicit.check_spurious(&formula, 6),
            sat.check_spurious(&formula, 6)
        );
        let stats = explicit.stats();
        assert_eq!(stats.explicit_queries, 9);
        assert_eq!(stats.kinduction_queries, 0);
    }

    #[test]
    fn state_formula_is_engine_independent() {
        let mut vars = VarSet::new();
        let c = vars.declare("c", Sort::int(4)).unwrap();
        let b = vars.declare("b", Sort::Bool).unwrap();
        let mut v = Valuation::zeroed(&vars);
        v.set(c, Value::Int(7));
        v.set(b, Value::Bool(true));
        let f = state_formula(&vars, &v, &[c, b]);
        assert!(f.eval_bool(&v));
        v.set(c, Value::Int(6));
        assert!(!f.eval_bool(&v));
        assert_eq!(state_formula(&vars, &v, &[c]).free_vars().len(), 1);
    }
}
