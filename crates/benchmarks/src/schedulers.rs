//! Counter-, timer- and scheduler-style benchmarks (the CountEvents,
//! TemporalLogicScheduler, LadderLogicScheduler, MooreTrafficLight,
//! Superstep and SchedulingSimulinkAlgorithms families of Table I).

use crate::suite::{single_input, witness, Benchmark};
use amle_expr::{Expr, Sort, Value};
use amle_system::SystemBuilder;

/// Counts events up to a limit and raises a `full` flag (CountEvents).
fn count_events() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("CountEvents");
    let ev = b.input("ev", Sort::Bool).unwrap();
    let c = b.state("c", Sort::int(5), Value::Int(0)).unwrap();
    let full = b.state("full", Sort::Bool, Value::Bool(false)).unwrap();
    let ce = b.var(c);
    let bumped = ce
        .lt(&Expr::int_val(10, 5))
        .ite(&ce.add(&Expr::int_val(1, 5)), &ce);
    let next = b.var(ev).ite(&bumped, &ce);
    b.update(c, next.clone()).unwrap();
    b.update(full, next.ge(&Expr::int_val(10, 5))).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("ev").unwrap(),
        system.vars().lookup("full").unwrap(),
    ];
    let fill = single_input(&std::iter::repeat_n(1, 13).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &single_input(&[1, 1, 1])), // counting, not yet full
        witness(&system, &fill),                     // reaches full and stays
        witness(&system, &single_input(&[0, 0, 0])), // idle
    ];
    Benchmark {
        name: "CountEvents".to_string(),
        system,
        observables,
        k: 20,
        reference_transitions: 3,
        witnesses,
    }
}

/// A periodic scheduler: a free-running counter triggers a task every 8 ticks
/// (TemporalLogicScheduler).
fn temporal_logic_scheduler() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("TemporalLogicScheduler");
    let tick = b.input("tick", Sort::Bool).unwrap();
    let phase = b.state("phase", Sort::int(4), Value::Int(0)).unwrap();
    let fire = b.state("fire", Sort::Bool, Value::Bool(false)).unwrap();
    let pe = b.var(phase);
    let wrapped = pe
        .ge(&Expr::int_val(7, 4))
        .ite(&Expr::int_val(0, 4), &pe.add(&Expr::int_val(1, 4)));
    let next_phase = b.var(tick).ite(&wrapped, &pe);
    b.update(phase, next_phase.clone()).unwrap();
    b.update(fire, next_phase.eq(&Expr::int_val(0, 4)).and(&b.var(tick)))
        .unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("tick").unwrap(),
        system.vars().lookup("fire").unwrap(),
    ];
    let cycle = single_input(&std::iter::repeat_n(1, 18).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &cycle), // fires twice across two periods
        witness(&system, &single_input(&[1, 1, 1])), // not firing mid-period
        witness(&system, &single_input(&[0, 0, 0])), // idle
    ];
    Benchmark {
        name: "TemporalLogicScheduler".to_string(),
        system,
        observables,
        k: 18,
        reference_transitions: 3,
        witnesses,
    }
}

/// Ladder-logic style scheduler: three rungs executed in order, one per step
/// (LadderLogicScheduler / SchedulingSimulinkAlgorithmsUsingStateflow).
fn ladder_logic_scheduler() -> Benchmark {
    let rung_sort = Sort::enumeration("Rung", ["R1", "R2", "R3"]);
    let mut b = SystemBuilder::new();
    b.name("LadderLogicScheduler");
    let run = b.input("run", Sort::Bool).unwrap();
    let rung = b.state_enum("rung", rung_sort.clone(), "R1").unwrap();
    let r1 = b.enum_const(rung, "R1");
    let r2 = b.enum_const(rung, "R2");
    let r3 = b.enum_const(rung, "R3");
    let re = b.var(rung);
    let advance = re.eq(&r1).ite(&r2, &re.eq(&r2).ite(&r3, &r1));
    b.update(rung, b.var(run).ite(&advance, &re)).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &single_input(&[1, 1])),       // R1 -> R2
        witness(&system, &single_input(&[1, 1, 1])),    // R2 -> R3
        witness(&system, &single_input(&[1, 1, 1, 1])), // R3 -> R1
        witness(&system, &single_input(&[0, 0])),       // hold
    ];
    Benchmark {
        name: "LadderLogicScheduler".to_string(),
        system,
        observables,
        k: 10,
        reference_transitions: 4,
        witnesses,
    }
}

/// A Moore-style traffic light with per-phase timers (MooreTrafficLight).
fn moore_traffic_light() -> Benchmark {
    let light_sort = Sort::enumeration("Light", ["Red", "Green", "Yellow"]);
    let mut b = SystemBuilder::new();
    b.name("MooreTrafficLight");
    let en = b.input("en", Sort::Bool).unwrap();
    let light = b.state_enum("light", light_sort.clone(), "Red").unwrap();
    let timer = b.state("timer", Sort::int(4), Value::Int(0)).unwrap();
    let red = b.enum_const(light, "Red");
    let green = b.enum_const(light, "Green");
    let yellow = b.enum_const(light, "Yellow");
    let le = b.var(light);
    let te = b.var(timer);
    // Dwell times: red 4, green 4, yellow 2.
    let limit = le
        .eq(&yellow)
        .ite(&Expr::int_val(2, 4), &Expr::int_val(4, 4));
    let expired = te.add(&Expr::int_val(1, 4)).ge(&limit);
    let next_light = expired.ite(
        &le.eq(&red).ite(&green, &le.eq(&green).ite(&yellow, &red)),
        &le,
    );
    let next_timer = expired.ite(&Expr::int_val(0, 4), &te.add(&Expr::int_val(1, 4)));
    b.update(light, b.var(en).ite(&next_light, &le)).unwrap();
    b.update(timer, b.var(en).ite(&next_timer, &te)).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("en").unwrap(),
        system.vars().lookup("light").unwrap(),
    ];
    let full_cycle = single_input(&std::iter::repeat_n(1, 14).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &full_cycle), // red -> green -> yellow -> red
        witness(&system, &single_input(&[1, 1, 1])), // staying red while the timer runs
        witness(&system, &single_input(&[0, 0, 0])), // disabled
    ];
    Benchmark {
        name: "MooreTrafficLight".to_string(),
        system,
        observables,
        k: 14,
        reference_transitions: 3,
        witnesses,
    }
}

/// Two one-way streets alternating green (ModelingAnIntersectionOfTwo1wayStreets).
fn intersection() -> Benchmark {
    let phase_sort = Sort::enumeration("Phase", ["NorthGreen", "EastGreen"]);
    let mut b = SystemBuilder::new();
    b.name("IntersectionOfTwo1wayStreets");
    let tick = b.input("tick", Sort::Bool).unwrap();
    let phase = b
        .state_enum("phase", phase_sort.clone(), "NorthGreen")
        .unwrap();
    let hold = b.state("hold", Sort::int(4), Value::Int(0)).unwrap();
    let north = b.enum_const(phase, "NorthGreen");
    let east = b.enum_const(phase, "EastGreen");
    let he = b.var(hold);
    let expired = he.ge(&Expr::int_val(5, 4));
    let pe = b.var(phase);
    let next_phase = expired.ite(&pe.eq(&north).ite(&east, &north), &pe);
    let next_hold = expired.ite(&Expr::int_val(0, 4), &he.add(&Expr::int_val(1, 4)));
    b.update(phase, b.var(tick).ite(&next_phase, &pe)).unwrap();
    b.update(hold, b.var(tick).ite(&next_hold, &he)).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("tick").unwrap(),
        system.vars().lookup("phase").unwrap(),
    ];
    let two_switches = single_input(&std::iter::repeat_n(1, 14).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &two_switches),             // north -> east -> north
        witness(&system, &single_input(&[1, 1, 1])), // holding north
        witness(&system, &single_input(&[0, 0])),    // idle
    ];
    Benchmark {
        name: "IntersectionOfTwo1wayStreets".to_string(),
        system,
        observables,
        k: 14,
        reference_transitions: 3,
        witnesses,
    }
}

/// A super-step counter that advances by two per tick until a limit
/// (Superstep with super step semantics).
fn superstep() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("SuperstepWithSuperStep");
    let tick = b.input("tick", Sort::Bool).unwrap();
    let c = b.state("c", Sort::int(5), Value::Int(0)).unwrap();
    let done = b.state("done", Sort::Bool, Value::Bool(false)).unwrap();
    let ce = b.var(c);
    let advanced = ce
        .lt(&Expr::int_val(8, 5))
        .ite(&ce.add(&Expr::int_val(2, 5)), &ce);
    let next = b.var(tick).ite(&advanced, &ce);
    b.update(c, next.clone()).unwrap();
    b.update(done, next.ge(&Expr::int_val(8, 5))).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("tick").unwrap(),
        system.vars().lookup("done").unwrap(),
    ];
    let finish = single_input(&std::iter::repeat_n(1, 7).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &single_input(&[1, 1, 1])), // advancing, not done
        witness(&system, &finish),                   // reaches done and stays
        witness(&system, &single_input(&[0, 0])),    // idle
    ];
    Benchmark {
        name: "SuperstepWithSuperStep".to_string(),
        system,
        observables,
        k: 12,
        reference_transitions: 3,
        witnesses,
    }
}

/// The scheduler-family benchmarks.
pub(crate) fn benchmarks() -> Vec<Benchmark> {
    vec![
        count_events(),
        temporal_logic_scheduler(),
        ladder_logic_scheduler(),
        moore_traffic_light(),
        intersection(),
        superstep(),
    ]
}
