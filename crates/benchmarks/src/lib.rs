//! # amle-benchmarks
//!
//! A suite of Stateflow-style benchmark systems standing in for the paper's
//! evaluation set (the MATLAB Simulink Stateflow examples compiled to C with
//! Embedded Coder, which are proprietary and unavailable here).
//!
//! Each [`Benchmark`] bundles:
//!
//! * an executable/analyzable [`amle_system::System`] modelled after one of
//!   the Table I benchmark families (threshold controllers, temporal-logic
//!   schedulers, counters, mode managers, vending machines, traffic lights,
//!   queueing systems, …);
//! * the observable variables and the k-induction bound `k` used by the
//!   active learning run (the paper supplies `k` per benchmark);
//! * a set of **ground-truth witness traces**, one per transition of the
//!   reference state machine, used to compute the accuracy score `d` of
//!   Table I: `d` is the fraction of reference transitions whose witness
//!   trace is admitted by the learned abstraction.
//!
//! The systems interact with the learning pipeline exactly the way the
//! paper's C implementations do — through random-input trace generation and
//! through symbolic transition-relation queries — so the substitution
//! preserves the behaviour the algorithm depends on (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuits;
mod controllers;
mod protocols;
mod schedulers;
mod suite;
mod synth;

pub use circuits::{
    circuit_benchmark_from_file, circuit_benchmark_name, circuit_benchmarks, circuit_stats_for,
};
pub use controllers::home_climate_control_system;
pub use suite::{
    all_benchmarks, benchmark_by_name, full_suite, stress_suite, trace_from_schedule, Benchmark,
    ScheduleError,
};
pub use synth::{
    splice_stress_benchmarks, synthetic_benchmarks, synthetic_system, SynthFamily, SynthKind,
    SynthSpec, DEFAULT_SEED,
};

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;
