//! Threshold-, mode- and sensor-controller benchmarks (the
//! HomeClimateControl / BangBangControl / RedundantSensorPair /
//! SecuritySystem / YoYoControl families of Table I).

use crate::suite::{single_input, witness, Benchmark};
use amle_expr::{Expr, Sort, Value};
use amle_system::{System, SystemBuilder};

fn bool_sched(values: &[&[i64]]) -> Vec<Vec<i64>> {
    values.iter().map(|row| row.to_vec()).collect()
}

/// Fig. 2: the Home Climate-Control Cooler. The mode follows a temperature
/// threshold.
fn home_climate_control() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("HomeClimateControlCooler");
    let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
    let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
    b.update(on, b.var(temp).gt(&Expr::int_val(75, 8))).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        // off --hot--> on, on --hot--> on, on --cold--> off, off --cold--> off
        witness(&system, &single_input(&[20, 90, 95])),
        witness(&system, &single_input(&[90, 95, 99])),
        witness(&system, &single_input(&[90, 95, 20])),
        witness(&system, &single_input(&[20, 30, 40])),
    ];
    Benchmark {
        name: "HomeClimateControlCooler".to_string(),
        system,
        observables,
        k: 10,
        reference_transitions: 4,
        witnesses,
    }
}

/// Bang-bang temperature controller with a heater-on dwell counter
/// (the BangBangControlUsingTemporalLogic / Heater row).
fn bang_bang_heater() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("BangBangControlHeater");
    let temp = b.input_in_range("temp", Sort::int(8), 0, 100).unwrap();
    let heat = b.state("heat", Sort::Bool, Value::Bool(false)).unwrap();
    let dwell = b.state("dwell", Sort::int(6), Value::Int(0)).unwrap();
    let cold = b.var(temp).lt(&Expr::int_val(40, 8));
    let warm = b.var(temp).gt(&Expr::int_val(60, 8));
    // The heater switches on when cold, and only switches off once warm and
    // the minimum dwell of 6 steps has elapsed.
    let dwell_e = b.var(dwell);
    let dwell_done = dwell_e.ge(&Expr::int_val(6, 6));
    let next_heat = b.var(heat).ite(&warm.and(&dwell_done).not(), &cold);
    let next_dwell = b.var(heat).ite(
        &dwell_done.ite(&dwell_e, &dwell_e.add(&Expr::int_val(1, 6))),
        &Expr::int_val(0, 6),
    );
    b.update(heat, next_heat).unwrap();
    b.update(dwell, next_dwell).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("temp").unwrap(),
        system.vars().lookup("heat").unwrap(),
    ];
    let long_heat = {
        let mut values = vec![20];
        values.extend(std::iter::repeat_n(50, 8));
        values.push(80);
        values.push(80);
        single_input(&values)
    };
    let witnesses = vec![
        witness(&system, &single_input(&[80, 30, 30])), // off -> on when cold
        witness(&system, &single_input(&[80, 70, 65])), // stays off when warm
        witness(&system, &long_heat),                   // on until dwell elapses, then off
        witness(&system, &single_input(&[30, 30, 50, 50])), // stays on while dwell short
    ];
    Benchmark {
        name: "BangBangControlHeater".to_string(),
        system,
        observables,
        k: 16,
        reference_transitions: 4,
        witnesses,
    }
}

/// Automatic transmission gear logic driven by speed thresholds
/// (the AutomaticTransmissionUsingDurationOperator row).
fn automatic_transmission() -> Benchmark {
    let gear_sort = Sort::enumeration("Gear", ["First", "Second", "Third"]);
    let mut b = SystemBuilder::new();
    b.name("AutomaticTransmission");
    let speed = b.input_in_range("speed", Sort::int(8), 0, 140).unwrap();
    let gear = b.state_enum("gear", gear_sort.clone(), "First").unwrap();
    let ge = b.var(gear);
    let first = b.enum_const(gear, "First");
    let second = b.enum_const(gear, "Second");
    let third = b.enum_const(gear, "Third");
    let fast = b.var(speed).gt(&Expr::int_val(80, 8));
    let medium = b.var(speed).gt(&Expr::int_val(40, 8));
    // Shift up when above the threshold of the current gear, down when below.
    let from_first = medium.ite(&second, &first);
    let from_second = fast.ite(&third, &medium.ite(&second, &first));
    let from_third = fast.ite(&third, &second);
    let next = ge
        .eq(&first)
        .ite(&from_first, &ge.eq(&second).ite(&from_second, &from_third));
    b.update(gear, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &single_input(&[10, 60, 60])), // 1 -> 2
        witness(&system, &single_input(&[10, 60, 90, 100])), // 2 -> 3
        witness(&system, &single_input(&[10, 60, 90, 60])), // 3 -> 2
        witness(&system, &single_input(&[10, 60, 20, 10])), // 2 -> 1
        witness(&system, &single_input(&[10, 20, 30])), // stay in 1
        witness(&system, &single_input(&[10, 60, 90, 120])), // stay in 3
    ];
    Benchmark {
        name: "AutomaticTransmission".to_string(),
        system,
        observables,
        k: 12,
        reference_transitions: 6,
        witnesses,
    }
}

/// Redundant sensor pair: use sensor A unless it fails, fall back to B, and
/// report total failure when both fail.
fn redundant_sensor_pair() -> Benchmark {
    let mode_sort = Sort::enumeration("Active", ["UseA", "UseB", "Failed"]);
    let mut b = SystemBuilder::new();
    b.name("RedundantSensorPair");
    let a_ok = b.input("a_ok", Sort::Bool).unwrap();
    let b_ok = b.input("b_ok", Sort::Bool).unwrap();
    let mode = b.state_enum("active", mode_sort.clone(), "UseA").unwrap();
    let use_a = b.enum_const(mode, "UseA");
    let use_b = b.enum_const(mode, "UseB");
    let failed = b.enum_const(mode, "Failed");
    let me = b.var(mode);
    let from_a = b.var(a_ok).ite(&use_a, &b.var(b_ok).ite(&use_b, &failed));
    let from_b = b.var(b_ok).ite(&use_b, &failed);
    let next = me
        .eq(&use_a)
        .ite(&from_a, &me.eq(&use_b).ite(&from_b, &failed));
    b.update(mode, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &bool_sched(&[&[1, 1], &[1, 1], &[1, 1]])), // stay UseA
        witness(&system, &bool_sched(&[&[1, 1], &[0, 1], &[0, 1]])), // A fails -> UseB
        witness(&system, &bool_sched(&[&[1, 1], &[0, 1], &[0, 0]])), // then B fails -> Failed
        witness(&system, &bool_sched(&[&[1, 1], &[0, 0], &[0, 0]])), // both fail -> Failed
        witness(&system, &bool_sched(&[&[1, 1], &[0, 1], &[1, 1], &[1, 1]])), // UseB is latched
    ];
    Benchmark {
        name: "RedundantSensorPair".to_string(),
        system,
        observables,
        k: 8,
        reference_transitions: 5,
        witnesses,
    }
}

/// Security system alarm: arming switch plus door/motion sensors.
fn security_system() -> Benchmark {
    let mode_sort = Sort::enumeration("Alarm", ["Disarmed", "Armed", "Sounding"]);
    let mut b = SystemBuilder::new();
    b.name("SecuritySystemAlarm");
    let arm = b.input("arm", Sort::Bool).unwrap();
    let door = b.input("door", Sort::Bool).unwrap();
    let mode = b
        .state_enum("alarm", mode_sort.clone(), "Disarmed")
        .unwrap();
    let disarmed = b.enum_const(mode, "Disarmed");
    let armed = b.enum_const(mode, "Armed");
    let sounding = b.enum_const(mode, "Sounding");
    let me = b.var(mode);
    let from_disarmed = b.var(arm).ite(&armed, &disarmed);
    let from_armed = b
        .var(arm)
        .not()
        .ite(&disarmed, &b.var(door).ite(&sounding, &armed));
    let from_sounding = b.var(arm).ite(&sounding, &disarmed);
    let next = me.eq(&disarmed).ite(
        &from_disarmed,
        &me.eq(&armed).ite(&from_armed, &from_sounding),
    );
    b.update(mode, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &bool_sched(&[&[0, 0], &[1, 0], &[1, 0]])), // disarmed -> armed
        witness(&system, &bool_sched(&[&[0, 0], &[1, 0], &[1, 1]])), // armed -> sounding
        witness(&system, &bool_sched(&[&[0, 0], &[1, 0], &[0, 0]])), // armed -> disarmed
        witness(&system, &bool_sched(&[&[0, 0], &[1, 0], &[1, 1], &[0, 0]])), // sounding -> disarmed
        witness(&system, &bool_sched(&[&[0, 0], &[1, 0], &[1, 1], &[1, 0]])), // sounding latches
        witness(&system, &bool_sched(&[&[0, 0], &[0, 1], &[0, 0]])), // disarmed ignores door
    ];
    Benchmark {
        name: "SecuritySystemAlarm".to_string(),
        system,
        observables,
        k: 10,
        reference_transitions: 6,
        witnesses,
    }
}

/// Yo-yo satellite reel control: the reel alternates between reeling out and
/// reeling in, driven by a rope-length counter.
fn yoyo_control() -> Benchmark {
    let mode_sort = Sort::enumeration("Reel", ["Out", "In"]);
    let mut b = SystemBuilder::new();
    b.name("YoYoControlOfSatellite");
    let run = b.input("run", Sort::Bool).unwrap();
    let mode = b.state_enum("reel", mode_sort.clone(), "Out").unwrap();
    let len = b.state("len", Sort::int(5), Value::Int(0)).unwrap();
    let out = b.enum_const(mode, "Out");
    let inward = b.enum_const(mode, "In");
    let le = b.var(len);
    let at_max = le.ge(&Expr::int_val(10, 5));
    let at_min = le.le(&Expr::int_val(0, 5));
    let me = b.var(mode);
    let next_mode = me
        .eq(&out)
        .ite(&at_max.ite(&inward, &out), &at_min.ite(&out, &inward));
    let moved = me
        .eq(&out)
        .ite(&le.add(&Expr::int_val(1, 5)), &le.sub(&Expr::int_val(1, 5)));
    let clamped = moved
        .gt(&Expr::int_val(10, 5))
        .ite(&Expr::int_val(10, 5), &moved);
    let next_len = b.var(run).ite(&clamped, &le);
    b.update(mode, b.var(run).ite(&next_mode, &me)).unwrap();
    b.update(len, next_len).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("reel").unwrap(),
        system.vars().lookup("run").unwrap(),
    ];
    let long_run = single_input(&std::iter::repeat_n(1, 26).collect::<Vec<_>>());
    let witnesses = vec![
        witness(&system, &single_input(&[1, 1, 1])), // reeling out continues
        witness(&system, &long_run.clone()),         // out -> in -> out full cycle
        witness(&system, &single_input(&[0, 0, 0])), // idle keeps the mode
    ];
    Benchmark {
        name: "YoYoControlOfSatellite".to_string(),
        system,
        observables,
        k: 24,
        reference_transitions: 3,
        witnesses,
    }
}

/// Size-based processing: a mode selector that follows an input size class
/// (the VarSize / SizeBasedProcessing row).
fn size_based_processing() -> Benchmark {
    let mode_sort = Sort::enumeration("Path", ["Small", "Medium", "Large"]);
    let mut b = SystemBuilder::new();
    b.name("VarSizeSizeBasedProcessing");
    let size = b.input_in_range("size", Sort::int(7), 0, 100).unwrap();
    let path = b.state_enum("path", mode_sort.clone(), "Small").unwrap();
    let small = b.enum_const(path, "Small");
    let medium = b.enum_const(path, "Medium");
    let large = b.enum_const(path, "Large");
    let big = b.var(size).gt(&Expr::int_val(66, 7));
    let mid = b.var(size).gt(&Expr::int_val(33, 7));
    b.update(path, big.ite(&large, &mid.ite(&medium, &small)))
        .unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &single_input(&[10, 20, 25])), // stay small
        witness(&system, &single_input(&[10, 50, 55])), // small -> medium
        witness(&system, &single_input(&[10, 50, 90])), // medium -> large
        witness(&system, &single_input(&[10, 90, 10])), // large -> small
        witness(&system, &single_input(&[10, 90, 50])), // large -> medium
        witness(&system, &single_input(&[10, 50, 10])), // medium -> small
    ];
    Benchmark {
        name: "VarSizeSizeBasedProcessing".to_string(),
        system,
        observables,
        k: 8,
        reference_transitions: 6,
        witnesses,
    }
}

/// The controller-family benchmarks.
pub(crate) fn benchmarks() -> Vec<Benchmark> {
    vec![
        home_climate_control(),
        bang_bang_heater(),
        automatic_transmission(),
        redundant_sensor_pair(),
        security_system(),
        yoyo_control(),
        size_based_processing(),
    ]
}

/// Builds the Fig. 2 system on its own (used by the `fig2` harness binary and
/// the `home_climate_control` example).
pub fn home_climate_control_system() -> System {
    home_climate_control().system
}
