//! Seeded synthetic benchmark families.
//!
//! Table I fixes the evaluation to a handful of hand-modelled Stateflow
//! systems; the synthetic families below open the suite up to whole
//! *parameter spaces* of systems — configurable bit-widths, input counts and
//! seed-derived constants — the way "Learning Concise Models from Long
//! Execution Traces" applies the same pipeline across many generated
//! workloads. Every instance ships with derived witness traces (one per
//! reference-machine transition), so the accuracy score `d` is defined for
//! synthetic benchmarks exactly as for Table I.
//!
//! Generation is fully deterministic: the same [`SynthSpec`] and seed always
//! produce byte-identical systems and witnesses, which keeps the differential
//! tests of the parallel engine meaningful on synthetic workloads.

use crate::suite::{single_input, witness, Benchmark};
use amle_expr::{Expr, Sort, Value, VarId};
use amle_system::{System, SystemBuilder};

/// The seed used for the synthetic half of [`crate::full_suite`].
pub const DEFAULT_SEED: u64 = 0x5EED;

/// The synthetic system families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthKind {
    /// Saturating up-counter guarded by a conjunction of enable inputs.
    Counter,
    /// Gray-code cycler driven by an advance input.
    GrayCode,
    /// Modular accumulator adding a bounded input increment.
    ModularArith,
    /// A bank of toggle bits behind a master gate input.
    GatedToggle,
    /// A deep boolean stage pipeline built to stress counterexample-trace
    /// splicing: random traces only witness the shallow stages, so the
    /// refinement loop keeps producing valid (or inconclusive)
    /// counterexamples for many iterations, splicing each onto every
    /// qualifying trace prefix. Used to measure that per-iteration word
    /// encoding work grows at most linearly (see `stress_suite`).
    SpliceStorm,
}

/// Parameters of one synthetic benchmark instance.
///
/// `bits` is the state bit-width and `inputs` the number of boolean control
/// inputs; each family clamps them to its supported range (documented on
/// [`SynthFamily::benchmark`]), so arbitrary values — e.g. from a property
/// test — are always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SynthSpec {
    /// Which family to instantiate.
    pub kind: SynthKind,
    /// State bit-width.
    pub bits: u32,
    /// Number of boolean control inputs.
    pub inputs: usize,
}

/// A seeded generator of synthetic benchmarks.
///
/// The seed feeds a splitmix64 stream that derives the per-instance constants
/// (saturation limits, moduli, increment bounds), so one seed describes a
/// whole reproducible family of systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthFamily {
    seed: u64,
}

/// One splitmix64 step — a tiny, dependency-free deterministic PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A value in `lo..=hi` drawn from the stream.
fn draw(state: &mut u64, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi);
    lo + (splitmix(state) % (hi - lo + 1) as u64) as i64
}

impl SynthFamily {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        SynthFamily { seed }
    }

    /// The seed of this family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Instantiates one benchmark.
    ///
    /// Parameter clamping per family:
    ///
    /// * `Counter`: `bits` in 2..=8, `inputs` (enable lines) in 1..=4;
    /// * `GrayCode`: `bits` in 2..=3 (the cycle is encoded explicitly);
    /// * `ModularArith`: `bits` in 3..=8, `inputs` ignored;
    /// * `GatedToggle`: `inputs` (toggle lines) in 1..=4, `bits` ignored;
    /// * `SpliceStorm`: `bits` (pipeline depth) in 4..=16, `inputs` ignored.
    pub fn benchmark(&self, spec: SynthSpec) -> Benchmark {
        // Clamp first: the constant stream must be derived from the
        // *effective* parameters, so that any two specs clamping to the same
        // instance produce the same system (names identify benchmarks).
        let (bits, inputs) = match spec.kind {
            SynthKind::Counter => (spec.bits.clamp(2, 8), spec.inputs.clamp(1, 4)),
            SynthKind::GrayCode => (spec.bits.clamp(2, 3), 1),
            SynthKind::ModularArith => (spec.bits.clamp(3, 8), 1),
            SynthKind::GatedToggle => (1, spec.inputs.clamp(1, 4)),
            SynthKind::SpliceStorm => (spec.bits.clamp(4, 16), 1),
        };
        // Per-instance constant stream so different specs of the same family
        // get different constants.
        let mut stream = self
            .seed
            .wrapping_add((bits as u64) << 32)
            .wrapping_add(inputs as u64)
            .wrapping_add(match spec.kind {
                SynthKind::Counter => 1,
                SynthKind::GrayCode => 2,
                SynthKind::ModularArith => 3,
                SynthKind::GatedToggle => 4,
                SynthKind::SpliceStorm => 5,
            });
        match spec.kind {
            SynthKind::Counter => self.counter(bits, inputs, &mut stream),
            SynthKind::GrayCode => self.gray_code(bits),
            SynthKind::ModularArith => self.modular_arith(bits, &mut stream),
            SynthKind::GatedToggle => self.gated_toggle(inputs),
            SynthKind::SpliceStorm => self.splice_storm(bits),
        }
    }

    /// The default synthetic slice of the full suite: two instances of each
    /// family at different widths — 8 benchmarks.
    pub fn default_suite(&self) -> Vec<Benchmark> {
        [
            SynthSpec {
                kind: SynthKind::Counter,
                bits: 3,
                inputs: 1,
            },
            SynthSpec {
                kind: SynthKind::Counter,
                bits: 4,
                inputs: 2,
            },
            SynthSpec {
                kind: SynthKind::GrayCode,
                bits: 2,
                inputs: 1,
            },
            SynthSpec {
                kind: SynthKind::GrayCode,
                bits: 3,
                inputs: 1,
            },
            SynthSpec {
                kind: SynthKind::ModularArith,
                bits: 4,
                inputs: 1,
            },
            SynthSpec {
                kind: SynthKind::ModularArith,
                bits: 5,
                inputs: 1,
            },
            SynthSpec {
                kind: SynthKind::GatedToggle,
                bits: 1,
                inputs: 2,
            },
            SynthSpec {
                kind: SynthKind::GatedToggle,
                bits: 1,
                inputs: 3,
            },
        ]
        .into_iter()
        .map(|spec| self.benchmark(spec))
        .collect()
    }

    /// Saturating counter: `c` counts up to a seed-derived limit while every
    /// enable input is high; `full` observes saturation.
    fn counter(&self, bits: u32, enables: usize, stream: &mut u64) -> Benchmark {
        let limit = draw(stream, 1 << (bits - 1), (1 << bits) - 1);
        let name = format!("SynthCounterW{bits}I{enables}");
        let mut b = SystemBuilder::new();
        b.name(name.clone());
        let ens: Vec<VarId> = (0..enables)
            .map(|i| b.input(format!("en{i}"), Sort::Bool).unwrap())
            .collect();
        let c = b.state("c", Sort::int(bits), Value::Int(0)).unwrap();
        let full = b.state("full", Sort::Bool, Value::Bool(false)).unwrap();
        let enable = ens
            .iter()
            .fold(Expr::true_(), |acc, id| acc.and(&b.var(*id)));
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(limit, bits))
            .ite(&ce.add(&Expr::int_val(1, bits)), &ce);
        let next = enable.ite(&bumped, &ce);
        b.update(c, next.clone()).unwrap();
        b.update(full, next.ge(&Expr::int_val(limit, bits)))
            .unwrap();
        let system = b.build().unwrap();
        let observables = system.all_vars();

        let all_on = vec![1i64; enables];
        let mut idle_row = vec![1i64; enables];
        idle_row[0] = 0;
        let run = |rows: usize, row: &[i64]| -> Vec<Vec<i64>> {
            (0..rows).map(|_| row.to_vec()).collect()
        };
        let witnesses = vec![
            // Increment from zero.
            witness(&system, &run(3, &all_on)),
            // Idle: one enable low holds the count.
            witness(&system, &run(3, &idle_row)),
            // Count through to saturation and sit on the limit.
            witness(&system, &run(limit as usize + 3, &all_on)),
        ];
        Benchmark {
            name,
            system,
            observables,
            k: (limit as usize + 2).clamp(4, 12),
            reference_transitions: 3,
            witnesses,
        }
    }

    /// Gray-code cycler: `g` steps through the reflected binary cycle while
    /// `advance` is high; `hi` observes the top half of the cycle.
    fn gray_code(&self, bits: u32) -> Benchmark {
        let cycle: Vec<i64> = match bits {
            2 => vec![0, 1, 3, 2],
            _ => vec![0, 1, 3, 2, 6, 7, 5, 4],
        };
        let name = format!("SynthGrayW{bits}");
        let mut b = SystemBuilder::new();
        b.name(name.clone());
        let advance = b.input("advance", Sort::Bool).unwrap();
        let g = b.state("g", Sort::int(bits), Value::Int(cycle[0])).unwrap();
        let hi = b.state("hi", Sort::Bool, Value::Bool(false)).unwrap();
        let ge = b.var(g);
        // Successor along the cycle, encoded as an ite chain over the codes.
        let mut succ = Expr::int_val(cycle[0], bits);
        for window in cycle.windows(2).rev() {
            succ = ge
                .eq(&Expr::int_val(window[0], bits))
                .ite(&Expr::int_val(window[1], bits), &succ);
        }
        let next = b.var(advance).ite(&succ, &ge);
        b.update(g, next.clone()).unwrap();
        b.update(hi, next.ge(&Expr::int_val(1 << (bits - 1), bits)))
            .unwrap();
        let system = b.build().unwrap();
        let observables = system.all_vars();
        let witnesses = vec![
            // A full advance cycle back to the initial code.
            witness(&system, &single_input(&vec![1; cycle.len() + 2])),
            // Idle.
            witness(&system, &single_input(&[0, 0, 0])),
        ];
        Benchmark {
            name,
            system,
            observables,
            k: (cycle.len() + 1).min(10),
            reference_transitions: 2,
            witnesses,
        }
    }

    /// Modular accumulator: `acc` adds a bounded input increment modulo a
    /// seed-derived modulus; `wrapped` observes reduction steps.
    fn modular_arith(&self, bits: u32, stream: &mut u64) -> Benchmark {
        // Keep headroom: acc < m and inc <= inc_max, with m + inc_max
        // representable in `bits`.
        let modulus = draw(stream, 3, (1 << (bits - 1)) - 1);
        let inc_max = draw(stream, 1, 2);
        let name = format!("SynthModArithW{bits}M{modulus}");
        let mut b = SystemBuilder::new();
        b.name(name.clone());
        let inc = b
            .input_in_range("inc", Sort::int(bits), 0, inc_max)
            .unwrap();
        let acc = b.state("acc", Sort::int(bits), Value::Int(0)).unwrap();
        let wrapped = b.state("wrapped", Sort::Bool, Value::Bool(false)).unwrap();
        let sum = b.var(acc).add(&b.var(inc));
        let over = sum.ge(&Expr::int_val(modulus, bits));
        let next = over.ite(&sum.sub(&Expr::int_val(modulus, bits)), &sum);
        b.update(acc, next).unwrap();
        b.update(wrapped, over).unwrap();
        let system = b.build().unwrap();
        let observables = system.all_vars();
        let wrap_steps = (modulus / inc_max) as usize + 2;
        let witnesses = vec![
            // Accumulate at the maximum increment until the sum reduces.
            witness(&system, &single_input(&vec![inc_max; wrap_steps])),
            // Zero increments hold the accumulator.
            witness(&system, &single_input(&[0, 0, 0])),
            // A single sub-modulus step.
            witness(&system, &single_input(&[inc_max, inc_max])),
        ];
        Benchmark {
            name,
            system,
            observables,
            k: 8,
            reference_transitions: 3,
            witnesses,
        }
    }

    /// Boolean stage pipeline: stage `s0` follows the `hold` input, stage
    /// `s_{i}` turns on one step after `s_{i-1}` while `hold` stays high, and
    /// every stage drops the moment `hold` goes low.
    ///
    /// Only the stage bits are observable; short random traces rarely hold
    /// the input long enough to light the deep stages, so the refinement
    /// loop discovers roughly one stage pattern per iteration through valid
    /// counterexamples — a steady splicing load for many iterations. Once
    /// every stage has been seen in both polarities the abstraction's cell
    /// structure is pinned, so incremental learners re-encode only the new
    /// traces from then on.
    fn splice_storm(&self, depth: u32) -> Benchmark {
        let depth = depth as usize;
        let name = format!("SynthSpliceStormD{depth}");
        let mut b = SystemBuilder::new();
        b.name(name.clone());
        let hold = b.input("hold", Sort::Bool).unwrap();
        let stages: Vec<VarId> = (0..depth)
            .map(|i| {
                b.state(format!("s{i}"), Sort::Bool, Value::Bool(false))
                    .unwrap()
            })
            .collect();
        let mut previous = Expr::true_();
        for stage in &stages {
            let next = b.var(hold).and(&previous);
            b.update(*stage, next).unwrap();
            previous = b.var(*stage);
        }
        let system = b.build().unwrap();
        let observables = stages.clone();
        // One witness per stage: hold long enough to light it. Plus one
        // release: the whole pipeline drops at once.
        let mut witnesses: Vec<_> = (0..depth)
            .map(|i| witness(&system, &single_input(&vec![1; i + 2])))
            .collect();
        witnesses.push(witness(&system, &single_input(&[1, 1, 1, 0, 0])));
        Benchmark {
            name,
            system,
            observables,
            k: 4,
            reference_transitions: depth + 1,
            witnesses,
        }
    }

    /// Gated toggle bank: each toggle input flips its bit while the master
    /// gate is high; `any` observes whether any bit is set.
    fn gated_toggle(&self, toggles: usize) -> Benchmark {
        let name = format!("SynthGatedToggleT{toggles}");
        let mut b = SystemBuilder::new();
        b.name(name.clone());
        let gate = b.input("gate", Sort::Bool).unwrap();
        let ts: Vec<VarId> = (0..toggles)
            .map(|i| b.input(format!("t{i}"), Sort::Bool).unwrap())
            .collect();
        let ss: Vec<VarId> = (0..toggles)
            .map(|i| {
                b.state(format!("s{i}"), Sort::Bool, Value::Bool(false))
                    .unwrap()
            })
            .collect();
        let any = b.state("any", Sort::Bool, Value::Bool(false)).unwrap();
        let mut next_any = Expr::false_();
        for (t, s) in ts.iter().zip(&ss) {
            let flip = b.var(gate).and(&b.var(*t));
            let next = flip.ite(&b.var(*s).not(), &b.var(*s));
            next_any = next_any.or(&next);
            b.update(*s, next).unwrap();
        }
        b.update(any, next_any).unwrap();
        let system = b.build().unwrap();
        let observables = system.all_vars();
        // Row layout: gate first, then the toggle inputs in order.
        let row = |gate_on: bool, active: Option<usize>| -> Vec<i64> {
            let mut r = vec![i64::from(gate_on)];
            r.extend((0..toggles).map(|i| i64::from(active == Some(i))));
            r
        };
        let mut witnesses: Vec<_> = (0..toggles)
            .map(|i| {
                witness(
                    &system,
                    &[row(true, Some(i)), row(true, Some(i)), row(true, Some(i))],
                )
            })
            .collect();
        // Gate low: toggling has no effect.
        witnesses.push(witness(
            &system,
            &[
                row(false, Some(0)),
                row(false, Some(0)),
                row(false, Some(0)),
            ],
        ));
        Benchmark {
            name,
            system,
            observables,
            k: 4,
            reference_transitions: toggles + 1,
            witnesses,
        }
    }
}

/// The default synthetic benchmarks for the given seed (two instances of each
/// family; see [`SynthFamily::default_suite`]).
pub fn synthetic_benchmarks(seed: u64) -> Vec<Benchmark> {
    SynthFamily::new(seed).default_suite()
}

/// The splicing-stress benchmarks: two depths of the non-converging
/// [`SynthKind::SpliceStorm`] pipeline. Kept out of [`crate::full_suite`] so
/// released suite fingerprints stay comparable; the suite runner adds them
/// with `--stress`.
pub fn splice_stress_benchmarks(seed: u64) -> Vec<Benchmark> {
    let family = SynthFamily::new(seed);
    [8, 12]
        .into_iter()
        .map(|depth| {
            family.benchmark(SynthSpec {
                kind: SynthKind::SpliceStorm,
                bits: depth,
                inputs: 1,
            })
        })
        .collect()
}

/// Convenience: generate one synthetic system directly (e.g. for tests that
/// need a [`System`] without the benchmark wrapper).
pub fn synthetic_system(seed: u64, spec: SynthSpec) -> System {
    SynthFamily::new(seed).benchmark(spec).system
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_benchmarks(7);
        let b = synthetic_benchmarks(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.witnesses, y.witnesses);
            assert_eq!(x.system.init_expr(), y.system.init_expr());
        }
    }

    #[test]
    fn default_suite_has_eight_unique_benchmarks() {
        let suite = synthetic_benchmarks(DEFAULT_SEED);
        assert_eq!(suite.len(), 8);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn seeds_change_derived_constants() {
        let spec = SynthSpec {
            kind: SynthKind::Counter,
            bits: 5,
            inputs: 1,
        };
        // Different seeds must eventually derive different saturation limits
        // (the limit is embedded in the update expression).
        let baseline = synthetic_system(0, spec);
        let differs = (1..20).any(|seed| {
            let sys = synthetic_system(seed, spec);
            sys.update(sys.vars().lookup("c").unwrap())
                != baseline.update(baseline.vars().lookup("c").unwrap())
        });
        assert!(differs, "seed does not influence the counter limit");
    }

    #[test]
    fn specs_clamping_to_the_same_instance_are_identical() {
        // The constant stream is derived from the *clamped* parameters, so a
        // wildly out-of-range spec and its in-range equivalent are the same
        // benchmark, not two different systems sharing a name.
        let family = SynthFamily::new(3);
        let a = family.benchmark(SynthSpec {
            kind: SynthKind::Counter,
            bits: 20,
            inputs: 1,
        });
        let b = family.benchmark(SynthSpec {
            kind: SynthKind::Counter,
            bits: 8,
            inputs: 1,
        });
        assert_eq!(a.name, b.name);
        let c = |bench: &Benchmark| bench.system.vars().lookup("c").unwrap();
        assert_eq!(a.system.update(c(&a)), b.system.update(c(&b)));
        assert_eq!(a.witnesses, b.witnesses);
    }

    #[test]
    fn splice_storm_pipeline_behaves_as_documented() {
        let suite = splice_stress_benchmarks(DEFAULT_SEED);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name, "SynthSpliceStormD8");
        assert_eq!(suite[1].name, "SynthSpliceStormD12");
        for benchmark in &suite {
            // Only the stage bits are observable.
            assert_eq!(
                benchmark.observables.len(),
                benchmark.system.all_vars().len() - 1
            );
            // The deepest witness lights the last stage; releasing the hold
            // input clears the whole pipeline in one step.
            for w in &benchmark.witnesses {
                assert!(benchmark.system.is_execution_trace(w));
            }
            let deepest = &benchmark.witnesses[benchmark.observables.len() - 1];
            let last = benchmark.observables[benchmark.observables.len() - 1];
            let end = deepest.observations().last().unwrap();
            assert_eq!(end.value(last), Value::Bool(true));
            let release = benchmark.witnesses.last().unwrap();
            let end = release.observations().last().unwrap();
            for stage in &benchmark.observables {
                assert_eq!(end.value(*stage), Value::Bool(false));
            }
        }
    }

    #[test]
    fn out_of_range_parameters_are_clamped() {
        let b = SynthFamily::new(1).benchmark(SynthSpec {
            kind: SynthKind::GrayCode,
            bits: 60,
            inputs: 9,
        });
        assert_eq!(b.name, "SynthGrayW3");
        let b = SynthFamily::new(1).benchmark(SynthSpec {
            kind: SynthKind::GatedToggle,
            bits: 0,
            inputs: 0,
        });
        assert_eq!(b.name, "SynthGatedToggleT1");
    }
}
