//! Suite-wide sanity tests: every benchmark must be internally consistent
//! and usable by the learning pipeline.

use crate::{
    all_benchmarks, benchmark_by_name, full_suite, home_climate_control_system, trace_from_schedule,
};
use amle_core::{ActiveLearner, ActiveLearnerConfig};
use amle_learner::HistoryLearner;
use amle_system::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

#[test]
fn suite_is_non_trivial_and_names_are_unique() {
    let table1 = all_benchmarks();
    assert!(
        table1.len() >= 15,
        "Table I has only {} benchmarks",
        table1.len()
    );
    let suite = full_suite();
    assert!(
        suite.len() >= table1.len() + 8,
        "full suite has only {} benchmarks",
        suite.len()
    );
    let names: HashSet<&str> = suite.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(names.len(), suite.len(), "duplicate benchmark names");
}

#[test]
fn lookup_by_name() {
    assert!(benchmark_by_name("HomeClimateControlCooler").is_some());
    assert!(benchmark_by_name("MealyVendingMachine").is_some());
    assert!(benchmark_by_name("SynthGrayW2").is_some());
    assert!(benchmark_by_name("DoesNotExist").is_none());
}

#[test]
fn short_schedule_row_is_a_proper_error() {
    // Regression: a schedule row shorter than the input-variable list used to
    // be zipped away silently (and a longer one ignored); both are now
    // reported as a named error instead of feeding the simulator stale
    // inputs.
    let b = benchmark_by_name("SynthGatedToggleT2").unwrap();
    let err = trace_from_schedule(&b.system, &[vec![1, 1, 1], vec![1]]).unwrap_err();
    assert_eq!(err.row, 1);
    assert_eq!(err.got, 1);
    assert_eq!(err.expected, 3);
    assert!(err.system.contains("SynthGatedToggle"));
    assert!(err.to_string().contains("row 1"));
    let err = trace_from_schedule(&b.system, &[vec![1, 1, 1, 1]]).unwrap_err();
    assert_eq!((err.row, err.got), (0, 4));
    // A well-formed schedule still replays.
    assert!(trace_from_schedule(&b.system, &[vec![1, 1, 0], vec![1, 0, 1]]).is_ok());
}

#[test]
fn every_benchmark_is_well_formed() {
    for b in full_suite() {
        assert!(!b.observables.is_empty(), "{}: no observables", b.name);
        assert!(b.k > 0, "{}: k must be positive", b.name);
        assert_eq!(
            b.reference_transitions,
            b.witnesses.len(),
            "{}: one witness per reference transition",
            b.name
        );
        for id in &b.observables {
            assert!(
                b.system.vars().info(*id).is_some(),
                "{}: bad observable",
                b.name
            );
        }
        assert_eq!(b.num_observables(), b.observables.len());
    }
}

#[test]
fn every_witness_is_an_execution_trace() {
    for b in full_suite() {
        for (i, w) in b.witnesses.iter().enumerate() {
            assert!(!w.is_empty(), "{}: witness {i} is empty", b.name);
            assert!(
                b.system.is_execution_trace(w),
                "{}: witness {i} is not an execution trace",
                b.name
            );
        }
    }
}

#[test]
fn every_system_simulates() {
    for b in full_suite() {
        let sim = Simulator::new(&b.system);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = sim.random_trace(25, &mut rng);
        assert!(
            b.system.is_execution_trace(&trace),
            "{}: bad random trace",
            b.name
        );
    }
}

#[test]
fn score_d_is_one_for_a_converged_cooler_model() {
    let b = benchmark_by_name("HomeClimateControlCooler").unwrap();
    let config = ActiveLearnerConfig {
        observables: Some(b.observables.clone()),
        initial_traces: 15,
        trace_length: 15,
        k: b.k,
        max_iterations: 15,
        ..Default::default()
    };
    let mut learner = ActiveLearner::new(&b.system, HistoryLearner::default(), config);
    let report = learner.run().unwrap();
    assert!(report.converged);
    assert_eq!(b.score_d(&report.abstraction), 1.0);
}

#[test]
fn fig2_system_accessor_matches_suite_entry() {
    let system = home_climate_control_system();
    assert_eq!(system.name(), "HomeClimateControlCooler");
    assert_eq!(system.state_vars().len(), 1);
    assert_eq!(system.input_vars().len(), 1);
}

#[test]
fn score_d_penalises_an_empty_model() {
    let b = benchmark_by_name("MealyVendingMachine").unwrap();
    let empty = amle_automaton::Nfa::new();
    assert_eq!(b.score_d(&empty), 0.0);
}
