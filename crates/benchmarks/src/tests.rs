//! Suite-wide sanity tests: every benchmark must be internally consistent
//! and usable by the learning pipeline.

use crate::{all_benchmarks, benchmark_by_name, home_climate_control_system};
use amle_core::{ActiveLearner, ActiveLearnerConfig};
use amle_learner::HistoryLearner;
use amle_system::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

#[test]
fn suite_is_non_trivial_and_names_are_unique() {
    let suite = all_benchmarks();
    assert!(
        suite.len() >= 15,
        "suite has only {} benchmarks",
        suite.len()
    );
    let names: HashSet<&str> = suite.iter().map(|b| b.name).collect();
    assert_eq!(names.len(), suite.len(), "duplicate benchmark names");
}

#[test]
fn lookup_by_name() {
    assert!(benchmark_by_name("HomeClimateControlCooler").is_some());
    assert!(benchmark_by_name("MealyVendingMachine").is_some());
    assert!(benchmark_by_name("DoesNotExist").is_none());
}

#[test]
fn every_benchmark_is_well_formed() {
    for b in all_benchmarks() {
        assert!(!b.observables.is_empty(), "{}: no observables", b.name);
        assert!(b.k > 0, "{}: k must be positive", b.name);
        assert_eq!(
            b.reference_transitions,
            b.witnesses.len(),
            "{}: one witness per reference transition",
            b.name
        );
        for id in &b.observables {
            assert!(
                b.system.vars().info(*id).is_some(),
                "{}: bad observable",
                b.name
            );
        }
        assert_eq!(b.num_observables(), b.observables.len());
    }
}

#[test]
fn every_witness_is_an_execution_trace() {
    for b in all_benchmarks() {
        for (i, w) in b.witnesses.iter().enumerate() {
            assert!(!w.is_empty(), "{}: witness {i} is empty", b.name);
            assert!(
                b.system.is_execution_trace(w),
                "{}: witness {i} is not an execution trace",
                b.name
            );
        }
    }
}

#[test]
fn every_system_simulates() {
    for b in all_benchmarks() {
        let sim = Simulator::new(&b.system);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = sim.random_trace(25, &mut rng);
        assert!(
            b.system.is_execution_trace(&trace),
            "{}: bad random trace",
            b.name
        );
    }
}

#[test]
fn score_d_is_one_for_a_converged_cooler_model() {
    let b = benchmark_by_name("HomeClimateControlCooler").unwrap();
    let config = ActiveLearnerConfig {
        observables: Some(b.observables.clone()),
        initial_traces: 15,
        trace_length: 15,
        k: b.k,
        max_iterations: 15,
        ..Default::default()
    };
    let mut learner = ActiveLearner::new(&b.system, HistoryLearner::default(), config);
    let report = learner.run().unwrap();
    assert!(report.converged);
    assert_eq!(b.score_d(&report.abstraction), 1.0);
}

#[test]
fn fig2_system_accessor_matches_suite_entry() {
    let system = home_climate_control_system();
    assert_eq!(system.name(), "HomeClimateControlCooler");
    assert_eq!(system.state_vars().len(), 1);
    assert_eq!(system.input_vars().len(), 1);
}

#[test]
fn score_d_penalises_an_empty_model() {
    let b = benchmark_by_name("MealyVendingMachine").unwrap();
    let empty = amle_automaton::Nfa::new();
    assert_eq!(b.score_d(&empty), 0.0);
}
