//! The circuit benchmark family: the embedded gate-level fixtures of
//! `amle-circuit`, compiled to systems and registered behind
//! `suite --circuits`.
//!
//! Each fixture is parsed, reduced to the cone of influence of its outputs,
//! and compiled; the benchmark observes the compiled output variables. The
//! pre-reduction [`NetlistStats`] are kept available through
//! [`circuit_stats_for`] so the bench tables and `suite --json` can report
//! how much logic the COI pass dropped (the `coi_demo` fixture exists to
//! make that number nonzero).
//!
//! The family is *not* part of [`crate::full_suite`]: the quick-suite
//! fingerprint is pinned in CI and adding benchmarks would shift it. The
//! suite binary appends this family explicitly when `--circuits` is given,
//! and pins the circuit fingerprint separately.

use crate::suite::{single_input, witness, Benchmark};
use amle_circuit::{coi_stats, compile, reduce_to_coi, Fixture, NetlistStats, FIXTURES};

/// The suite name of a fixture's benchmark, or `None` for unknown fixtures.
pub fn circuit_benchmark_name(fixture_name: &str) -> Option<&'static str> {
    match fixture_name {
        "counter3" => Some("CircuitCounter3"),
        "shift4" => Some("CircuitShift4"),
        "traffic" => Some("CircuitTrafficLight"),
        "lfsr3" => Some("CircuitLfsr3"),
        "coi_demo" => Some("CircuitCoiDemo"),
        _ => None,
    }
}

/// Netlist statistics (gates/latches in and out of the cone of influence)
/// for a circuit benchmark, by *benchmark* name. `None` for non-circuit
/// benchmarks — callers use that to leave the stats columns out.
pub fn circuit_stats_for(benchmark_name: &str) -> Option<NetlistStats> {
    let fixture = FIXTURES
        .iter()
        .find(|f| circuit_benchmark_name(f.name) == Some(benchmark_name))?;
    let netlist = fixture.parse().expect("embedded fixture parses");
    Some(coi_stats(&netlist))
}

fn build(fixture: &Fixture) -> Benchmark {
    let netlist = fixture.parse().expect("embedded fixture parses");
    let (reduced, _) = reduce_to_coi(&netlist);
    let compiled = compile(&reduced).expect("embedded fixture compiles");
    let observables = compiled.observables();
    let system = compiled.system;
    let name = circuit_benchmark_name(fixture.name)
        .unwrap_or_else(|| panic!("fixture `{}` has no benchmark name", fixture.name));
    // Witness schedules: representative runs of each circuit (a full
    // characteristic cycle, an idle hold, and a mixed drive), mirroring the
    // synthetic families' witness style.
    let (k, schedules): (usize, Vec<Vec<Vec<i64>>>) = match fixture.name {
        "counter3" => (
            3,
            vec![
                single_input(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1]), // wraps past 7
                single_input(&[0, 0, 0]),
                single_input(&[1, 1, 0, 1, 0, 0, 1]),
            ],
        ),
        "shift4" => (
            4,
            vec![
                single_input(&[1, 0, 0, 0, 0, 0]), // a pulse shifting through
                single_input(&[1, 1, 1, 1, 1, 1]),
                single_input(&[1, 0, 1, 0, 1, 0]),
            ],
        ),
        "traffic" => (
            2,
            vec![
                single_input(&[1, 1, 1, 1]), // one full light cycle
                single_input(&[0, 0, 0]),
                single_input(&[1, 0, 1, 0, 1, 1]),
            ],
        ),
        "lfsr3" => (
            3,
            vec![
                single_input(&[1, 1, 1, 1, 1, 1, 1, 1]), // period-7 orbit
                single_input(&[0, 0, 0]),
                single_input(&[1, 1, 0, 0, 1, 1, 1]),
            ],
        ),
        "coi_demo" => (
            2,
            vec![
                vec![vec![1, 0]; 4], // toggle runs; probe quiet
                vec![vec![0, 0]; 3],
                vec![vec![1, 1], vec![0, 1], vec![1, 0]], // probe must not matter
            ],
        ),
        other => panic!("fixture `{other}` has no witness schedules"),
    };
    let witnesses = schedules
        .iter()
        .map(|s| witness(&system, s))
        .collect::<Vec<_>>();
    Benchmark {
        name: name.to_string(),
        system,
        observables,
        k,
        reference_transitions: witnesses.len(),
        witnesses,
    }
}

/// The circuit benchmark family, one entry per embedded fixture, in fixture
/// order.
pub fn circuit_benchmarks() -> Vec<Benchmark> {
    FIXTURES.iter().map(build).collect()
}

/// Loads a gate-level circuit from a real `.aag` (ASCII AIGER) or `.bench`
/// (ISCAS) file on disk and builds a suite benchmark from it, through the
/// same pipeline as the embedded fixtures: parse → cone-of-influence
/// reduction → compile. Registered behind `suite --circuit-file <path>`.
///
/// Unlike the embedded fixtures, nothing is known about a file circuit's
/// input protocol, so the witness schedules are generic: a sustained
/// all-ones drive, an idle all-zeros hold, and a per-input alternating mix
/// — enough to seed the learner with representative runs without claiming
/// protocol coverage. The benchmark is named `CircuitFile_<stem>` (stem
/// sanitised to `[A-Za-z0-9_]`), and the k-induction bound follows the
/// fixture convention of tracking the latch count (clamped to 2..=5).
///
/// All failure modes — unreadable file, unrecognised extension, parse or
/// compile error — come back as display-ready strings for the CLI.
pub fn circuit_benchmark_from_file(path: &std::path::Path) -> Result<Benchmark, String> {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    let parser: fn(&[u8], String) -> Result<amle_circuit::Netlist, amle_circuit::ParseError> =
        match path.extension().and_then(|e| e.to_str()) {
            Some("aag") => amle_circuit::parse_aag,
            Some("bench") => amle_circuit::parse_bench,
            other => {
                return Err(format!(
                    "{}: unsupported extension {} (expected .aag or .bench)",
                    path.display(),
                    other.map_or("<none>".to_string(), |e| format!("`.{e}`"))
                ))
            }
        };
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let netlist =
        parser(&bytes, stem.to_string()).map_err(|e| format!("{}: {e}", path.display()))?;
    let (reduced, _) = reduce_to_coi(&netlist);
    let compiled = compile(&reduced).map_err(|e| format!("{}: {e}", path.display()))?;
    let observables = compiled.observables();
    if observables.is_empty() {
        return Err(format!(
            "{}: circuit has no observable outputs after COI reduction",
            path.display()
        ));
    }
    let system = compiled.system;
    let clean: String = stem
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let inputs = system.input_vars().len();
    let schedules: Vec<Vec<Vec<i64>>> = vec![
        vec![vec![1; inputs]; 8],
        vec![vec![0; inputs]; 4],
        (0..8usize)
            .map(|t| (0..inputs).map(|i| ((t + i) % 2) as i64).collect())
            .collect(),
    ];
    let witnesses = schedules
        .iter()
        .map(|s| witness(&system, s))
        .collect::<Vec<_>>();
    let k = system.state_vars().len().clamp(2, 5);
    Ok(Benchmark {
        name: format!("CircuitFile_{clean}"),
        system,
        observables,
        k,
        reference_transitions: witnesses.len(),
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Value;

    #[test]
    fn every_fixture_becomes_a_benchmark_with_valid_witnesses() {
        let benchmarks = circuit_benchmarks();
        assert_eq!(benchmarks.len(), FIXTURES.len());
        for b in &benchmarks {
            assert!(b.name.starts_with("Circuit"), "{}", b.name);
            assert!(!b.observables.is_empty(), "{}", b.name);
            assert_eq!(b.reference_transitions, b.witnesses.len(), "{}", b.name);
            for (i, w) in b.witnesses.iter().enumerate() {
                assert!(
                    b.system.is_execution_trace(w),
                    "{} witness {i} is not an execution trace",
                    b.name
                );
            }
        }
    }

    #[test]
    fn benchmark_construction_is_deterministic() {
        let a = circuit_benchmarks();
        let b = circuit_benchmarks();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.observables, y.observables);
            assert_eq!(x.witnesses, y.witnesses);
        }
    }

    #[test]
    fn counter3_counts() {
        let b = circuit_benchmarks()
            .into_iter()
            .find(|b| b.name == "CircuitCounter3")
            .unwrap();
        let en = b.system.input_vars()[0];
        let bits: Vec<_> = b.system.state_vars().to_vec();
        let mut v = b.system.initial_valuation();
        v.set(en, Value::Bool(true));
        let value = |v: &amle_expr::Valuation| -> i64 {
            bits.iter()
                .enumerate()
                .map(|(i, id)| match v.value(*id) {
                    Value::Bool(true) => 1 << i,
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(value(&v), 0);
        for expected in 1..=9 {
            v = b.system.step(&v, &[(en, Value::Bool(true))]);
            assert_eq!(value(&v), expected % 8, "after {expected} ticks");
        }
    }

    #[test]
    fn traffic_cycles_green_yellow_red() {
        let b = circuit_benchmarks()
            .into_iter()
            .find(|b| b.name == "CircuitTrafficLight")
            .unwrap();
        let adv = b.system.input_vars()[0];
        // Observables are the registered green/yellow/red state variables,
        // lagging the encoded state by one clock.
        let [green, yellow, red]: [amle_expr::VarId; 3] = b.observables.clone().try_into().unwrap();
        let mut v = b.system.initial_valuation();
        v.set(adv, Value::Bool(true));
        let light = |v: &amle_expr::Valuation| {
            (
                v.value(green) == Value::Bool(true),
                v.value(yellow) == Value::Bool(true),
                v.value(red) == Value::Bool(true),
            )
        };
        assert_eq!(light(&v), (true, false, false));
        // With adv held high the registered outputs replay the cycle one
        // step late: green, green (lag), yellow, red, green, ...
        let expected = [
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, false, false),
            (false, true, false),
        ];
        for (i, want) in expected.into_iter().enumerate() {
            v = b.system.step(&v, &[(adv, Value::Bool(true))]);
            assert_eq!(light(&v), want, "step {i}");
        }
    }

    #[test]
    fn coi_demo_stats_show_dropped_logic() {
        let stats = circuit_stats_for("CircuitCoiDemo").unwrap();
        assert_eq!(stats.gates_dropped(), 2);
        assert_eq!(stats.latches_dropped(), 3);
        assert_eq!(stats.inputs, 2);
        // And the compiled benchmark really is the reduced system.
        let b = circuit_benchmarks()
            .into_iter()
            .find(|b| b.name == "CircuitCoiDemo")
            .unwrap();
        assert_eq!(b.system.state_vars().len(), 1);
        assert_eq!(b.system.input_vars().len(), 2);
    }

    #[test]
    fn stats_are_none_for_non_circuit_benchmarks() {
        assert!(circuit_stats_for("SynthCounter_b3_i1").is_none());
        assert!(circuit_stats_for("nope").is_none());
    }

    #[test]
    fn file_loaded_circuit_becomes_a_benchmark_with_valid_witnesses() {
        // Round-trip an embedded fixture through a real on-disk file, as
        // `suite --circuit-file` would see it.
        let fixture = amle_circuit::fixture("counter3").unwrap();
        let dir = std::env::temp_dir().join("amle-circuit-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("my-counter.aag");
        std::fs::write(&path, fixture.text).unwrap();

        let b = circuit_benchmark_from_file(&path).unwrap();
        assert_eq!(b.name, "CircuitFile_my_counter");
        assert!(!b.observables.is_empty());
        assert_eq!(b.reference_transitions, b.witnesses.len());
        for (i, w) in b.witnesses.iter().enumerate() {
            assert!(
                b.system.is_execution_trace(w),
                "witness {i} is not an execution trace"
            );
        }
        // Same netlist as the embedded benchmark, so the compiled shapes
        // must agree even though witnesses and k are generic.
        let embedded = circuit_benchmarks()
            .into_iter()
            .find(|b| b.name == "CircuitCounter3")
            .unwrap();
        assert_eq!(
            b.system.state_vars().len(),
            embedded.system.state_vars().len()
        );
        assert_eq!(
            b.system.input_vars().len(),
            embedded.system.input_vars().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_loader_rejects_unknown_extensions_and_missing_files() {
        let err = circuit_benchmark_from_file(std::path::Path::new("nope.v")).unwrap_err();
        assert!(err.contains("unsupported extension"), "{err}");
        let err = circuit_benchmark_from_file(std::path::Path::new("/definitely/missing.aag"))
            .unwrap_err();
        assert!(err.contains("missing.aag"), "{err}");
    }
}
