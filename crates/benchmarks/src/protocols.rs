//! Protocol- and machine-style benchmarks (the MealyVendingMachine,
//! SequenceRecognition, ServerQueueingSystem, CdPlayer ModeManager,
//! LaunchAbortSystem and frame-synchroniser families of Table I).

use crate::suite::{single_input, witness, Benchmark};
use amle_expr::{Expr, Sort, Value};
use amle_system::SystemBuilder;

fn sched(rows: &[&[i64]]) -> Vec<Vec<i64>> {
    rows.iter().map(|r| r.to_vec()).collect()
}

/// Mealy vending machine: accepts 5c/10c coins, dispenses at 15c.
fn vending_machine() -> Benchmark {
    let coin_sort = Sort::enumeration("Coin", ["None", "Nickel", "Dime"]);
    let mut b = SystemBuilder::new();
    b.name("MealyVendingMachine");
    let coin = b.input("coin", coin_sort.clone()).unwrap();
    let credit = b.state("credit", Sort::int(5), Value::Int(0)).unwrap();
    let vend = b.state("vend", Sort::Bool, Value::Bool(false)).unwrap();
    let ce = b.var(credit);
    let nickel = b.var(coin).eq(&Expr::enum_val(&coin_sort, "Nickel"));
    let dime = b.var(coin).eq(&Expr::enum_val(&coin_sort, "Dime"));
    let added = nickel.ite(
        &ce.add(&Expr::int_val(5, 5)),
        &dime.ite(&ce.add(&Expr::int_val(10, 5)), &ce),
    );
    let will_vend = added.ge(&Expr::int_val(15, 5));
    let next_credit = will_vend.ite(&Expr::int_val(0, 5), &added);
    b.update(credit, next_credit).unwrap();
    b.update(vend, will_vend).unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("coin").unwrap(),
        system.vars().lookup("vend").unwrap(),
    ];
    let witnesses = vec![
        witness(&system, &single_input(&[0, 1, 1, 1, 0])), // three nickels vend
        witness(&system, &single_input(&[0, 2, 1, 0])),    // dime + nickel vend
        witness(&system, &single_input(&[0, 2, 2, 0])),    // two dimes vend
        witness(&system, &single_input(&[0, 1, 1, 0])),    // not enough credit yet
    ];
    Benchmark {
        name: "MealyVendingMachine".to_string(),
        system,
        observables,
        k: 10,
        reference_transitions: 4,
        witnesses,
    }
}

/// Recognises the input sequence 1-0-1 (SequenceRecognitionUsingMealyAndMooreChart).
fn sequence_recognition() -> Benchmark {
    let stage_sort = Sort::enumeration("Stage", ["S0", "S1", "S10", "Hit"]);
    let mut b = SystemBuilder::new();
    b.name("SequenceRecognition");
    let bit = b.input("bit", Sort::Bool).unwrap();
    let stage = b.state_enum("stage", stage_sort.clone(), "S0").unwrap();
    let s0 = b.enum_const(stage, "S0");
    let s1 = b.enum_const(stage, "S1");
    let s10 = b.enum_const(stage, "S10");
    let hit = b.enum_const(stage, "Hit");
    let se = b.var(stage);
    let one = b.var(bit);
    let from_s0 = one.ite(&s1, &s0);
    let from_s1 = one.ite(&s1, &s10);
    let from_s10 = one.ite(&hit, &s0);
    let from_hit = one.ite(&s1, &s10);
    let next = se.eq(&s0).ite(
        &from_s0,
        &se.eq(&s1)
            .ite(&from_s1, &se.eq(&s10).ite(&from_s10, &from_hit)),
    );
    b.update(stage, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &single_input(&[0, 1, 0, 1])), // full 1-0-1 recognition
        witness(&system, &single_input(&[0, 1, 1, 0])), // repeated ones then zero
        witness(&system, &single_input(&[0, 0, 0])),    // idle zeros
        witness(&system, &single_input(&[0, 1, 0, 0])), // broken pattern back to S0
        witness(&system, &single_input(&[0, 1, 0, 1, 0, 1])), // overlap after a hit
    ];
    Benchmark {
        name: "SequenceRecognition".to_string(),
        system,
        observables,
        k: 10,
        reference_transitions: 5,
        witnesses,
    }
}

/// A single-server queue with bounded length (ServerQueueingSystem).
fn server_queue() -> Benchmark {
    let mut b = SystemBuilder::new();
    b.name("ServerQueueingSystem");
    let arrive = b.input("arrive", Sort::Bool).unwrap();
    let serve = b.input("serve", Sort::Bool).unwrap();
    let len = b.state("len", Sort::int(4), Value::Int(0)).unwrap();
    let busy = b.state("busy", Sort::Bool, Value::Bool(false)).unwrap();
    let le = b.var(len);
    let after_arrival = b
        .var(arrive)
        .and(&le.lt(&Expr::int_val(8, 4)))
        .ite(&le.add(&Expr::int_val(1, 4)), &le);
    let after_service = b
        .var(serve)
        .and(&after_arrival.gt(&Expr::int_val(0, 4)))
        .ite(&after_arrival.sub(&Expr::int_val(1, 4)), &after_arrival);
    b.update(len, after_service.clone()).unwrap();
    b.update(busy, after_service.gt(&Expr::int_val(0, 4)))
        .unwrap();
    let system = b.build().unwrap();
    let observables = vec![
        system.vars().lookup("arrive").unwrap(),
        system.vars().lookup("busy").unwrap(),
    ];
    let witnesses = vec![
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[1, 0]])), // queue builds, busy
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[0, 1], &[0, 1]])), // drains to idle
        witness(&system, &sched(&[&[0, 0], &[0, 0], &[0, 0]])), // stays idle
        witness(&system, &sched(&[&[0, 0], &[1, 1], &[1, 1]])), // arrival and service overlap
    ];
    Benchmark {
        name: "ServerQueueingSystem".to_string(),
        system,
        observables,
        k: 18,
        reference_transitions: 4,
        witnesses,
    }
}

/// CD player / radio mode manager (ModelingACdPlayerRadio, ModeManager chart).
fn cd_player_mode_manager() -> Benchmark {
    let mode_sort = Sort::enumeration("Mode", ["Standby", "Radio", "Cd"]);
    let mut b = SystemBuilder::new();
    b.name("CdPlayerModeManager");
    let power = b.input("power", Sort::Bool).unwrap();
    let disc = b.input("disc", Sort::Bool).unwrap();
    let mode = b.state_enum("mode", mode_sort.clone(), "Standby").unwrap();
    let standby = b.enum_const(mode, "Standby");
    let radio = b.enum_const(mode, "Radio");
    let cd = b.enum_const(mode, "Cd");
    let me = b.var(mode);
    let powered_target = b.var(disc).ite(&cd, &radio);
    let next = b.var(power).ite(&powered_target, &standby);
    let _ = me;
    b.update(mode, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[1, 0]])), // standby -> radio
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[1, 1]])), // radio -> cd on insert
        witness(&system, &sched(&[&[0, 0], &[1, 1], &[1, 0]])), // cd -> radio on eject
        witness(&system, &sched(&[&[0, 0], &[1, 1], &[0, 1]])), // cd -> standby on power off
        witness(&system, &sched(&[&[0, 0], &[0, 0], &[0, 0]])), // stays in standby
    ];
    Benchmark {
        name: "CdPlayerModeManager".to_string(),
        system,
        observables,
        k: 8,
        reference_transitions: 5,
        witnesses,
    }
}

/// Launch-abort mode logic: nominal flight, abort trigger, then staged abort
/// (ModelingALaunchAbortSystem / ModeLogic).
fn launch_abort_mode_logic() -> Benchmark {
    let mode_sort = Sort::enumeration("Mode", ["Nominal", "LowAbort", "HighAbort", "Safed"]);
    let mut b = SystemBuilder::new();
    b.name("LaunchAbortModeLogic");
    let abort = b.input("abort", Sort::Bool).unwrap();
    let high_alt = b.input("high_alt", Sort::Bool).unwrap();
    let mode = b.state_enum("mode", mode_sort.clone(), "Nominal").unwrap();
    let nominal = b.enum_const(mode, "Nominal");
    let low = b.enum_const(mode, "LowAbort");
    let high = b.enum_const(mode, "HighAbort");
    let safed = b.enum_const(mode, "Safed");
    let me = b.var(mode);
    let from_nominal = b
        .var(abort)
        .ite(&b.var(high_alt).ite(&high, &low), &nominal);
    // Any abort mode proceeds to the safed state on the next step.
    let next = me
        .eq(&nominal)
        .ite(&from_nominal, &me.eq(&safed).ite(&safed, &safed));
    b.update(mode, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &sched(&[&[0, 0], &[0, 0], &[0, 0]])), // nominal flight
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[0, 0]])), // low abort then safed
        witness(&system, &sched(&[&[0, 0], &[1, 1], &[0, 0]])), // high abort then safed
        witness(&system, &sched(&[&[0, 0], &[1, 0], &[0, 0], &[0, 0]])), // safed is terminal
    ];
    Benchmark {
        name: "LaunchAbortModeLogic".to_string(),
        system,
        observables,
        k: 8,
        reference_transitions: 4,
        witnesses,
    }
}

/// A frame synchroniser: hunts for a sync marker, locks after two consecutive
/// markers and drops lock after two consecutive misses (FrameSyncController).
fn frame_sync_controller() -> Benchmark {
    let state_sort = Sort::enumeration("Sync", ["Hunt", "PreLock", "Lock", "PreHunt"]);
    let mut b = SystemBuilder::new();
    b.name("FrameSyncController");
    let marker = b.input("marker", Sort::Bool).unwrap();
    let sync = b.state_enum("sync", state_sort.clone(), "Hunt").unwrap();
    let hunt = b.enum_const(sync, "Hunt");
    let prelock = b.enum_const(sync, "PreLock");
    let lock = b.enum_const(sync, "Lock");
    let prehunt = b.enum_const(sync, "PreHunt");
    let se = b.var(sync);
    let m = b.var(marker);
    let from_hunt = m.ite(&prelock, &hunt);
    let from_prelock = m.ite(&lock, &hunt);
    let from_lock = m.ite(&lock, &prehunt);
    let from_prehunt = m.ite(&lock, &hunt);
    let next = se.eq(&hunt).ite(
        &from_hunt,
        &se.eq(&prelock)
            .ite(&from_prelock, &se.eq(&lock).ite(&from_lock, &from_prehunt)),
    );
    b.update(sync, next).unwrap();
    let system = b.build().unwrap();
    let observables = system.all_vars();
    let witnesses = vec![
        witness(&system, &single_input(&[0, 1, 1, 1])), // hunt -> prelock -> lock
        witness(&system, &single_input(&[0, 1, 0, 0])), // prelock falls back to hunt
        witness(&system, &single_input(&[0, 1, 1, 0, 1])), // lock survives a single miss
        witness(&system, &single_input(&[0, 1, 1, 0, 0])), // two misses drop the lock
        witness(&system, &single_input(&[0, 0, 0])),    // hunting on silence
    ];
    Benchmark {
        name: "FrameSyncController".to_string(),
        system,
        observables,
        k: 12,
        reference_transitions: 5,
        witnesses,
    }
}

/// The protocol-family benchmarks.
pub(crate) fn benchmarks() -> Vec<Benchmark> {
    vec![
        vending_machine(),
        sequence_recognition(),
        server_queue(),
        cd_player_mode_manager(),
        launch_abort_mode_logic(),
        frame_sync_controller(),
    ]
}
