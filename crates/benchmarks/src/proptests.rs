//! Property-based tests of the synthetic benchmark generator: every
//! generated system must be well-formed and every derived witness must
//! replay on it, across random seeds, widths and input counts.

use crate::synth::{SynthFamily, SynthKind, SynthSpec};
use amle_system::Simulator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn kind_strategy() -> impl Strategy<Value = SynthKind> {
    prop_oneof![
        Just(SynthKind::Counter),
        Just(SynthKind::GrayCode),
        Just(SynthKind::ModularArith),
        Just(SynthKind::GatedToggle),
        Just(SynthKind::SpliceStorm),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_benchmarks_are_well_formed(
        seed in 0u64..1_000,
        bits in 0u32..12,
        inputs in 0usize..6,
        kind in kind_strategy(),
    ) {
        let b = SynthFamily::new(seed).benchmark(SynthSpec { kind, bits, inputs });
        // Input and state variables are disjoint and together cover the
        // variable table.
        let input_set: HashSet<_> = b.system.input_vars().iter().copied().collect();
        let state_set: HashSet<_> = b.system.state_vars().iter().copied().collect();
        prop_assert!(input_set.is_disjoint(&state_set));
        prop_assert_eq!(input_set.len() + state_set.len(), b.system.all_vars().len());
        // Benchmark wiring.
        prop_assert!(!b.observables.is_empty());
        prop_assert!(b.k > 0);
        prop_assert_eq!(b.reference_transitions, b.witnesses.len());
        for id in &b.observables {
            prop_assert!(b.system.vars().info(*id).is_some());
        }
        // Every derived witness replays on the system: consecutive
        // observations are transitions and inputs stay in range.
        for (i, w) in b.witnesses.iter().enumerate() {
            prop_assert!(!w.is_empty(), "witness {} is empty", i);
            prop_assert!(
                b.system.is_execution_trace(w),
                "witness {} does not replay on {}",
                i,
                b.name
            );
        }
    }

    #[test]
    fn generated_systems_drive_the_simulator(
        seed in 0u64..200,
        bits in 2u32..6,
        kind in kind_strategy(),
    ) {
        let b = SynthFamily::new(seed).benchmark(SynthSpec { kind, bits, inputs: 2 });
        let sim = Simulator::new(&b.system);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.random_trace(20, &mut rng);
        prop_assert!(b.system.is_execution_trace(&trace));
    }
}
