//! The benchmark record type and the suite registry.

use amle_automaton::Nfa;
use amle_expr::{Value, VarId};
use amle_system::{System, Trace};
use std::error::Error;
use std::fmt;

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (mirrors the Table I naming scheme; synthetic
    /// benchmarks use a `Synth…` prefix with their parameters).
    pub name: String,
    /// The system under learning.
    pub system: System,
    /// The observable variables `X` for this benchmark.
    pub observables: Vec<VarId>,
    /// Per-benchmark k-induction bound (the `k` column of Table I).
    pub k: usize,
    /// Number of transitions of the reference (ground-truth) state machine.
    pub reference_transitions: usize,
    /// Witness traces, one per reference transition; used for the score `d`.
    pub witnesses: Vec<Trace>,
}

impl Benchmark {
    /// The paper's accuracy score `d`: the fraction of reference-machine
    /// transitions whose witness trace is admitted by the learned
    /// abstraction.
    pub fn score_d(&self, learned: &Nfa) -> f64 {
        learned.acceptance_ratio(&self.witnesses)
    }

    /// Number of observable variables (the `|X|` column of Table I).
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }
}

/// Error raised when an input schedule does not match the system it is meant
/// to drive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Name of the system the schedule was replayed on.
    pub system: String,
    /// Index of the offending schedule row.
    pub row: usize,
    /// Number of values supplied in that row.
    pub got: usize,
    /// Number of declared input variables.
    pub expected: usize,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule row {} for system `{}` has {} values but the system declares {} input variables",
            self.row, self.system, self.got, self.expected
        )
    }
}

impl Error for ScheduleError {}

/// Helper used by the benchmark definitions: runs the system from its initial
/// valuation under an explicit input schedule and records the resulting
/// trace. Each schedule entry gives the raw values of the input variables (in
/// declaration order) for one step.
///
/// # Errors
///
/// Returns a [`ScheduleError`] naming the system and the offending row when a
/// schedule row does not supply exactly one value per declared input
/// variable. (Silently zipping a short row against the input list would feed
/// the simulator stale input values — a miswritten witness would then
/// disagree with the reference machine it is supposed to pin down.)
pub fn trace_from_schedule(system: &System, schedule: &[Vec<i64>]) -> Result<Trace, ScheduleError> {
    let inputs = system.input_vars().to_vec();
    for (row_index, row) in schedule.iter().enumerate() {
        if row.len() != inputs.len() {
            return Err(ScheduleError {
                system: system.name().to_string(),
                row: row_index,
                got: row.len(),
                expected: inputs.len(),
            });
        }
    }
    let assign = |row: &Vec<i64>| -> Vec<(VarId, Value)> {
        inputs
            .iter()
            .zip(row.iter())
            .map(|(id, raw)| (*id, Value::from_i64(system.vars().sort(*id), *raw)))
            .collect()
    };
    let mut current = system.initial_valuation();
    if let Some(first) = schedule.first() {
        for (id, value) in assign(first) {
            current.set(id, value);
        }
    }
    let mut observations = Vec::new();
    for row in schedule.iter().skip(1) {
        current = system.step(&current, &assign(row));
        observations.push(current.clone());
    }
    Ok(Trace::new(observations))
}

/// Helper: a schedule-driven witness trace for a statically defined
/// benchmark.
///
/// # Panics
///
/// Panics (naming the benchmark system) when the schedule is malformed; the
/// static Table I definitions are validated by the suite tests, so this is a
/// definition-time assertion rather than a runtime hazard.
pub(crate) fn witness(system: &System, schedule: &[Vec<i64>]) -> Trace {
    match trace_from_schedule(system, schedule) {
        Ok(trace) => trace,
        Err(e) => panic!("bad witness schedule: {e}"),
    }
}

/// Convenience for building per-step schedules where the benchmark has a
/// single input variable.
pub(crate) fn single_input(values: &[i64]) -> Vec<Vec<i64>> {
    values.iter().map(|v| vec![*v]).collect()
}

/// All Table I benchmarks, in a stable order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    suite.extend(crate::controllers::benchmarks());
    suite.extend(crate::schedulers::benchmarks());
    suite.extend(crate::protocols::benchmarks());
    suite
}

/// The full evaluation suite: Table I plus the default synthetic families
/// (see [`crate::synthetic_benchmarks`]), in a stable order.
pub fn full_suite() -> Vec<Benchmark> {
    let mut suite = all_benchmarks();
    suite.extend(crate::synth::synthetic_benchmarks(
        crate::synth::DEFAULT_SEED,
    ));
    suite
}

/// The stress suite: [`full_suite`] plus the splicing-stress family
/// ([`crate::splice_stress_benchmarks`]), in a stable order. Kept separate
/// so that default suite fingerprints stay comparable across releases.
pub fn stress_suite() -> Vec<Benchmark> {
    let mut suite = full_suite();
    suite.extend(crate::synth::splice_stress_benchmarks(
        crate::synth::DEFAULT_SEED,
    ));
    suite
}

/// Looks a benchmark up by name, across Table I, the default synthetic
/// families, the splicing-stress family and the circuit family.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    stress_suite()
        .into_iter()
        .chain(crate::circuits::circuit_benchmarks())
        .find(|b| b.name == name)
}
