//! The benchmark record type and the suite registry.

use amle_automaton::Nfa;
use amle_expr::{Value, VarId};
use amle_system::{System, Trace};

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (mirrors the Table I naming scheme).
    pub name: &'static str,
    /// The system under learning.
    pub system: System,
    /// The observable variables `X` for this benchmark.
    pub observables: Vec<VarId>,
    /// Per-benchmark k-induction bound (the `k` column of Table I).
    pub k: usize,
    /// Number of transitions of the reference (ground-truth) state machine.
    pub reference_transitions: usize,
    /// Witness traces, one per reference transition; used for the score `d`.
    pub witnesses: Vec<Trace>,
}

impl Benchmark {
    /// The paper's accuracy score `d`: the fraction of reference-machine
    /// transitions whose witness trace is admitted by the learned
    /// abstraction.
    pub fn score_d(&self, learned: &Nfa) -> f64 {
        learned.acceptance_ratio(&self.witnesses)
    }

    /// Number of observable variables (the `|X|` column of Table I).
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }
}

/// Helper used by the benchmark definitions: runs the system from its initial
/// valuation under an explicit input schedule and records the resulting
/// trace. Each schedule entry gives the raw values of the input variables (in
/// declaration order) for one step.
pub(crate) fn trace_from_schedule(system: &System, schedule: &[Vec<i64>]) -> Trace {
    let inputs = system.input_vars().to_vec();
    let assign = |row: &Vec<i64>| -> Vec<(VarId, Value)> {
        inputs
            .iter()
            .zip(row.iter())
            .map(|(id, raw)| (*id, Value::from_i64(system.vars().sort(*id), *raw)))
            .collect()
    };
    let mut current = system.initial_valuation();
    if let Some(first) = schedule.first() {
        for (id, value) in assign(first) {
            current.set(id, value);
        }
    }
    let mut observations = Vec::new();
    for row in schedule.iter().skip(1) {
        current = system.step(&current, &assign(row));
        observations.push(current.clone());
    }
    Trace::new(observations)
}

/// Helper: a witness trace is the suffix of a schedule-driven run; most
/// benchmarks use full runs directly.
pub(crate) fn witness(system: &System, schedule: &[Vec<i64>]) -> Trace {
    trace_from_schedule(system, schedule)
}

/// Convenience for building per-step schedules where the benchmark has a
/// single input variable.
pub(crate) fn single_input(values: &[i64]) -> Vec<Vec<i64>> {
    values.iter().map(|v| vec![*v]).collect()
}

/// All benchmarks of the suite, in a stable order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    suite.extend(crate::controllers::benchmarks());
    suite.extend(crate::schedulers::benchmarks());
    suite.extend(crate::protocols::benchmarks());
    suite
}

/// Looks a benchmark up by name.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}
