//! A light-weight simplifier for expressions.
//!
//! The simplifier performs constant folding and a handful of local rewrites
//! (identity elements, annihilators, double negation, trivial if-then-else).
//! Its purpose is readability of learned edge predicates and extracted
//! invariants, not completeness: simplified expressions are always
//! semantically equivalent to the originals (checked by property tests).

use crate::{BinOp, Expr, ExprKind, UnOp, Valuation, Value, VarSet};

/// Simplifies an expression by constant folding and local rewrites.
///
/// The result is semantically equivalent to the input but often smaller and
/// easier to read, e.g. `(true && (x > 3)) || false` becomes `x > 3`.
///
/// # Example
///
/// ```
/// use amle_expr::{simplify, Expr, Sort, VarSet};
///
/// let mut vars = VarSet::new();
/// let x = vars.declare("x", Sort::int(8)).unwrap();
/// let xe = Expr::var(x, Sort::int(8));
/// let messy = Expr::true_().and(&xe.gt(&Expr::int_val(3, 8))).or(&Expr::false_());
/// assert_eq!(simplify(&messy).to_string(), "(x0 > 3)");
/// ```
pub fn simplify(expr: &Expr) -> Expr {
    match expr.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => expr.clone(),
        ExprKind::Unary(op, a) => {
            let a = simplify(a);
            match (op, a.kind()) {
                (UnOp::Not, ExprKind::Const(Value::Bool(b))) => Expr::bool_const(!b),
                (UnOp::Not, ExprKind::Unary(UnOp::Not, inner)) => inner.clone(),
                (UnOp::Neg, ExprKind::Const(Value::Int(v))) => {
                    Expr::constant(expr.sort(), Value::Int(expr.sort().wrap(-v)))
                        .expect("wrapped constant fits")
                }
                (UnOp::Not, _) => a.not(),
                (UnOp::Neg, _) => a.neg(),
            }
        }
        ExprKind::Binary(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            simplify_binary(expr, *op, a, b)
        }
        ExprKind::Ite(c, t, e) => {
            let c = simplify(c);
            let t = simplify(t);
            let e = simplify(e);
            if c.is_true() {
                t
            } else if c.is_false() {
                e
            } else if t == e {
                t
            } else {
                c.ite(&t, &e)
            }
        }
    }
}

fn simplify_binary(orig: &Expr, op: BinOp, a: Expr, b: Expr) -> Expr {
    // Full constant folding first.
    if a.as_const().is_some() && b.as_const().is_some() {
        let empty = VarSet::new();
        let val = Valuation::zeroed(&empty);
        let rebuilt = rebuild(op, &a, &b);
        let folded = rebuilt.eval(&val);
        return Expr::constant(orig.sort(), folded).expect("folded constant fits sort");
    }

    match op {
        BinOp::And => {
            if a.is_true() {
                return b;
            }
            if b.is_true() {
                return a;
            }
            if a.is_false() || b.is_false() {
                return Expr::false_();
            }
            if a == b {
                return a;
            }
            a.and(&b)
        }
        BinOp::Or => {
            if a.is_false() {
                return b;
            }
            if b.is_false() {
                return a;
            }
            if a.is_true() || b.is_true() {
                return Expr::true_();
            }
            if a == b {
                return a;
            }
            a.or(&b)
        }
        BinOp::Implies => {
            if a.is_true() {
                return b;
            }
            if a.is_false() || b.is_true() {
                return Expr::true_();
            }
            if b.is_false() {
                return simplify(&a.not());
            }
            a.implies(&b)
        }
        BinOp::Xor => {
            if a.is_false() {
                return b;
            }
            if b.is_false() {
                return a;
            }
            if a == b {
                return Expr::false_();
            }
            a.xor(&b)
        }
        BinOp::Eq if a == b => Expr::true_(),
        BinOp::Ne if a == b => Expr::false_(),
        BinOp::Le | BinOp::Ge if a == b => Expr::true_(),
        BinOp::Lt | BinOp::Gt if a == b => Expr::false_(),
        BinOp::Add => {
            if is_zero(&a) {
                return b;
            }
            if is_zero(&b) {
                return a;
            }
            a.add(&b)
        }
        BinOp::Sub => {
            if is_zero(&b) {
                return a;
            }
            a.sub(&b)
        }
        BinOp::Mul => {
            if is_zero(&a) || is_zero(&b) {
                return Expr::constant(orig.sort(), Value::Int(0)).expect("zero fits");
            }
            if is_one(&a) {
                return b;
            }
            if is_one(&b) {
                return a;
            }
            a.mul(&b)
        }
        _ => rebuild(op, &a, &b),
    }
}

fn rebuild(op: BinOp, a: &Expr, b: &Expr) -> Expr {
    match op {
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Implies => {
            Expr::try_bool_op(op, a, b).expect("operands were well-sorted before simplification")
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            Expr::try_arith_op(op, a, b).expect("operands were well-sorted before simplification")
        }
        _ => Expr::try_cmp_op(op, a, b).expect("operands were well-sorted before simplification"),
    }
}

fn is_zero(e: &Expr) -> bool {
    e.as_const() == Some(Value::Int(0))
}

fn is_one(e: &Expr) -> bool {
    e.as_const() == Some(Value::Int(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sort, VarId};

    fn x() -> Expr {
        Expr::var(VarId::from_index(0), Sort::int(8))
    }

    fn b() -> Expr {
        Expr::var(VarId::from_index(1), Sort::Bool)
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(simplify(&Expr::true_().and(&b())), b());
        assert_eq!(simplify(&b().and(&Expr::true_())), b());
        assert!(simplify(&b().and(&Expr::false_())).is_false());
        assert_eq!(simplify(&Expr::false_().or(&b())), b());
        assert!(simplify(&b().or(&Expr::true_())).is_true());
        assert_eq!(simplify(&b().and(&b())), b());
        assert_eq!(simplify(&b().or(&b())), b());
        assert!(simplify(&b().xor(&b())).is_false());
    }

    #[test]
    fn implication_rewrites() {
        assert_eq!(simplify(&Expr::true_().implies(&b())), b());
        assert!(simplify(&Expr::false_().implies(&b())).is_true());
        assert!(simplify(&b().implies(&Expr::true_())).is_true());
        assert_eq!(simplify(&b().implies(&Expr::false_())), b().not());
    }

    #[test]
    fn double_negation() {
        assert_eq!(simplify(&b().not().not()), b());
        assert!(simplify(&Expr::true_().not()).is_false());
    }

    #[test]
    fn constant_folding() {
        let e = Expr::int_val(3, 8).add(&Expr::int_val(4, 8));
        assert_eq!(simplify(&e).as_const(), Some(Value::Int(7)));
        let e = Expr::int_val(3, 8).lt(&Expr::int_val(4, 8));
        assert!(simplify(&e).is_true());
        let e = Expr::int_val(200, 8).add(&Expr::int_val(100, 8));
        assert_eq!(simplify(&e).as_const(), Some(Value::Int(44)));
    }

    #[test]
    fn arithmetic_identities() {
        let zero = Expr::int_val(0, 8);
        let one = Expr::int_val(1, 8);
        assert_eq!(simplify(&x().add(&zero)), x());
        assert_eq!(simplify(&zero.add(&x())), x());
        assert_eq!(simplify(&x().sub(&zero)), x());
        assert_eq!(simplify(&x().mul(&one)), x());
        assert_eq!(simplify(&one.mul(&x())), x());
        assert_eq!(simplify(&x().mul(&zero)).as_const(), Some(Value::Int(0)));
    }

    #[test]
    fn reflexive_comparisons() {
        assert!(simplify(&x().eq(&x())).is_true());
        assert!(simplify(&x().ne(&x())).is_false());
        assert!(simplify(&x().le(&x())).is_true());
        assert!(simplify(&x().lt(&x())).is_false());
    }

    #[test]
    fn ite_simplification() {
        let e = Expr::true_().ite(&x(), &Expr::int_val(0, 8));
        assert_eq!(simplify(&e), x());
        let e = Expr::false_().ite(&x(), &Expr::int_val(0, 8));
        assert_eq!(simplify(&e).as_const(), Some(Value::Int(0)));
        let e = b().ite(&x(), &x());
        assert_eq!(simplify(&e), x());
    }

    #[test]
    fn nested_structure_shrinks() {
        let messy = Expr::true_()
            .and(&x().gt(&Expr::int_val(3, 8)))
            .or(&Expr::false_());
        let simp = simplify(&messy);
        assert_eq!(simp.to_string(), "(x0 > 3)");
        assert!(simp.node_count() < messy.node_count());
    }
}
