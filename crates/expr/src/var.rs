//! Variable declarations and valuations.

use crate::{Sort, SortError, Value};
use std::fmt;

/// Identifier of a declared variable: an index into its [`VarSet`].
///
/// `VarId`s are only meaningful together with the `VarSet` they were declared
/// in; all pipeline components share a single `VarSet` per system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of the variable in its declaration table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VarId` from a raw index.
    ///
    /// Intended for components (such as the bit-blaster) that iterate over
    /// `0..var_set.len()`; passing an index that was never declared results in
    /// lookup panics later on.
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Declaration record of a single variable: its name and sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Variable name (unique within a `VarSet`).
    pub name: String,
    /// Sort of the variable.
    pub sort: Sort,
}

/// An ordered table of variable declarations.
///
/// Systems declare their state and input variables here; traces, valuations,
/// automaton predicates and CNF encodings all refer to variables through
/// [`VarId`]s resolved against this table.
///
/// # Example
///
/// ```
/// use amle_expr::{Sort, VarSet};
///
/// let mut vars = VarSet::new();
/// let t = vars.declare("temp", Sort::int(8)).unwrap();
/// assert_eq!(vars.name(t), "temp");
/// assert_eq!(vars.lookup("temp"), Some(t));
/// assert!(vars.declare("temp", Sort::Bool).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    vars: Vec<VarInfo>,
}

impl VarSet {
    /// Creates an empty variable table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new variable and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`SortError::DuplicateVariable`] if a variable of the same name
    /// has already been declared.
    pub fn declare<N: Into<String>>(&mut self, name: N, sort: Sort) -> Result<VarId, SortError> {
        let name = name.into();
        if self.lookup(&name).is_some() {
            return Err(SortError::DuplicateVariable { name });
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo { name, sort });
        Ok(id)
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variables have been declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The name of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared in this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// The sort of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared in this table.
    pub fn sort(&self, id: VarId) -> &Sort {
        &self.vars[id.index()].sort
    }

    /// The full declaration record of a variable, if it exists.
    pub fn info(&self, id: VarId) -> Option<&VarInfo> {
        self.vars.get(id.index())
    }

    /// Finds a variable id by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Iterates over `(id, info)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// All declared variable ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(|i| VarId(i as u32))
    }
}

/// A total assignment of values to the variables of a [`VarSet`].
///
/// A valuation is one observation of a trace (one row of trace data). Values
/// are stored densely, indexed by [`VarId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Valuation {
    values: Vec<Value>,
}

impl Valuation {
    /// Creates a valuation mapping every variable of `vars` to the "zero"
    /// value of its sort (`false`, `0`, or the first enum variant).
    pub fn zeroed(vars: &VarSet) -> Self {
        let values = vars
            .iter()
            .map(|(_, info)| Value::from_i64(&info.sort, 0))
            .collect();
        Valuation { values }
    }

    /// Creates a valuation from a dense value vector (one entry per variable,
    /// in declaration order).
    ///
    /// # Panics
    ///
    /// Panics if the length of `values` differs from `vars.len()`.
    pub fn from_values(vars: &VarSet, values: Vec<Value>) -> Self {
        assert_eq!(
            values.len(),
            vars.len(),
            "valuation length {} does not match variable count {}",
            values.len(),
            vars.len()
        );
        Valuation { values }
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this valuation.
    pub fn value(&self, id: VarId) -> Value {
        self.values[id.index()]
    }

    /// Sets the value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this valuation.
    pub fn set(&mut self, id: VarId, value: Value) {
        self.values[id.index()] = value;
    }

    /// Number of variables covered by this valuation.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the valuation covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The dense value slice, in variable-declaration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Renders the valuation with variable names, e.g. `{temp=40, on=true}`.
    pub fn display<'a>(&'a self, vars: &'a VarSet) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Valuation, &'a VarSet);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, (id, info)) in self.1.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let v = self.0.value(id);
                    match (&info.sort, v) {
                        (Sort::Enum(e), Value::Enum(idx)) => {
                            let name = e
                                .variants
                                .get(idx as usize)
                                .map(String::as_str)
                                .unwrap_or("?");
                            write!(f, "{}={}", info.name, name)?;
                        }
                        _ => write!(f, "{}={}", info.name, v)?,
                    }
                }
                write!(f, "}}")
            }
        }
        D(self, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_vars() -> (VarSet, VarId, VarId, VarId) {
        let mut vars = VarSet::new();
        let t = vars.declare("temp", Sort::int(8)).unwrap();
        let on = vars.declare("on", Sort::Bool).unwrap();
        let m = vars
            .declare("mode", Sort::enumeration("Mode", ["Off", "Low", "High"]))
            .unwrap();
        (vars, t, on, m)
    }

    #[test]
    fn declare_and_lookup() {
        let (vars, t, on, m) = demo_vars();
        assert_eq!(vars.len(), 3);
        assert_eq!(vars.lookup("temp"), Some(t));
        assert_eq!(vars.lookup("on"), Some(on));
        assert_eq!(vars.lookup("mode"), Some(m));
        assert_eq!(vars.lookup("missing"), None);
        assert_eq!(vars.name(t), "temp");
        assert_eq!(vars.sort(on), &Sort::Bool);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let mut vars = VarSet::new();
        vars.declare("x", Sort::Bool).unwrap();
        let err = vars.declare("x", Sort::int(4)).unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn zeroed_valuation() {
        let (vars, t, on, m) = demo_vars();
        let v = Valuation::zeroed(&vars);
        assert_eq!(v.value(t), Value::Int(0));
        assert_eq!(v.value(on), Value::Bool(false));
        assert_eq!(v.value(m), Value::Enum(0));
    }

    #[test]
    fn set_and_get() {
        let (vars, t, on, _) = demo_vars();
        let mut v = Valuation::zeroed(&vars);
        v.set(t, Value::Int(42));
        v.set(on, Value::Bool(true));
        assert_eq!(v.value(t), Value::Int(42));
        assert_eq!(v.value(on), Value::Bool(true));
    }

    #[test]
    fn display_uses_names_and_variants() {
        let (vars, t, on, m) = demo_vars();
        let mut v = Valuation::zeroed(&vars);
        v.set(t, Value::Int(30));
        v.set(on, Value::Bool(true));
        v.set(m, Value::Enum(2));
        let s = v.display(&vars).to_string();
        assert_eq!(s, "{temp=30, on=true, mode=High}");
    }

    #[test]
    #[should_panic(expected = "does not match variable count")]
    fn from_values_length_checked() {
        let (vars, ..) = demo_vars();
        let _ = Valuation::from_values(&vars, vec![Value::Int(0)]);
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let (vars, ..) = demo_vars();
        let names: Vec<_> = vars.iter().map(|(_, i)| i.name.clone()).collect();
        assert_eq!(names, ["temp", "on", "mode"]);
        assert_eq!(vars.ids().count(), 3);
    }
}
