//! # amle-expr
//!
//! Typed, word-level expression language used throughout the active
//! model-learning pipeline.
//!
//! The crate provides:
//!
//! * [`Sort`] — the type of a variable or expression: booleans, fixed-width
//!   (optionally signed) integers, and named enumerations.
//! * [`Value`] — a concrete value of some sort.
//! * [`VarSet`] / [`VarId`] — a declaration table for the observable and
//!   internal variables of a system.
//! * [`Expr`] — an immutable, reference-counted, **hash-consed** expression
//!   DAG with the operations needed to describe transition relations,
//!   initial-state constraints and transition-edge predicates: boolean
//!   connectives, bounded-integer arithmetic, comparisons and if-then-else.
//!   Every distinct node exists once in a process-global interner, so
//!   `Eq`/`Hash`/`Ord` are O(1) id operations (see [`ExprId`]) and
//!   expression-keyed caches throughout the pipeline probe in constant time;
//!   [`InternerStats`] reports the interner's traffic.
//! * [`Expr::canonical`] — the canonicalisation seam: a memoised,
//!   semantics-preserving normal form (constant folding, neutral/absorbing
//!   elimination, double negation, reflexive comparisons, sorted + flattened
//!   commutative chains) used for semantic cache keys, while the raw
//!   constructors preserve their given shape so rendered predicates stay
//!   byte-stable.
//! * Evaluation over [`Valuation`]s with wrap-around fixed-width semantics,
//!   constant folding and a light-weight simplifier used to keep learned
//!   predicates readable.
//!
//! The expression language is deliberately small: it is exactly the fragment
//! the paper's benchmarks (Simulink Stateflow controllers) need, and the
//! fragment that the bit-blaster in `amle-bitblast` can translate to CNF.
//!
//! ## Example
//!
//! ```
//! use amle_expr::{Expr, Sort, Value, VarSet, Valuation};
//!
//! let mut vars = VarSet::new();
//! let temp = vars.declare("temp", Sort::int(8)).unwrap();
//! let on = vars.declare("on", Sort::Bool).unwrap();
//!
//! // on && temp > 30
//! let pred = Expr::var(on, Sort::Bool).and(&Expr::var(temp, Sort::int(8)).gt(&Expr::int_val(31, 8)));
//!
//! let mut v = Valuation::zeroed(&vars);
//! v.set(temp, Value::Int(40));
//! v.set(on, Value::Bool(true));
//! assert_eq!(pred.eval(&v), Value::Bool(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod error;
mod expr;
mod intern;
mod simplify;
mod sort;
mod value;
mod var;

pub use error::SortError;
pub use expr::{BinOp, Expr, ExprKind, UnOp};
pub use intern::{ExprId, InternerStats};
pub use simplify::simplify;
pub use sort::Sort;
pub use value::Value;
pub use var::{Valuation, VarId, VarInfo, VarSet};

#[cfg(test)]
mod proptests;
