//! The global hash-consing interner behind [`Expr`].
//!
//! Every distinct `(kind, sort)` expression node is stored exactly once, in a
//! process-wide arena, and handed out as a reference-counted [`Expr`] carrying
//! a dense [`ExprId`] plus a cached structural hash. Consequences:
//!
//! * **O(1) identity.** `Eq`, `Hash` and `Ord` on [`Expr`] are single integer
//!   operations instead of tree walks — every cache keyed on expressions
//!   (the bit-blaster's `(frame, expr)` memo tables, the checker's activation
//!   map, the condition planner's verdict cache) probes in constant time.
//! * **Structural sharing for free.** Two sites that build the same subtree
//!   get the same allocation, however far apart they are in the pipeline.
//! * **Stable ids.** Ids are never reused, so an [`ExprId`] held in a cache
//!   key stays valid for the lifetime of the process. Interned nodes are
//!   retained for the lifetime of the process as well — expression nodes are
//!   small and deduplicated, so the arena grows with the number of *distinct*
//!   subtrees ever built, which the learning loop keeps modest by
//!   construction (predicates are rebuilt identically across iterations).
//!
//! The interner is sharded: a node's structural hash selects one of a fixed
//! number of mutex-protected shards, so concurrent condition-checking workers
//! interning counterexample formulas rarely contend. Statistics (nodes
//! interned, intern hits, canonical rewrites) are kept in process-global
//! atomics and surfaced through [`InternerStats`].
//!
//! **Determinism.** Ids depend on interning order, which depends on thread
//! interleaving — so nothing semantic may depend on id *values*. Everything
//! that must be deterministic (canonical operand ordering, see
//! [`Expr::canonical`](crate::Expr::canonical)) uses the *structural* hash
//! and [`Expr::structural_cmp`](crate::Expr::structural_cmp) instead, both of
//! which are pure functions of the tree content.

use crate::expr::{Expr, ExprKind, ExprNode};
use crate::{Sort, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The dense, process-global identifier of an interned expression node.
///
/// Two [`Expr`]s are structurally equal **iff** their ids are equal; this is
/// the O(1) identity every expression-keyed cache in the workspace relies on.
/// Ids are never reused. They are *not* deterministic across runs or thread
/// interleavings — use them as cache keys, never as an ordering that leaks
/// into reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// The raw dense index of the node in the interner arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Snapshot of the process-global interner counters.
///
/// The counters accumulate over the process lifetime (like
/// `amle_sat::SolverStats` accumulate over a solver's); callers snapshot with
/// [`InternerStats::snapshot`] and diff with [`InternerStats::since`] to
/// attribute interner work to one run. When several runs execute concurrently
/// (the sharded suite runner), a run's delta includes its neighbours' interner
/// traffic — the numbers are a load indicator, not a per-run invariant, and
/// are deliberately excluded from semantic fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct nodes created (intern misses).
    pub nodes_interned: u64,
    /// Intern calls answered by an existing node (structural duplicates).
    pub hits: u64,
    /// Canonicalisation steps that changed a node's local shape (constant
    /// folds, neutral/absorbing eliminations, double negations, reflexive
    /// comparison collapses, commutative reorderings), counted once per
    /// distinct node thanks to the canonical memo.
    pub canonical_rewrites: u64,
}

impl InternerStats {
    /// The current value of the global counters.
    pub fn snapshot() -> InternerStats {
        let interner = interner();
        InternerStats {
            nodes_interned: interner.interned.load(Ordering::Relaxed),
            hits: interner.hits.load(Ordering::Relaxed),
            canonical_rewrites: interner.rewrites.load(Ordering::Relaxed),
        }
    }

    /// The work done since an earlier snapshot of the same global counters.
    pub fn since(&self, earlier: &InternerStats) -> InternerStats {
        InternerStats {
            nodes_interned: self.nodes_interned - earlier.nodes_interned,
            hits: self.hits - earlier.hits,
            canonical_rewrites: self.canonical_rewrites - earlier.canonical_rewrites,
        }
    }

    /// Fraction of intern calls answered by an existing node, in `0..=1`
    /// (0 when no call was made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.nodes_interned + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for InternerStats {
    fn add_assign(&mut self, rhs: InternerStats) {
        self.nodes_interned += rhs.nodes_interned;
        self.hits += rhs.hits;
        self.canonical_rewrites += rhs.canonical_rewrites;
    }
}

impl std::ops::Add for InternerStats {
    type Output = InternerStats;

    fn add(mut self, rhs: InternerStats) -> InternerStats {
        self += rhs;
        self
    }
}

const SHARD_COUNT: usize = 16;

struct Interner {
    next_id: AtomicU32,
    interned: AtomicU64,
    hits: AtomicU64,
    rewrites: AtomicU64,
    /// Structural hash → nodes with that hash (collision buckets are tiny).
    shards: [Mutex<HashMap<u64, Vec<Expr>>>; SHARD_COUNT],
    /// Node id → its canonical form (memo of `Expr::canonical`).
    canonical: [Mutex<HashMap<u32, Expr>>; SHARD_COUNT],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        next_id: AtomicU32::new(0),
        interned: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        rewrites: AtomicU64::new(0),
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        canonical: std::array::from_fn(|_| Mutex::new(HashMap::new())),
    })
}

/// Interns a node, returning the unique [`Expr`] for its `(kind, sort)`.
pub(crate) fn intern(kind: ExprKind, sort: Sort) -> Expr {
    let interner = interner();
    let shash = node_hash(&kind, &sort);
    let shard = &interner.shards[(shash as usize) % SHARD_COUNT];
    let mut map = shard.lock().expect("interner shard poisoned");
    let bucket = map.entry(shash).or_default();
    if let Some(existing) = bucket
        .iter()
        .find(|e| *e.kind() == kind && *e.sort() == sort)
    {
        let existing = existing.clone();
        interner.hits.fetch_add(1, Ordering::Relaxed);
        return existing;
    }
    let id = interner.next_id.fetch_add(1, Ordering::Relaxed);
    assert!(id != u32::MAX, "expression interner id space exhausted");
    let tree_size = tree_size_of(&kind);
    let expr = Expr::from_node(ExprNode {
        id,
        shash,
        tree_size,
        kind,
        sort,
    });
    bucket.push(expr.clone());
    interner.interned.fetch_add(1, Ordering::Relaxed);
    expr
}

/// Looks up the memoised canonical form of the node with id `id`.
pub(crate) fn canonical_memo_get(id: u32) -> Option<Expr> {
    let interner = interner();
    let shard = &interner.canonical[(id as usize) % SHARD_COUNT];
    shard
        .lock()
        .expect("canonical memo shard poisoned")
        .get(&id)
        .cloned()
}

/// Records the canonical form of the node with id `id`. `rewrote` says
/// whether canonicalisation changed the node's local shape (for the
/// [`InternerStats::canonical_rewrites`] counter); repeated insertions of the
/// same id are ignored so the counter stays once-per-node.
pub(crate) fn canonical_memo_insert(id: u32, canonical: Expr, rewrote: bool) {
    let interner = interner();
    let shard = &interner.canonical[(id as usize) % SHARD_COUNT];
    let mut map = shard.lock().expect("canonical memo shard poisoned");
    if map.insert(id, canonical).is_none() && rewrote {
        interner.rewrites.fetch_add(1, Ordering::Relaxed);
    }
}

/// The tree size of a node given its (already interned) children: 1 plus the
/// children's tree sizes, saturating. Shared subtrees count once per
/// occurrence, which on adversarially shared DAGs grows exponentially — the
/// saturating arithmetic (and the O(1) lookup of the children's precomputed
/// sizes) is what keeps [`Expr::node_count`](crate::Expr::node_count) safe on
/// such inputs.
fn tree_size_of(kind: &ExprKind) -> u64 {
    let children: u64 = match kind {
        ExprKind::Const(_) | ExprKind::Var(_) => 0,
        ExprKind::Unary(_, a) => a.tree_size(),
        ExprKind::Binary(_, a, b) => a.tree_size().saturating_add(b.tree_size()),
        ExprKind::Ite(c, t, e) => c
            .tree_size()
            .saturating_add(t.tree_size())
            .saturating_add(e.tree_size()),
    };
    children.saturating_add(1)
}

// ---------------------------------------------------------------------------
// Structural hashing: a deterministic, content-only hash. Children contribute
// their cached hashes, so hashing a node is O(arity).
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ splitmix64(v))
}

fn hash_str(h: u64, s: &str) -> u64 {
    let mut h = mix(h, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

fn sort_hash(sort: &Sort) -> u64 {
    match sort {
        Sort::Bool => splitmix64(1),
        Sort::Int { bits, signed } => mix(mix(2, *bits as u64), *signed as u64),
        Sort::Enum(e) => {
            let mut h = hash_str(3, &e.name);
            for variant in &e.variants {
                h = hash_str(h, variant);
            }
            h
        }
    }
}

fn value_hash(value: &Value) -> u64 {
    match value {
        Value::Bool(b) => mix(1, *b as u64),
        Value::Int(i) => mix(2, *i as u64),
        Value::Enum(i) => mix(3, *i as u64),
    }
}

fn node_hash(kind: &ExprKind, sort: &Sort) -> u64 {
    let h = match kind {
        ExprKind::Const(v) => mix(11, value_hash(v)),
        ExprKind::Var(id) => mix(12, id.index() as u64),
        ExprKind::Unary(op, a) => mix(mix(13, *op as u64), a.structural_hash()),
        ExprKind::Binary(op, a, b) => mix(
            mix(mix(14, *op as u64), a.structural_hash()),
            b.structural_hash(),
        ),
        ExprKind::Ite(c, t, e) => mix(
            mix(mix(15, c.structural_hash()), t.structural_hash()),
            e.structural_hash(),
        ),
    };
    mix(h, sort_hash(sort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn interning_is_structural() {
        let a = Expr::int_val(5, 8).add(&Expr::int_val(6, 8));
        let b = Expr::int_val(5, 8).add(&Expr::int_val(6, 8));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        let c = Expr::int_val(6, 8).add(&Expr::int_val(5, 8));
        assert_ne!(a.id(), c.id());
        assert_ne!(a, c);
    }

    #[test]
    fn sorts_distinguish_nodes() {
        // Same kind shape, different sort: `0u8` vs `0u4` must not collapse.
        let a = Expr::int_val(0, 8);
        let b = Expr::int_val(0, 4);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), Expr::int_val(0, 8).id());
    }

    #[test]
    fn stats_move_monotonically() {
        let before = InternerStats::snapshot();
        // A fresh, never-before-interned node (salted with the snapshot so
        // repeated test runs within a process still miss at least once).
        let salt = (before.nodes_interned % 251) as i64;
        let e = Expr::int_val(salt, 61).add(&Expr::int_val(salt, 61));
        let _ = e.clone();
        let after = InternerStats::snapshot();
        let delta = after.since(&before);
        assert!(delta.nodes_interned >= 1, "fresh nodes must be counted");
        assert!(after.nodes_interned >= before.nodes_interned);
        assert!((0.0..=1.0).contains(&delta.hit_rate()));
    }

    #[test]
    fn structural_hash_is_cached_and_equal_for_equal_nodes() {
        let a = Expr::true_().and(&Expr::false_());
        let b = Expr::true_().and(&Expr::false_());
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(
            a.structural_hash(),
            node_hash(a.kind(), a.sort()),
            "cached hash must match a recomputation"
        );
    }
}
