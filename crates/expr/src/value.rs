//! Concrete values of the expression language.

use crate::Sort;
use std::fmt;

/// A concrete value of some [`Sort`].
///
/// Integer and enumeration values are both carried as `i64`; the owning
/// [`Sort`] determines the valid range and the wrap-around behaviour.
///
/// # Example
///
/// ```
/// use amle_expr::{Sort, Value};
///
/// let v = Value::Int(41);
/// assert_eq!(v.as_int(), Some(41));
/// assert!(Value::Bool(true).as_bool().unwrap());
/// assert!(Value::Int(200).fits(&Sort::int(8)));
/// assert!(!Value::Int(300).fits(&Sort::int(8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A boolean value.
    Bool(bool),
    /// A fixed-width integer value (interpretation given by the sort).
    Int(i64),
    /// An enumeration value, stored as the variant index.
    Enum(i64),
}

impl Value {
    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The enumeration variant index, if this is a [`Value::Enum`].
    pub fn as_enum(&self) -> Option<i64> {
        match self {
            Value::Enum(i) => Some(*i),
            _ => None,
        }
    }

    /// A uniform numeric view of the value: booleans become 0/1, integers and
    /// enumeration indices are returned as-is.
    ///
    /// This is the representation used by trace files, the simulator and the
    /// alphabet-abstraction step of the learner.
    pub fn to_i64(&self) -> i64 {
        match self {
            Value::Bool(b) => i64::from(*b),
            Value::Int(i) | Value::Enum(i) => *i,
        }
    }

    /// Builds a value of the given sort from a raw numeric representation,
    /// wrapping into the representable range.
    pub fn from_i64(sort: &Sort, raw: i64) -> Value {
        match sort {
            Sort::Bool => Value::Bool(sort.wrap(raw) != 0),
            Sort::Int { .. } => Value::Int(sort.wrap(raw)),
            Sort::Enum(_) => Value::Enum(sort.wrap(raw)),
        }
    }

    /// Returns `true` if the value is structurally of the given sort and lies
    /// within its representable range.
    pub fn fits(&self, sort: &Sort) -> bool {
        let (lo, hi) = sort.value_range();
        match (self, sort) {
            (Value::Bool(_), Sort::Bool) => true,
            (Value::Int(i), Sort::Int { .. }) => *i >= lo && *i <= hi,
            (Value::Enum(i), Sort::Enum(_)) => *i >= lo && *i <= hi,
            _ => false,
        }
    }

    /// The sort category of the value rendered as a short tag (for error
    /// messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Enum(_) => "enum",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Enum(i) => write!(f, "#{i}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Enum(2).as_enum(), Some(2));
        assert_eq!(Value::Int(7).as_enum(), None);
    }

    #[test]
    fn numeric_view_roundtrip() {
        let s = Sort::int(8);
        for raw in [0, 1, 100, 255] {
            let v = Value::from_i64(&s, raw);
            assert_eq!(v.to_i64(), raw);
        }
        assert_eq!(Value::from_i64(&s, 256).to_i64(), 0);
        assert_eq!(Value::from_i64(&Sort::Bool, 3), Value::Bool(true));
        let e = Sort::enumeration("M", ["A", "B", "C"]);
        assert_eq!(Value::from_i64(&e, 4), Value::Enum(1));
    }

    #[test]
    fn fits_checks_sort_and_range() {
        assert!(Value::Bool(false).fits(&Sort::Bool));
        assert!(!Value::Int(0).fits(&Sort::Bool));
        assert!(Value::Int(255).fits(&Sort::int(8)));
        assert!(!Value::Int(256).fits(&Sort::int(8)));
        assert!(Value::Int(-5).fits(&Sort::signed_int(4)));
        assert!(!Value::Int(-9).fits(&Sort::signed_int(4)));
        let e = Sort::enumeration("M", ["A", "B"]);
        assert!(Value::Enum(1).fits(&e));
        assert!(!Value::Enum(2).fits(&e));
        assert!(!Value::Int(1).fits(&e));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Enum(2).to_string(), "#2");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(9i64), Value::Int(9));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [
            Value::Int(3),
            Value::Bool(true),
            Value::Int(1),
            Value::Enum(0),
        ];
        vs.sort();
        assert_eq!(vs.len(), 4);
    }
}
