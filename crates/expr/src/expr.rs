//! The expression AST, constructors, evaluation and traversal.

use crate::intern::{self, ExprId};
use crate::{Sort, SortError, Valuation, Value, VarId};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation (two's complement).
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean exclusive or.
    Xor,
    /// Boolean implication.
    Implies,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Equality (any matching sorts).
    Eq,
    /// Disequality (any matching sorts).
    Ne,
    /// Strictly less than (integer sorts).
    Lt,
    /// Less than or equal (integer sorts).
    Le,
    /// Strictly greater than (integer sorts).
    Gt,
    /// Greater than or equal (integer sorts).
    Ge,
}

impl BinOp {
    /// Returns `true` for operators whose result sort is boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Implies
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
        )
    }

    /// The operator symbol used by [`std::fmt::Display`].
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Xor => "^",
            BinOp::Implies => "=>",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// The shape of one expression node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// A constant of the node's sort.
    Const(Value),
    /// A reference to a declared variable.
    Var(VarId),
    /// A unary operation.
    Unary(UnOp, Expr),
    /// A binary operation.
    Binary(BinOp, Expr, Expr),
    /// If-then-else: condition, then-branch, else-branch.
    Ite(Expr, Expr, Expr),
}

#[derive(Debug)]
pub(crate) struct ExprNode {
    /// Dense interner id; equality of ids is equality of trees.
    pub(crate) id: u32,
    /// Cached structural hash (a pure function of `kind` + `sort`).
    pub(crate) shash: u64,
    /// Cached tree size (shared nodes counted once per occurrence),
    /// saturating at `u64::MAX`.
    pub(crate) tree_size: u64,
    pub(crate) kind: ExprKind,
    pub(crate) sort: Sort,
}

/// An immutable, cheaply clonable, **hash-consed** expression.
///
/// Expressions form a DAG of reference-counted nodes managed by a
/// process-global interner: each distinct
/// `(kind, sort)` node exists exactly once, so structurally equal expressions
/// built at different sites share one allocation and one [`ExprId`]. Cloning
/// is an `Arc` clone; [`Eq`]/[`Hash`]/[`Ord`] are O(1) id/hash operations
/// rather than tree walks, which is what makes expressions cheap cache keys
/// throughout the pipeline. Constructors check sorts eagerly so that
/// downstream components (evaluation, bit-blasting) never encounter ill-typed
/// terms; they preserve the shape they are given — the canonicalising
/// rewrites live behind the explicit [`Expr::canonical`] seam so that
/// rendered predicates stay byte-for-byte stable while cache keys
/// canonicalise.
///
/// # Example
///
/// ```
/// use amle_expr::{Expr, Sort, Valuation, Value, VarSet};
///
/// let mut vars = VarSet::new();
/// let x = vars.declare("x", Sort::int(8)).unwrap();
/// let xe = Expr::var(x, Sort::int(8));
/// let pred = xe.add(&Expr::int_val(1, 8)).gt(&Expr::int_val(10, 8));
///
/// let mut v = Valuation::zeroed(&vars);
/// v.set(x, Value::Int(10));
/// assert_eq!(pred.eval(&v), Value::Bool(true));
/// ```
#[derive(Debug, Clone)]
pub struct Expr(Arc<ExprNode>);

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The cached structural hash: O(1), and — unlike the id — a pure
        // function of the tree content, so hash-based containers behave
        // identically for structurally identical key sets.
        state.write_u64(self.0.shash);
    }
}

impl PartialOrd for Expr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expr {
    /// An O(1) total order consistent with `Eq`: interning order. Suitable
    /// for ordered containers, **not** for orderings that leak into reports —
    /// ids depend on thread interleaving; use [`Expr::structural_cmp`] where
    /// the order itself must be deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.id.cmp(&other.0.id)
    }
}

impl Expr {
    pub(crate) fn new(kind: ExprKind, sort: Sort) -> Self {
        intern::intern(kind, sort)
    }

    /// Wraps a freshly allocated interner node. Only the interner calls this.
    pub(crate) fn from_node(node: ExprNode) -> Self {
        Expr(Arc::new(node))
    }

    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The boolean constant `true`.
    pub fn true_() -> Self {
        Expr::new(ExprKind::Const(Value::Bool(true)), Sort::Bool)
    }

    /// The boolean constant `false`.
    pub fn false_() -> Self {
        Expr::new(ExprKind::Const(Value::Bool(false)), Sort::Bool)
    }

    /// A boolean constant.
    pub fn bool_const(b: bool) -> Self {
        if b {
            Expr::true_()
        } else {
            Expr::false_()
        }
    }

    /// An unsigned integer constant of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the width, naming the offending value
    /// and width.
    pub fn int_val(value: i64, bits: u32) -> Self {
        Expr::constant(&Sort::int(bits), Value::Int(value)).unwrap_or_else(|_| {
            panic!(
                "unsigned constant {value} does not fit the u{bits} sort (0..={})",
                Sort::int(bits).value_range().1
            )
        })
    }

    /// A signed integer constant of the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the width, naming the offending value
    /// and width.
    pub fn signed_int_val(value: i64, bits: u32) -> Self {
        let sort = Sort::signed_int(bits);
        let (lo, hi) = sort.value_range();
        Expr::constant(&sort, Value::Int(value)).unwrap_or_else(|_| {
            panic!("signed constant {value} does not fit the i{bits} sort ({lo}..={hi})")
        })
    }

    /// An enumeration constant referring to the named variant.
    ///
    /// # Panics
    ///
    /// Panics if `sort` is not an enumeration or `variant` is not one of its
    /// variants.
    pub fn enum_val(sort: &Sort, variant: &str) -> Self {
        let idx = sort
            .variant_index(variant)
            .unwrap_or_else(|| panic!("sort {sort} has no variant named `{variant}`"));
        Expr::new(ExprKind::Const(Value::Enum(idx as i64)), sort.clone())
    }

    /// A constant of an arbitrary sort.
    ///
    /// # Errors
    ///
    /// Returns [`SortError::ConstantOutOfRange`] if the value does not fit the
    /// sort, or [`SortError::Expected`] if the value's category does not match
    /// the sort.
    pub fn constant(sort: &Sort, value: Value) -> Result<Self, SortError> {
        if !value.fits(sort) {
            return match value {
                Value::Int(v) | Value::Enum(v) => Err(SortError::ConstantOutOfRange {
                    value: v,
                    sort: sort.clone(),
                }),
                Value::Bool(_) => Err(SortError::Expected {
                    op: "const",
                    expected: "bool",
                    found: sort.clone(),
                }),
            };
        }
        Ok(Expr::new(ExprKind::Const(value), sort.clone()))
    }

    /// A reference to a declared variable of the given sort.
    ///
    /// The caller is responsible for passing the sort the variable was
    /// declared with (the `amle-system` crate provides a convenience that
    /// looks the sort up in the [`crate::VarSet`]).
    pub fn var(id: VarId, sort: Sort) -> Self {
        Expr::new(ExprKind::Var(id), sort)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The sort of this expression.
    pub fn sort(&self) -> &Sort {
        &self.0.sort
    }

    /// The top-level node shape.
    pub fn kind(&self) -> &ExprKind {
        &self.0.kind
    }

    /// The interner id of this expression: equal ids ⟺ structurally equal
    /// trees. The O(1) cache key used by the bit-blaster's memo tables and
    /// the checker's session maps.
    pub fn id(&self) -> ExprId {
        ExprId(self.0.id)
    }

    /// The cached structural hash: a deterministic pure function of the tree
    /// content (unlike the id, which depends on interning order).
    pub fn structural_hash(&self) -> u64 {
        self.0.shash
    }

    pub(crate) fn tree_size(&self) -> u64 {
        self.0.tree_size
    }

    /// A deterministic total order on expressions, consistent with `Eq`:
    /// a pure function of the two trees' contents, independent of interning
    /// order. The canonicaliser sorts commutative operand chains with this,
    /// which is what keeps canonical forms — and therefore verdict-cache
    /// behaviour — identical across runs, worker counts and thread
    /// interleavings. Cost: O(1) in the common cases (id equality or
    /// distinct structural hashes), O(tree) only on hash collisions.
    pub fn structural_cmp(&self, other: &Expr) -> Ordering {
        if self.0.id == other.0.id {
            return Ordering::Equal;
        }
        self.0
            .shash
            .cmp(&other.0.shash)
            .then_with(|| Self::structural_cmp_deep(self, other))
    }

    /// Tie-break for hash collisions: lexicographic comparison of the trees.
    fn structural_cmp_deep(a: &Expr, b: &Expr) -> Ordering {
        fn rank(kind: &ExprKind) -> u8 {
            match kind {
                ExprKind::Const(_) => 0,
                ExprKind::Var(_) => 1,
                ExprKind::Unary(..) => 2,
                ExprKind::Binary(..) => 3,
                ExprKind::Ite(..) => 4,
            }
        }
        fn sort_cmp(a: &Sort, b: &Sort) -> Ordering {
            fn key(s: &Sort) -> (u8, u32, bool, &str) {
                match s {
                    Sort::Bool => (0, 0, false, ""),
                    Sort::Int { bits, signed } => (1, *bits, *signed, ""),
                    Sort::Enum(e) => (2, e.variants.len() as u32, false, e.name.as_str()),
                }
            }
            key(a)
                .cmp(&key(b))
                .then_with(|| match (a.enum_variants(), b.enum_variants()) {
                    (Some(va), Some(vb)) => va.cmp(vb),
                    _ => Ordering::Equal,
                })
        }
        sort_cmp(a.sort(), b.sort())
            .then_with(|| rank(a.kind()).cmp(&rank(b.kind())))
            .then_with(|| match (a.kind(), b.kind()) {
                (ExprKind::Const(va), ExprKind::Const(vb)) => va.cmp(vb),
                (ExprKind::Var(ia), ExprKind::Var(ib)) => ia.cmp(ib),
                (ExprKind::Unary(opa, aa), ExprKind::Unary(opb, ab)) => (*opa as u8)
                    .cmp(&(*opb as u8))
                    .then_with(|| aa.structural_cmp(ab)),
                (ExprKind::Binary(opa, aa, ba), ExprKind::Binary(opb, ab, bb)) => (*opa as u8)
                    .cmp(&(*opb as u8))
                    .then_with(|| aa.structural_cmp(ab))
                    .then_with(|| ba.structural_cmp(bb)),
                (ExprKind::Ite(ca, ta, ea), ExprKind::Ite(cb, tb, eb)) => ca
                    .structural_cmp(cb)
                    .then_with(|| ta.structural_cmp(tb))
                    .then_with(|| ea.structural_cmp(eb)),
                _ => unreachable!("rank() ordered distinct kinds"),
            })
    }

    /// Returns the constant value if this expression is a literal constant.
    pub fn as_const(&self) -> Option<Value> {
        match self.kind() {
            ExprKind::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if this is the literal constant `true`.
    pub fn is_true(&self) -> bool {
        self.as_const() == Some(Value::Bool(true))
    }

    /// Returns `true` if this is the literal constant `false`.
    pub fn is_false(&self) -> bool {
        self.as_const() == Some(Value::Bool(false))
    }

    // ------------------------------------------------------------------
    // Fallible builders
    // ------------------------------------------------------------------

    /// Builds a boolean binary operation, checking that both operands are
    /// boolean.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] if either operand is not boolean.
    pub fn try_bool_op(op: BinOp, a: &Expr, b: &Expr) -> Result<Expr, SortError> {
        debug_assert!(matches!(
            op,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Implies
        ));
        for e in [a, b] {
            if !e.sort().is_bool() {
                return Err(SortError::Expected {
                    op: op.symbol(),
                    expected: "bool",
                    found: e.sort().clone(),
                });
            }
        }
        Ok(Expr::new(
            ExprKind::Binary(op, a.clone(), b.clone()),
            Sort::Bool,
        ))
    }

    /// Builds an arithmetic binary operation, checking that both operands are
    /// integers of the same sort.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] on non-integer or mismatched operands.
    pub fn try_arith_op(op: BinOp, a: &Expr, b: &Expr) -> Result<Expr, SortError> {
        debug_assert!(matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul));
        for e in [a, b] {
            if !e.sort().is_int() {
                return Err(SortError::Expected {
                    op: op.symbol(),
                    expected: "int",
                    found: e.sort().clone(),
                });
            }
        }
        if !a.sort().compatible(b.sort()) {
            return Err(SortError::Mismatch {
                op: op.symbol(),
                left: a.sort().clone(),
                right: b.sort().clone(),
            });
        }
        Ok(Expr::new(
            ExprKind::Binary(op, a.clone(), b.clone()),
            a.sort().clone(),
        ))
    }

    /// Builds a comparison, checking operand sorts.
    ///
    /// Equality and disequality accept any pair of matching sorts; the
    /// ordering comparisons require integer (or enumeration) operands.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] on mismatched or unsupported operand sorts.
    pub fn try_cmp_op(op: BinOp, a: &Expr, b: &Expr) -> Result<Expr, SortError> {
        debug_assert!(matches!(
            op,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        ));
        if !a.sort().compatible(b.sort()) {
            return Err(SortError::Mismatch {
                op: op.symbol(),
                left: a.sort().clone(),
                right: b.sort().clone(),
            });
        }
        if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) && a.sort().is_bool() {
            return Err(SortError::Expected {
                op: op.symbol(),
                expected: "int or enum",
                found: a.sort().clone(),
            });
        }
        Ok(Expr::new(
            ExprKind::Binary(op, a.clone(), b.clone()),
            Sort::Bool,
        ))
    }

    /// Builds an if-then-else expression.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] if the condition is not boolean or the branches
    /// have different sorts.
    pub fn try_ite(cond: &Expr, then: &Expr, els: &Expr) -> Result<Expr, SortError> {
        if !cond.sort().is_bool() {
            return Err(SortError::Expected {
                op: "ite",
                expected: "bool",
                found: cond.sort().clone(),
            });
        }
        if !then.sort().compatible(els.sort()) {
            return Err(SortError::Mismatch {
                op: "ite",
                left: then.sort().clone(),
                right: els.sort().clone(),
            });
        }
        Ok(Expr::new(
            ExprKind::Ite(cond.clone(), then.clone(), els.clone()),
            then.sort().clone(),
        ))
    }

    // ------------------------------------------------------------------
    // Convenience (panicking) builders
    // ------------------------------------------------------------------

    /// Boolean negation.
    ///
    /// # Panics
    ///
    /// Panics if the operand is not boolean.
    pub fn not(&self) -> Expr {
        assert!(
            self.sort().is_bool(),
            "operand of `!` must be bool, found {}",
            self.sort()
        );
        Expr::new(ExprKind::Unary(UnOp::Not, self.clone()), Sort::Bool)
    }

    /// Arithmetic negation (two's complement wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if the operand is not an integer.
    pub fn neg(&self) -> Expr {
        assert!(
            self.sort().is_int(),
            "operand of unary `-` must be int, found {}",
            self.sort()
        );
        Expr::new(
            ExprKind::Unary(UnOp::Neg, self.clone()),
            self.sort().clone(),
        )
    }

    /// Boolean conjunction. See [`Expr::try_bool_op`] for the fallible form.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not boolean.
    pub fn and(&self, other: &Expr) -> Expr {
        Expr::try_bool_op(BinOp::And, self, other).expect("ill-sorted conjunction")
    }

    /// Boolean disjunction.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not boolean.
    pub fn or(&self, other: &Expr) -> Expr {
        Expr::try_bool_op(BinOp::Or, self, other).expect("ill-sorted disjunction")
    }

    /// Boolean exclusive or.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not boolean.
    pub fn xor(&self, other: &Expr) -> Expr {
        Expr::try_bool_op(BinOp::Xor, self, other).expect("ill-sorted xor")
    }

    /// Boolean implication.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not boolean.
    pub fn implies(&self, other: &Expr) -> Expr {
        Expr::try_bool_op(BinOp::Implies, self, other).expect("ill-sorted implication")
    }

    /// Wrapping addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not integers of the same sort.
    pub fn add(&self, other: &Expr) -> Expr {
        Expr::try_arith_op(BinOp::Add, self, other).expect("ill-sorted addition")
    }

    /// Wrapping subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not integers of the same sort.
    pub fn sub(&self, other: &Expr) -> Expr {
        Expr::try_arith_op(BinOp::Sub, self, other).expect("ill-sorted subtraction")
    }

    /// Wrapping multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not integers of the same sort.
    pub fn mul(&self, other: &Expr) -> Expr {
        Expr::try_arith_op(BinOp::Mul, self, other).expect("ill-sorted multiplication")
    }

    /// Equality.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different sorts.
    pub fn eq(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Eq, self, other).expect("ill-sorted equality")
    }

    /// Disequality.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different sorts.
    pub fn ne(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Ne, self, other).expect("ill-sorted disequality")
    }

    /// Strictly-less-than comparison.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not comparable.
    pub fn lt(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Lt, self, other).expect("ill-sorted comparison")
    }

    /// Less-than-or-equal comparison.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not comparable.
    pub fn le(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Le, self, other).expect("ill-sorted comparison")
    }

    /// Strictly-greater-than comparison.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not comparable.
    pub fn gt(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Gt, self, other).expect("ill-sorted comparison")
    }

    /// Greater-than-or-equal comparison.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not comparable.
    pub fn ge(&self, other: &Expr) -> Expr {
        Expr::try_cmp_op(BinOp::Ge, self, other).expect("ill-sorted comparison")
    }

    /// If-then-else.
    ///
    /// # Panics
    ///
    /// Panics if the condition is not boolean or the branches differ in sort.
    pub fn ite(&self, then: &Expr, els: &Expr) -> Expr {
        Expr::try_ite(self, then, els).expect("ill-sorted if-then-else")
    }

    /// Conjunction of an arbitrary number of boolean expressions.
    ///
    /// The empty conjunction is `true`.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not boolean.
    pub fn and_all<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::true_(),
            Some(first) => it.fold(first, |acc, e| acc.and(&e)),
        }
    }

    /// Disjunction of an arbitrary number of boolean expressions.
    ///
    /// The empty disjunction is `false`.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not boolean.
    pub fn or_all<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::false_(),
            Some(first) => it.fold(first, |acc, e| acc.or(&e)),
        }
    }

    // ------------------------------------------------------------------
    // Evaluation and traversal
    // ------------------------------------------------------------------

    /// Evaluates the expression under a valuation.
    ///
    /// Arithmetic wraps around according to the expression's sort, mirroring
    /// the fixed-width semantics used by the bit-blaster.
    ///
    /// # Panics
    ///
    /// Panics if the valuation does not cover a referenced variable or if a
    /// variable's stored value does not match the sort it is used with (both
    /// indicate that the expression and valuation come from different
    /// [`crate::VarSet`]s).
    pub fn eval(&self, valuation: &Valuation) -> Value {
        match self.kind() {
            ExprKind::Const(v) => *v,
            ExprKind::Var(id) => valuation.value(*id),
            ExprKind::Unary(op, a) => {
                let av = a.eval(valuation);
                match op {
                    UnOp::Not => Value::Bool(!av.as_bool().expect("`!` applied to non-bool")),
                    UnOp::Neg => {
                        let v = av.as_int().expect("unary `-` applied to non-int");
                        Value::Int(self.sort().wrap(-v))
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let av = a.eval(valuation);
                let bv = b.eval(valuation);
                match op {
                    BinOp::And => Value::Bool(
                        av.as_bool().expect("bool operand") && bv.as_bool().expect("bool operand"),
                    ),
                    BinOp::Or => Value::Bool(
                        av.as_bool().expect("bool operand") || bv.as_bool().expect("bool operand"),
                    ),
                    BinOp::Xor => Value::Bool(
                        av.as_bool().expect("bool operand") ^ bv.as_bool().expect("bool operand"),
                    ),
                    BinOp::Implies => Value::Bool(
                        !av.as_bool().expect("bool operand") || bv.as_bool().expect("bool operand"),
                    ),
                    BinOp::Add => Value::Int(self.sort().wrap(
                        av.as_int().expect("int operand") + bv.as_int().expect("int operand"),
                    )),
                    BinOp::Sub => Value::Int(self.sort().wrap(
                        av.as_int().expect("int operand") - bv.as_int().expect("int operand"),
                    )),
                    BinOp::Mul => Value::Int(
                        self.sort().wrap(
                            av.as_int()
                                .expect("int operand")
                                .wrapping_mul(bv.as_int().expect("int operand")),
                        ),
                    ),
                    BinOp::Eq => Value::Bool(av == bv),
                    BinOp::Ne => Value::Bool(av != bv),
                    BinOp::Lt => Value::Bool(av.to_i64() < bv.to_i64()),
                    BinOp::Le => Value::Bool(av.to_i64() <= bv.to_i64()),
                    BinOp::Gt => Value::Bool(av.to_i64() > bv.to_i64()),
                    BinOp::Ge => Value::Bool(av.to_i64() >= bv.to_i64()),
                }
            }
            ExprKind::Ite(c, t, e) => {
                if c.eval(valuation).as_bool().expect("bool condition") {
                    t.eval(valuation)
                } else {
                    e.eval(valuation)
                }
            }
        }
    }

    /// Evaluates a boolean expression under a valuation.
    ///
    /// # Panics
    ///
    /// Panics if the expression is not boolean (see [`Expr::eval`] for the
    /// other panic conditions).
    pub fn eval_bool(&self, valuation: &Valuation) -> bool {
        self.eval(valuation)
            .as_bool()
            .expect("eval_bool called on a non-boolean expression")
    }

    /// The set of variables referenced by this expression.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self.kind() {
            ExprKind::Const(_) => {}
            ExprKind::Var(id) => {
                out.insert(*id);
            }
            ExprKind::Unary(_, a) => a.collect_vars(out),
            ExprKind::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            ExprKind::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Replaces variable references according to `map`, leaving unmapped
    /// variables untouched.
    ///
    /// Substituted expressions must have the same sort as the variable they
    /// replace; this is asserted.
    pub fn substitute(&self, map: &HashMap<VarId, Expr>) -> Expr {
        match self.kind() {
            ExprKind::Const(_) => self.clone(),
            ExprKind::Var(id) => match map.get(id) {
                Some(repl) => {
                    assert!(
                        repl.sort().compatible(self.sort()),
                        "substitution for {id} changes sort from {} to {}",
                        self.sort(),
                        repl.sort()
                    );
                    repl.clone()
                }
                None => self.clone(),
            },
            ExprKind::Unary(op, a) => {
                Expr::new(ExprKind::Unary(*op, a.substitute(map)), self.sort().clone())
            }
            ExprKind::Binary(op, a, b) => Expr::new(
                ExprKind::Binary(*op, a.substitute(map), b.substitute(map)),
                self.sort().clone(),
            ),
            ExprKind::Ite(c, t, e) => Expr::new(
                ExprKind::Ite(c.substitute(map), t.substitute(map), e.substitute(map)),
                self.sort().clone(),
            ),
        }
    }

    /// Number of nodes in the expression *tree* (counting shared nodes once
    /// per occurrence). Used as a crude size measure in tests and reports.
    ///
    /// The count is precomputed bottom-up at interning time from the
    /// children's cached counts, so reading it is O(1) even on heavily shared
    /// DAGs — the naive recursion it replaces re-walked every shared subtree
    /// once per occurrence, which is exponential time on expressions like a
    /// 60-deep `e = e + e` chain. On such inputs the tree count saturates at
    /// `usize::MAX`; use [`Expr::dag_size`] when the number of *distinct*
    /// nodes is the honest measure.
    pub fn node_count(&self) -> usize {
        usize::try_from(self.0.tree_size).unwrap_or(usize::MAX)
    }

    /// Number of **distinct** nodes in the expression DAG — the actual memory
    /// and traversal footprint, which is what should feed reports and work
    /// budgets (the tree-shaped [`Expr::node_count`] overstates shared
    /// expressions exponentially). O(distinct nodes).
    pub fn dag_size(&self) -> usize {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<Expr> = vec![self.clone()];
        while let Some(e) = stack.pop() {
            if !seen.insert(e.0.id) {
                continue;
            }
            match e.kind() {
                ExprKind::Const(_) | ExprKind::Var(_) => {}
                ExprKind::Unary(_, a) => stack.push(a.clone()),
                ExprKind::Binary(_, a, b) => {
                    stack.push(a.clone());
                    stack.push(b.clone());
                }
                ExprKind::Ite(c, t, e) => {
                    stack.push(c.clone());
                    stack.push(t.clone());
                    stack.push(e.clone());
                }
            }
        }
        seen.len()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Const(v) => match (self.sort(), v) {
                (Sort::Enum(e), Value::Enum(idx)) => match e.variants.get(*idx as usize) {
                    Some(name) => write!(f, "{name}"),
                    None => write!(f, "{v}"),
                },
                _ => write!(f, "{v}"),
            },
            ExprKind::Var(id) => write!(f, "{id}"),
            ExprKind::Unary(UnOp::Not, a) => write!(f, "!({a})"),
            ExprKind::Unary(UnOp::Neg, a) => write!(f, "-({a})"),
            ExprKind::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ExprKind::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    fn setup() -> (VarSet, Valuation, Expr, Expr, Expr) {
        let mut vars = VarSet::new();
        let x = vars.declare("x", Sort::int(8)).unwrap();
        let y = vars.declare("y", Sort::int(8)).unwrap();
        let b = vars.declare("b", Sort::Bool).unwrap();
        let val = Valuation::zeroed(&vars);
        (
            vars,
            val,
            Expr::var(x, Sort::int(8)),
            Expr::var(y, Sort::int(8)),
            Expr::var(b, Sort::Bool),
        )
    }

    #[test]
    fn constants() {
        assert!(Expr::true_().is_true());
        assert!(Expr::false_().is_false());
        assert_eq!(Expr::int_val(5, 8).as_const(), Some(Value::Int(5)));
        assert_eq!(Expr::signed_int_val(-5, 8).as_const(), Some(Value::Int(-5)));
        assert!(Expr::constant(&Sort::int(4), Value::Int(20)).is_err());
        assert!(Expr::constant(&Sort::int(4), Value::Bool(true)).is_err());
    }

    #[test]
    fn enum_constants() {
        let mode = Sort::enumeration("Mode", ["Off", "On"]);
        let on = Expr::enum_val(&mode, "On");
        assert_eq!(on.as_const(), Some(Value::Enum(1)));
        assert_eq!(on.to_string(), "On");
    }

    #[test]
    #[should_panic(expected = "no variant named")]
    fn enum_constant_unknown_variant() {
        let mode = Sort::enumeration("Mode", ["Off", "On"]);
        let _ = Expr::enum_val(&mode, "Broken");
    }

    #[test]
    fn arithmetic_wraps() {
        let (_, val, x, _, _) = setup();
        let e = x.add(&Expr::int_val(255, 8)).add(&Expr::int_val(2, 8));
        // x = 0, so 0 + 255 + 2 wraps to 1 in u8.
        assert_eq!(e.eval(&val), Value::Int(1));
        let m = Expr::int_val(16, 8).mul(&Expr::int_val(16, 8));
        let zero = Valuation::from_values(&VarSet::new(), vec![]);
        assert_eq!(m.eval(&zero), Value::Int(0));
    }

    #[test]
    fn signed_arithmetic() {
        let e = Expr::signed_int_val(-3, 8).sub(&Expr::signed_int_val(126, 8));
        let empty_vars = VarSet::new();
        let val = Valuation::zeroed(&empty_vars);
        assert_eq!(e.eval(&val), Value::Int(127));
        let n = Expr::signed_int_val(-128, 8).neg();
        assert_eq!(n.eval(&val), Value::Int(-128));
    }

    #[test]
    fn boolean_operators() {
        let (_, mut val, _, _, b) = setup();
        let t = Expr::true_();
        assert!(t.and(&b.not()).eval_bool(&val));
        assert!(!t.and(&b).eval_bool(&val));
        assert!(t.or(&b).eval_bool(&val));
        assert!(b.implies(&Expr::false_()).eval_bool(&val));
        assert!(t.xor(&b).eval_bool(&val));
        val.set(crate::VarId::from_index(2), Value::Bool(true));
        assert!(!b.implies(&Expr::false_()).eval_bool(&val));
    }

    #[test]
    fn comparisons() {
        let (_, mut val, x, y, _) = setup();
        val.set(crate::VarId::from_index(0), Value::Int(4));
        val.set(crate::VarId::from_index(1), Value::Int(7));
        assert!(x.lt(&y).eval_bool(&val));
        assert!(x.le(&y).eval_bool(&val));
        assert!(!x.gt(&y).eval_bool(&val));
        assert!(!x.ge(&y).eval_bool(&val));
        assert!(x.ne(&y).eval_bool(&val));
        assert!(!x.eq(&y).eval_bool(&val));
        assert!(x.eq(&Expr::int_val(4, 8)).eval_bool(&val));
    }

    #[test]
    fn ite() {
        let (_, mut val, x, y, b) = setup();
        let e = b.ite(&x, &y);
        val.set(crate::VarId::from_index(0), Value::Int(10));
        val.set(crate::VarId::from_index(1), Value::Int(20));
        assert_eq!(e.eval(&val), Value::Int(20));
        val.set(crate::VarId::from_index(2), Value::Bool(true));
        assert_eq!(e.eval(&val), Value::Int(10));
    }

    #[test]
    fn sort_errors() {
        let (_, _, x, _, b) = setup();
        assert!(Expr::try_bool_op(BinOp::And, &x, &b).is_err());
        assert!(Expr::try_arith_op(BinOp::Add, &b, &b).is_err());
        assert!(Expr::try_cmp_op(BinOp::Eq, &x, &b).is_err());
        assert!(Expr::try_cmp_op(BinOp::Lt, &b, &b).is_err());
        assert!(Expr::try_ite(&x, &x, &x).is_err());
        assert!(Expr::try_ite(&b, &x, &b).is_err());
        let y9 = Expr::int_val(1, 9);
        assert!(Expr::try_arith_op(BinOp::Add, &x, &y9).is_err());
    }

    #[test]
    fn and_all_or_all() {
        let (_, val, _, _, b) = setup();
        assert!(Expr::and_all(std::iter::empty()).eval_bool(&val));
        assert!(!Expr::or_all(std::iter::empty()).eval_bool(&val));
        let conj = Expr::and_all([Expr::true_(), b.not(), Expr::true_()]);
        assert!(conj.eval_bool(&val));
        let disj = Expr::or_all([Expr::false_(), b.clone()]);
        assert!(!disj.eval_bool(&val));
    }

    #[test]
    fn free_vars_and_substitution() {
        let (_, val, x, y, b) = setup();
        let e = b.ite(&x.add(&y), &x);
        let fv = e.free_vars();
        assert_eq!(fv.len(), 3);

        let mut map = HashMap::new();
        map.insert(crate::VarId::from_index(1), Expr::int_val(9, 8));
        let e2 = e.substitute(&map);
        assert_eq!(e2.free_vars().len(), 2);
        let mut v = val.clone();
        v.set(crate::VarId::from_index(2), Value::Bool(true));
        v.set(crate::VarId::from_index(0), Value::Int(1));
        assert_eq!(e2.eval(&v), Value::Int(10));
    }

    #[test]
    #[should_panic(expected = "changes sort")]
    fn substitution_sort_checked() {
        let (_, _, x, _, _) = setup();
        let mut map = HashMap::new();
        map.insert(crate::VarId::from_index(0), Expr::true_());
        let _ = x.substitute(&map);
    }

    #[test]
    fn display_round_trips_visually() {
        let (_, _, x, y, b) = setup();
        let e = b.and(&x.gt(&y));
        assert_eq!(e.to_string(), "(x2 && (x0 > x1))");
        assert_eq!(x.add(&y).neg().to_string(), "-((x0 + x1))");
        assert_eq!(b.not().to_string(), "!(x2)");
        assert_eq!(b.ite(&x, &y).to_string(), "(if x2 then x0 else x1)");
    }

    #[test]
    fn node_count() {
        let (_, _, x, y, _) = setup();
        assert_eq!(x.node_count(), 1);
        assert_eq!(x.add(&y).node_count(), 3);
        assert_eq!(x.add(&y).eq(&x).node_count(), 5);
    }

    /// The regression the `dag_size` satellite pins: a 64-deep `e = e + e`
    /// doubling chain has 2^65 - 1 tree nodes. The old recursive
    /// `node_count` walked them all (practically hanging); now the tree
    /// count is a saturating O(1) read and `dag_size` reports the honest
    /// footprint.
    #[test]
    fn node_count_is_safe_on_exponentially_shared_dags() {
        let (_, _, x, _, _) = setup();
        let mut e = x;
        for _ in 0..64 {
            e = e.add(&e);
        }
        assert_eq!(e.node_count(), usize::MAX, "tree count saturates");
        assert_eq!(e.dag_size(), 65, "one variable + 64 adders");
    }

    #[test]
    fn dag_size_counts_distinct_nodes() {
        let (_, _, x, y, _) = setup();
        let sum = x.add(&y);
        // (x + y) == (x + y): 5 tree occurrences, 4 distinct nodes.
        let e = sum.eq(&sum);
        assert_eq!(e.node_count(), 7);
        assert_eq!(e.dag_size(), 4);
        assert_eq!(x.dag_size(), 1);
    }

    #[test]
    fn exprs_are_cheap_to_clone_and_hash() {
        use std::collections::HashSet;
        let (_, _, x, y, _) = setup();
        let e1 = x.add(&y);
        let e2 = e1.clone();
        let mut set = HashSet::new();
        set.insert(e1);
        assert!(set.contains(&e2));
    }

    #[test]
    fn equality_is_id_equality() {
        let (_, _, x, y, _) = setup();
        let a = x.add(&y).gt(&x);
        let b = x.add(&y).gt(&x);
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.structural_cmp(&b), std::cmp::Ordering::Equal);
        let c = y.add(&x).gt(&x);
        assert_ne!(a, c);
        assert_ne!(a.id(), c.id());
        assert_ne!(a.structural_cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn structural_cmp_is_a_deterministic_total_order() {
        let (_, _, x, y, b) = setup();
        let exprs = [
            Expr::true_(),
            x.clone(),
            y.clone(),
            b.not(),
            x.add(&y),
            x.lt(&y),
            b.ite(&x, &y).eq(&x),
        ];
        for a in &exprs {
            for c in &exprs {
                let ab = a.structural_cmp(c);
                assert_eq!(ab, c.structural_cmp(a).reverse(), "antisymmetry");
                assert_eq!(
                    ab == std::cmp::Ordering::Equal,
                    a == c,
                    "consistency with Eq"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsigned constant 300 does not fit the u8 sort")]
    fn int_val_panic_names_value_and_width() {
        let _ = Expr::int_val(300, 8);
    }

    #[test]
    #[should_panic(expected = "signed constant -129 does not fit the i8 sort (-128..=127)")]
    fn signed_int_val_panic_names_value_and_width() {
        let _ = Expr::signed_int_val(-129, 8);
    }

    #[test]
    #[should_panic(expected = "signed constant 128 does not fit the i8 sort")]
    fn signed_int_val_panic_fires_for_positive_overflow_too() {
        let _ = Expr::signed_int_val(128, 8);
    }
}
