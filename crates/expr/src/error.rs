//! Error types of the expression layer.

use crate::Sort;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing ill-sorted expressions or declaring
/// conflicting variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// Two operands of a binary operation have incompatible sorts.
    Mismatch {
        /// Name of the operation being constructed.
        op: &'static str,
        /// Sort of the left operand.
        left: Sort,
        /// Sort of the right operand.
        right: Sort,
    },
    /// An operand has the wrong sort category for the operation.
    Expected {
        /// Name of the operation being constructed.
        op: &'static str,
        /// Humane description of what was expected (e.g. "bool", "int").
        expected: &'static str,
        /// The sort that was actually supplied.
        found: Sort,
    },
    /// A variable name was declared twice in the same [`crate::VarSet`].
    DuplicateVariable {
        /// The offending variable name.
        name: String,
    },
    /// A constant does not fit the sort it was declared with.
    ConstantOutOfRange {
        /// The raw constant.
        value: i64,
        /// The target sort.
        sort: Sort,
    },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::Mismatch { op, left, right } => {
                write!(
                    f,
                    "operands of `{op}` have incompatible sorts {left} and {right}"
                )
            }
            SortError::Expected {
                op,
                expected,
                found,
            } => {
                write!(f, "operand of `{op}` must be {expected}, found {found}")
            }
            SortError::DuplicateVariable { name } => {
                write!(f, "variable `{name}` is already declared")
            }
            SortError::ConstantOutOfRange { value, sort } => {
                write!(f, "constant {value} does not fit sort {sort}")
            }
        }
    }
}

impl Error for SortError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = SortError::Mismatch {
            op: "add",
            left: Sort::int(8),
            right: Sort::Bool,
        };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("u8"));
        assert!(msg.contains("bool"));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let e = SortError::Expected {
            op: "and",
            expected: "bool",
            found: Sort::int(4),
        };
        assert!(e.to_string().contains("bool"));

        let e = SortError::ConstantOutOfRange {
            value: 300,
            sort: Sort::int(8),
        };
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<SortError>();
    }
}
