//! The canonicalisation seam: semantics-preserving rewriting of expressions
//! into a normal form, memoised per interned node.
//!
//! [`Expr::canonical`] maps every expression to a semantically equivalent
//! representative chosen so that *syntactically different but semantically
//! converging* constructions collapse onto one interned node:
//!
//! * constant folding (closed subtrees evaluate to their constant);
//! * neutral / absorbing element elimination (`x && true → x`,
//!   `x || true → true`, `x + 0 → x`, `x * 0 → 0`, `x * 1 → x`, …);
//! * double negation (`!!x → x`, `-(-x) → x` under wrap-around semantics);
//! * reflexive comparisons (`x == x → true`, `x != x → false`,
//!   `x <= x → true`, `x < x → false`, `x - x → 0`, `x => x → true`);
//! * commutative `&&`/`||` chains are flattened, deduplicated and sorted by
//!   the deterministic [`Expr::structural_cmp`] order (commutative binary
//!   pairs — `+`, `*`, `^`, `==`, `!=` — are sorted likewise);
//! * complementary literals collapse whole chains (`x && !x && … → false`,
//!   `x || !x || … → true`), with negated comparisons recognised through the
//!   operator flips below;
//! * negated comparisons flip their operator (`!(a < b) → b <= a`,
//!   `!(a == b) → a != b`), and `>`/`>=` swap operands into `<`/`<=`, so
//!   canonical forms use only the `<`, `<=`, `==`, `!=` comparison shapes;
//! * additive/multiplicative chains flatten, sort, and fold their constants
//!   into one trailing constant (`(x + 1) + (y + 2) → (x + y) + 3`),
//!   `a - const` joins the additive chain and `0 - b → -b`, and an `==`/`!=`
//!   against a constant pulls a trailing chain constant (or a negation)
//!   across (`x + 3 == 5 → x == 2`) — all applied only where the expression
//!   DAG does not grow;
//! * ite-lifting: `ite` over a negated condition swaps its branches,
//!   boolean-branch `ite`s collapse into `&&`/`||` chains
//!   (`ite(c, t, false) → c && t`), and a binary operator applied to an
//!   `ite` with constant branches and a constant folds into the branches
//!   (`ite(c, 1, 0) == 1 → c`).
//!
//! **Why a seam and not smart constructors?** Rendered output — learned edge
//! predicates, extracted invariants, semantic fingerprints — must stay
//! byte-for-byte stable across refactors, and the differential harness pins
//! it. Constructors therefore preserve the shape they are given; consumers
//! that only care about semantic identity (the condition planner's
//! verdict-cache keys, the checkers' session memo keys) call `canonical()`
//! explicitly. Canonical forms are memoised in the interner, so repeated
//! canonicalisation of the predicates the refinement loop rebuilds every
//! iteration is a per-node O(1) lookup.
//!
//! Canonicalisation is **deterministic** (operand order comes from the
//! content-only structural order, never from interner ids), **idempotent**
//! (`canonical(canonical(e)) == canonical(e)`) and **evaluation-equivalent**
//! (`canonical(e).eval(v) == e.eval(v)` for every valuation) — all three are
//! pinned by property tests in this crate.

use crate::intern::{canonical_memo_get, canonical_memo_insert};
use crate::{BinOp, Expr, ExprKind, Sort, UnOp, Valuation, Value, VarSet};

impl Expr {
    /// The canonical representative of this expression's semantic equivalence
    /// class reachable by the local rewrites documented on the canonical
    /// module. Semantics, sort and free variables (up to rewrites that
    /// eliminate dead subtrees) are preserved; the *shape* is normalised, so
    /// two predicates that differ only syntactically — e.g. the same
    /// disjunction of outgoing edge predicates assembled in a different
    /// order by a refined hypothesis — intern to the same node and therefore
    /// make equal cache keys.
    pub fn canonical(&self) -> Expr {
        let id = self.id().0;
        if let Some(hit) = canonical_memo_get(id) {
            return hit;
        }
        let (result, rewrote) = rewrite(self);
        debug_assert!(
            result.sort() == self.sort(),
            "canonicalisation changed the sort from {} to {}",
            self.sort(),
            result.sort()
        );
        canonical_memo_insert(id, result.clone(), rewrote);
        result
    }
}

/// Canonicalises one node given canonical children, reporting whether any
/// *local* rule fired (a change beyond replacing children by their canonical
/// forms — child rewrites are counted at the child).
fn rewrite(e: &Expr) -> (Expr, bool) {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => (e.clone(), false),
        ExprKind::Unary(op, a) => {
            let ca = a.canonical();
            let result = match op {
                UnOp::Not => canonical_not(&ca),
                UnOp::Neg => canonical_neg(&ca, e.sort()),
            };
            let plain = matches!(result.kind(), ExprKind::Unary(o, x) if o == op && *x == ca);
            (result, !plain)
        }
        ExprKind::Binary(op, a, b) => {
            let ca = a.canonical();
            let cb = b.canonical();
            let result = canonical_binary(*op, &ca, &cb, e.sort());
            let plain = matches!(
                result.kind(),
                ExprKind::Binary(o, x, y) if o == op && *x == ca && *y == cb
            );
            (result, !plain)
        }
        ExprKind::Ite(c, t, els) => {
            let cc = c.canonical();
            let ct = t.canonical();
            let ce = els.canonical();
            let result = canonical_ite(&cc, &ct, &ce, e.sort());
            let plain = matches!(
                result.kind(),
                ExprKind::Ite(x, y, z) if *x == cc && *y == ct && *z == ce
            );
            (result, !plain)
        }
    }
}

/// Canonicalises an `ite` over canonical children: constant/equal-branch
/// collapse, branch swap under a negated condition, and boolean-branch
/// lifting into `&&`/`||` chains.
fn canonical_ite(c: &Expr, t: &Expr, e: &Expr, sort: &Sort) -> Expr {
    if c.is_true() {
        return t.clone();
    }
    if c.is_false() {
        return e.clone();
    }
    if t == e {
        return t.clone();
    }
    if let ExprKind::Unary(UnOp::Not, inner) = c.kind() {
        return canonical_ite(inner, e, t, sort);
    }
    if sort.is_bool() {
        match (t.as_const(), e.as_const()) {
            (Some(Value::Bool(true)), Some(Value::Bool(false))) => return c.clone(),
            (Some(Value::Bool(false)), Some(Value::Bool(true))) => return canonical_not(c),
            (Some(Value::Bool(true)), None) => return bool_chain(BinOp::Or, c, e, false),
            (Some(Value::Bool(false)), None) => {
                let nc = canonical_not(c);
                return bool_chain(BinOp::And, &nc, e, true);
            }
            (None, Some(Value::Bool(true))) => {
                let nc = canonical_not(c);
                return bool_chain(BinOp::Or, &nc, t, false);
            }
            (None, Some(Value::Bool(false))) => return bool_chain(BinOp::And, c, t, true),
            _ => {}
        }
    }
    Expr::new(ExprKind::Ite(c.clone(), t.clone(), e.clone()), sort.clone())
}

fn canonical_not(a: &Expr) -> Expr {
    match a.kind() {
        ExprKind::Const(Value::Bool(b)) => Expr::bool_const(!b),
        ExprKind::Unary(UnOp::Not, inner) => inner.clone(),
        // Negated comparisons flip to the complementary operator of the
        // total order, so canonical forms never nest a comparison under a
        // negation — complementary-literal detection in chains is then a
        // plain node-identity check.
        ExprKind::Binary(BinOp::Eq, x, y) => {
            raw_binary(BinOp::Ne, x.clone(), y.clone(), &Sort::Bool)
        }
        ExprKind::Binary(BinOp::Ne, x, y) => {
            raw_binary(BinOp::Eq, x.clone(), y.clone(), &Sort::Bool)
        }
        ExprKind::Binary(BinOp::Lt, x, y) => {
            raw_binary(BinOp::Le, y.clone(), x.clone(), &Sort::Bool)
        }
        ExprKind::Binary(BinOp::Le, x, y) => {
            raw_binary(BinOp::Lt, y.clone(), x.clone(), &Sort::Bool)
        }
        ExprKind::Binary(BinOp::Gt, x, y) => {
            raw_binary(BinOp::Le, x.clone(), y.clone(), &Sort::Bool)
        }
        ExprKind::Binary(BinOp::Ge, x, y) => {
            raw_binary(BinOp::Lt, x.clone(), y.clone(), &Sort::Bool)
        }
        _ => Expr::new(ExprKind::Unary(UnOp::Not, a.clone()), Sort::Bool),
    }
}

fn canonical_neg(a: &Expr, sort: &Sort) -> Expr {
    match a.kind() {
        ExprKind::Const(Value::Int(v)) => {
            Expr::constant(sort, Value::Int(sort.wrap(-v))).expect("wrapped constant fits")
        }
        // Arithmetic negation is an involution under two's-complement
        // wrap-around (including the minimum value, which negates to itself).
        ExprKind::Unary(UnOp::Neg, inner) => inner.clone(),
        _ => Expr::new(ExprKind::Unary(UnOp::Neg, a.clone()), sort.clone()),
    }
}

/// Folds a fully constant binary node by evaluating it (both operands are
/// constants, so the empty valuation suffices).
fn fold_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    let raw = raw_binary(op, a.clone(), b.clone(), sort);
    let empty = VarSet::new();
    let folded = raw.eval(&Valuation::zeroed(&empty));
    Expr::constant(sort, folded).expect("folded constant fits its sort")
}

/// Builds the node without further rewriting (children are already
/// canonical and the operand sorts were validated when the original
/// expression was constructed).
fn raw_binary(op: BinOp, a: Expr, b: Expr, sort: &Sort) -> Expr {
    Expr::new(ExprKind::Binary(op, a, b), sort.clone())
}

/// Builds the commutative pair in structural order.
fn sorted_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    if a.structural_cmp(b) <= std::cmp::Ordering::Equal {
        raw_binary(op, a.clone(), b.clone(), sort)
    } else {
        raw_binary(op, b.clone(), a.clone(), sort)
    }
}

fn canonical_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    if a.as_const().is_some() && b.as_const().is_some() {
        return fold_binary(op, a, b, sort);
    }
    if let Some(lifted) = lift_const_ite(op, a, b, sort) {
        return lifted;
    }
    match op {
        BinOp::And => bool_chain(BinOp::And, a, b, true),
        BinOp::Or => bool_chain(BinOp::Or, a, b, false),
        BinOp::Xor => {
            if a == b {
                return Expr::false_();
            }
            if a.is_false() {
                return b.clone();
            }
            if b.is_false() {
                return a.clone();
            }
            if a.is_true() {
                return canonical_not(b);
            }
            if b.is_true() {
                return canonical_not(a);
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Implies => {
            if a == b || a.is_false() || b.is_true() {
                return Expr::true_();
            }
            if a.is_true() {
                return b.clone();
            }
            if b.is_false() {
                return canonical_not(a);
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Eq => {
            if a == b {
                return Expr::true_();
            }
            if let Some(isolated) = isolate_constant(op, a, b) {
                return isolated;
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Ne => {
            if a == b {
                return Expr::false_();
            }
            if let Some(isolated) = isolate_constant(op, a, b) {
                return isolated;
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Le => {
            if a == b {
                return Expr::true_();
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        // `a >= b` is `b <= a`: canonical forms use only `<`/`<=`.
        BinOp::Ge => {
            if a == b {
                return Expr::true_();
            }
            raw_binary(BinOp::Le, b.clone(), a.clone(), sort)
        }
        BinOp::Lt => {
            if a == b {
                return Expr::false_();
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Gt => {
            if a == b {
                return Expr::false_();
            }
            raw_binary(BinOp::Lt, b.clone(), a.clone(), sort)
        }
        BinOp::Add | BinOp::Mul => arith_chain(op, a, b, sort),
        BinOp::Sub => {
            if a == b {
                return Expr::constant(sort, Value::Int(0)).expect("zero fits int sorts");
            }
            if is_int_const(b, 0) {
                return a.clone();
            }
            if is_int_const(a, 0) {
                return canonical_neg(b, sort);
            }
            if let Some(Value::Int(c)) = b.as_const() {
                // `a - c` joins `a`'s additive chain as `a + (-c)` so
                // constants spread across `+`/`-` nestings fold together.
                let neg_c = Expr::constant(sort, Value::Int(sort.wrap(c.wrapping_neg())))
                    .expect("wrapped constant fits");
                return canonical_binary(BinOp::Add, a, &neg_c, sort);
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
    }
}

/// Lifts a binary operator over an `ite` with constant branches and a
/// constant operand into the branches: `op(ite(c, k1, k2), k3)` becomes
/// `ite(c, op(k1, k3), op(k2, k3))`, whose branches fold — so e.g. a
/// circuit-style `ite(c, 1, 0) == 1` collapses to `c`.
fn lift_const_ite(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Option<Expr> {
    fn const_ite_parts(e: &Expr) -> Option<(&Expr, &Expr, &Expr)> {
        if let ExprKind::Ite(c, t, els) = e.kind() {
            if t.as_const().is_some() && els.as_const().is_some() {
                return Some((c, t, els));
            }
        }
        None
    }
    if b.as_const().is_some() {
        if let Some((c, t, els)) = const_ite_parts(a) {
            let lt = fold_binary(op, t, b, sort);
            let le = fold_binary(op, els, b, sort);
            return Some(canonical_ite(c, &lt, &le, sort));
        }
    }
    if a.as_const().is_some() {
        if let Some((c, t, els)) = const_ite_parts(b) {
            let lt = fold_binary(op, a, t, sort);
            let le = fold_binary(op, a, els, sort);
            return Some(canonical_ite(c, &lt, &le, sort));
        }
    }
    None
}

/// Moves a trailing chain constant (or a negation) across an `==`/`!=`
/// against a constant: `x + c1 == c2 → x == c2 - c1` and `-x == c → x == -c`
/// — both bijections modulo `2^width`, so sound under wrap-around.
fn isolate_constant(op: BinOp, a: &Expr, b: &Expr) -> Option<Expr> {
    let (k, other) = if let Some(Value::Int(k)) = a.as_const() {
        (k, b)
    } else if let Some(Value::Int(k)) = b.as_const() {
        (k, a)
    } else {
        return None;
    };
    let operand_sort = other.sort().clone();
    match other.kind() {
        ExprKind::Binary(BinOp::Add, u, v) => {
            let (c, spine) = if let Some(Value::Int(c)) = v.as_const() {
                (c, u)
            } else if let Some(Value::Int(c)) = u.as_const() {
                (c, v)
            } else {
                return None;
            };
            let k2 = Expr::constant(
                &operand_sort,
                Value::Int(operand_sort.wrap(k.wrapping_sub(c))),
            )
            .expect("wrapped constant fits");
            Some(canonical_binary(op, spine, &k2, &Sort::Bool))
        }
        ExprKind::Unary(UnOp::Neg, inner) => {
            let k2 = Expr::constant(
                &operand_sort,
                Value::Int(operand_sort.wrap(k.wrapping_neg())),
            )
            .expect("wrapped constant fits");
            Some(canonical_binary(op, inner, &k2, &Sort::Bool))
        }
        _ => None,
    }
}

/// The flattened `+`/`*` chain normal form: operands flattened across the
/// operator, sorted by [`Expr::structural_cmp`] (duplicates kept — `x + x`
/// is not `x`), and all constants folded into one trailing constant.
///
/// Re-grouping a chain can destroy sharing with subterms referenced
/// elsewhere in a DAG, so the rewritten chain is only used when it is the
/// input itself, or when it is strictly smaller than the pair-sorted
/// baseline — which keeps the "canonical never grows the DAG" property-test
/// invariant intact while still folding constants spread across nesting
/// levels.
fn arith_chain(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    fn flatten(op: BinOp, e: &Expr, out: &mut Vec<Expr>) {
        match e.kind() {
            ExprKind::Binary(o, x, y) if *o == op => {
                flatten(op, x, out);
                flatten(op, y, out);
            }
            _ => out.push(e.clone()),
        }
    }
    let mut operands = Vec::new();
    flatten(op, a, &mut operands);
    flatten(op, b, &mut operands);
    let neutral: i64 = match op {
        BinOp::Add => 0,
        _ => 1,
    };
    let mut k = neutral;
    let mut elems: Vec<Expr> = Vec::with_capacity(operands.len());
    for e in operands {
        match e.as_const() {
            Some(Value::Int(c)) => {
                k = sort.wrap(match op {
                    BinOp::Add => k.wrapping_add(c),
                    _ => k.wrapping_mul(c),
                });
            }
            _ => elems.push(e),
        }
    }
    if op == BinOp::Mul && k == 0 {
        return Expr::constant(sort, Value::Int(0)).expect("zero fits int sorts");
    }
    elems.sort_by(Expr::structural_cmp);
    if k != neutral {
        elems.push(Expr::constant(sort, Value::Int(k)).expect("folded constant fits"));
    }
    let mut it = elems.into_iter();
    let candidate = match it.next() {
        None => Expr::constant(sort, Value::Int(neutral)).expect("neutral fits int sorts"),
        Some(first) => it.fold(first, |acc, e| raw_binary(op, acc, e, sort)),
    };
    // Already-normal chains are their own candidate: short-circuit so the
    // form is a fixpoint regardless of how the baseline would order the top
    // pair.
    if candidate == raw_binary(op, a.clone(), b.clone(), sort) {
        return candidate;
    }
    let baseline = sorted_binary(op, a, b, sort);
    if candidate == baseline || candidate.dag_size() < baseline.dag_size() {
        candidate
    } else {
        baseline
    }
}

fn is_int_const(e: &Expr, v: i64) -> bool {
    e.as_const() == Some(Value::Int(v))
}

/// The flattened, constant-eliminated, deduplicated, structurally sorted
/// `&&`/`||` chain over canonical operands. `neutral` is the operator's
/// neutral element (`true` for `&&`, `false` for `||`); the other boolean
/// constant absorbs the whole chain.
fn bool_chain(op: BinOp, a: &Expr, b: &Expr, neutral: bool) -> Expr {
    fn flatten(op: BinOp, e: &Expr, out: &mut Vec<Expr>) {
        match e.kind() {
            ExprKind::Binary(o, x, y) if *o == op => {
                flatten(op, x, out);
                flatten(op, y, out);
            }
            _ => out.push(e.clone()),
        }
    }
    let mut operands = Vec::new();
    flatten(op, a, &mut operands);
    flatten(op, b, &mut operands);
    let mut elems: Vec<Expr> = Vec::with_capacity(operands.len());
    for e in operands {
        match e.as_const() {
            Some(Value::Bool(c)) if c == neutral => {}
            Some(Value::Bool(_)) => return Expr::bool_const(!neutral),
            _ => elems.push(e),
        }
    }
    elems.sort_by(Expr::structural_cmp);
    elems.dedup();
    // Complementary literals absorb the whole chain: `x && !x && … → false`,
    // `x || !x || … → true`. Negated comparisons were flipped by
    // `canonical_not`, so the complement of every canonical element is again
    // canonical and the check is a node-identity lookup.
    if elems.len() > 1 {
        let ids: std::collections::HashSet<_> = elems.iter().map(|e| e.id()).collect();
        if elems.iter().any(|e| ids.contains(&canonical_not(e).id())) {
            return Expr::bool_const(!neutral);
        }
    }
    let mut it = elems.into_iter();
    match it.next() {
        None => Expr::bool_const(neutral),
        Some(first) => it.fold(first, |acc, e| raw_binary(op, acc, e, &Sort::Bool)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn x() -> Expr {
        Expr::var(crate::VarId::from_index(0), Sort::int(8))
    }

    fn y() -> Expr {
        Expr::var(crate::VarId::from_index(1), Sort::int(8))
    }

    fn p() -> Expr {
        Expr::var(crate::VarId::from_index(2), Sort::Bool)
    }

    fn q() -> Expr {
        Expr::var(crate::VarId::from_index(3), Sort::Bool)
    }

    #[test]
    fn commutative_chains_collapse_to_one_key() {
        // The refinement-loop motif: the same outgoing-predicate disjunction
        // assembled in two different orders (and with different grouping).
        let lhs = p().or(&q()).or(&x().lt(&y()));
        let rhs = x().lt(&y()).or(&p().or(&q()));
        assert_ne!(lhs, rhs, "raw constructors preserve the given shape");
        assert_eq!(lhs.canonical(), rhs.canonical());
        assert_eq!(lhs.canonical().id(), rhs.canonical().id());
    }

    #[test]
    fn rendered_shape_is_untouched_by_canonical() {
        let e = Expr::true_().and(&p()).or(&Expr::false_());
        let before = e.to_string();
        let _ = e.canonical();
        assert_eq!(e.to_string(), before, "canonical() must not mutate");
        assert_eq!(e.canonical().to_string(), "x2");
    }

    #[test]
    fn neutral_and_absorbing_elements() {
        assert_eq!(p().and(&Expr::true_()).canonical(), p());
        assert!(p().and(&Expr::false_()).canonical().is_false());
        assert_eq!(p().or(&Expr::false_()).canonical(), p());
        assert!(p().or(&Expr::true_()).canonical().is_true());
        assert_eq!(x().add(&Expr::int_val(0, 8)).canonical(), x());
        assert_eq!(x().mul(&Expr::int_val(1, 8)).canonical(), x());
        assert!(is_int_const(&x().mul(&Expr::int_val(0, 8)).canonical(), 0));
        assert_eq!(x().sub(&Expr::int_val(0, 8)).canonical(), x());
    }

    #[test]
    fn reflexive_rules() {
        assert!(x().eq(&x()).canonical().is_true());
        assert!(x().ne(&x()).canonical().is_false());
        assert!(x().le(&x()).canonical().is_true());
        assert!(x().lt(&x()).canonical().is_false());
        assert!(p().implies(&p()).canonical().is_true());
        assert!(p().xor(&p()).canonical().is_false());
        assert!(is_int_const(&x().sub(&x()).canonical(), 0));
    }

    #[test]
    fn double_negation() {
        assert_eq!(p().not().not().canonical(), p());
        assert_eq!(x().neg().neg().canonical(), x());
        assert_eq!(p().not().not().not().canonical(), p().not());
    }

    #[test]
    fn constant_folding() {
        let e = Expr::int_val(3, 8).add(&Expr::int_val(250, 8));
        assert_eq!(e.canonical().as_const(), Some(Value::Int(253)));
        let wrap = Expr::int_val(200, 8).add(&Expr::int_val(100, 8));
        assert_eq!(wrap.canonical().as_const(), Some(Value::Int(44)));
        assert!(Expr::int_val(3, 8)
            .lt(&Expr::int_val(4, 8))
            .canonical()
            .is_true());
        let deep = Expr::true_().and(&Expr::int_val(1, 8).le(&Expr::int_val(1, 8)));
        assert!(deep.canonical().is_true());
    }

    #[test]
    fn chains_are_deduplicated() {
        let e = p().and(&q()).and(&p()).and(&q());
        let c = e.canonical();
        assert_eq!(c, p().and(&q()).canonical());
        assert_eq!(c.dag_size(), 3, "two variables and one conjunction");
    }

    #[test]
    fn ite_rules() {
        assert_eq!(Expr::true_().ite(&x(), &y()).canonical(), x());
        assert_eq!(Expr::false_().ite(&x(), &y()).canonical(), y());
        assert_eq!(p().ite(&x(), &x()).canonical(), x());
        let kept = p().ite(&x(), &y());
        assert_eq!(kept.canonical(), kept);
    }

    #[test]
    fn complementary_literals_collapse_chains() {
        assert!(p().and(&p().not()).canonical().is_false());
        assert!(p().or(&q()).or(&p().not()).canonical().is_true());
        // Through the comparison flips: `x < y` complements `y <= x`.
        assert!(x().lt(&y()).and(&y().le(&x())).canonical().is_false());
        assert!(q()
            .or(&x().eq(&y()))
            .or(&x().ne(&y()))
            .canonical()
            .is_true());
    }

    #[test]
    fn negated_comparisons_flip_and_gt_ge_swap() {
        assert_eq!(x().lt(&y()).not().canonical(), y().le(&x()).canonical());
        assert_eq!(x().le(&y()).not().canonical(), y().lt(&x()).canonical());
        assert_eq!(x().eq(&y()).not().canonical(), x().ne(&y()).canonical());
        assert_eq!(x().ne(&y()).not().canonical(), x().eq(&y()).canonical());
        assert_eq!(x().gt(&y()).canonical(), y().lt(&x()).canonical());
        assert_eq!(x().ge(&y()).canonical(), y().le(&x()).canonical());
    }

    #[test]
    fn arithmetic_chains_fold_constants_across_nestings() {
        let one = Expr::int_val(1, 8);
        let two = Expr::int_val(2, 8);
        let lhs = x().add(&one).add(&y().add(&two));
        let rhs = y().add(&x()).add(&Expr::int_val(3, 8));
        assert_eq!(lhs.canonical(), rhs.canonical());
        // `(x + 5) - 5` joins the chain and cancels.
        let five = Expr::int_val(5, 8);
        assert_eq!(x().add(&five).sub(&five).canonical(), x());
        assert_eq!(
            Expr::int_val(0, 8).sub(&x()).canonical(),
            x().neg().canonical()
        );
        let m = x().mul(&two).mul(&Expr::int_val(3, 8));
        assert_eq!(m.canonical(), x().mul(&Expr::int_val(6, 8)).canonical());
    }

    #[test]
    fn comparison_constants_isolate() {
        let e = x().add(&Expr::int_val(3, 8)).eq(&Expr::int_val(5, 8));
        assert_eq!(e.canonical(), x().eq(&Expr::int_val(2, 8)).canonical());
        // Wraps: `x + 3 != 1` is `x != 254` modulo 256.
        let w = x().add(&Expr::int_val(3, 8)).ne(&Expr::int_val(1, 8));
        assert_eq!(w.canonical(), x().ne(&Expr::int_val(254, 8)).canonical());
        let n = x().neg().eq(&Expr::int_val(1, 8));
        assert_eq!(n.canonical(), x().eq(&Expr::int_val(255, 8)).canonical());
    }

    #[test]
    fn ite_lifting() {
        let swapped = p().not().ite(&x(), &y());
        assert_eq!(swapped.canonical(), p().ite(&y(), &x()).canonical());
        assert_eq!(p().ite(&Expr::true_(), &Expr::false_()).canonical(), p());
        assert_eq!(
            p().ite(&Expr::false_(), &Expr::true_()).canonical(),
            p().not()
        );
        assert_eq!(
            p().ite(&Expr::true_(), &q()).canonical(),
            p().or(&q()).canonical()
        );
        assert_eq!(
            p().ite(&q(), &Expr::false_()).canonical(),
            p().and(&q()).canonical()
        );
        // The circuit motif: a 0/1 mux compared against a constant is the
        // select (or its negation).
        let mux = p().ite(&Expr::int_val(1, 8), &Expr::int_val(0, 8));
        assert_eq!(mux.eq(&Expr::int_val(1, 8)).canonical(), p());
        assert_eq!(mux.eq(&Expr::int_val(0, 8)).canonical(), p().not());
        assert_eq!(
            mux.add(&Expr::int_val(9, 8)).canonical(),
            p().ite(&Expr::int_val(10, 8), &Expr::int_val(9, 8))
                .canonical()
        );
    }

    #[test]
    fn canonicalisation_is_memoised_and_counted() {
        use crate::InternerStats;
        let before = InternerStats::snapshot();
        // A fresh shape (salted) guaranteeing at least one local rewrite.
        let salt = (before.nodes_interned % 200) as i64;
        let e = Expr::int_val(salt, 60)
            .eq(&Expr::int_val(salt, 60))
            .and(&p());
        let c1 = e.canonical();
        let mid = InternerStats::snapshot();
        let c2 = e.canonical();
        assert_eq!(c1, c2, "memoised canonicalisation must be stable");
        // Other tests may canonicalise concurrently (the counters are
        // process-global), so only the lower bound is assertable.
        assert!(
            mid.since(&before).canonical_rewrites >= 1,
            "the constant fold inside the conjunction must count as a rewrite"
        );
    }
}
