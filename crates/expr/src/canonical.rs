//! The canonicalisation seam: semantics-preserving rewriting of expressions
//! into a normal form, memoised per interned node.
//!
//! [`Expr::canonical`] maps every expression to a semantically equivalent
//! representative chosen so that *syntactically different but semantically
//! converging* constructions collapse onto one interned node:
//!
//! * constant folding (closed subtrees evaluate to their constant);
//! * neutral / absorbing element elimination (`x && true → x`,
//!   `x || true → true`, `x + 0 → x`, `x * 0 → 0`, `x * 1 → x`, …);
//! * double negation (`!!x → x`, `-(-x) → x` under wrap-around semantics);
//! * reflexive comparisons (`x == x → true`, `x != x → false`,
//!   `x <= x → true`, `x < x → false`, `x - x → 0`, `x => x → true`);
//! * commutative `&&`/`||` chains are flattened, deduplicated and sorted by
//!   the deterministic [`Expr::structural_cmp`] order (commutative binary
//!   pairs — `+`, `*`, `^`, `==`, `!=` — are sorted likewise).
//!
//! **Why a seam and not smart constructors?** Rendered output — learned edge
//! predicates, extracted invariants, semantic fingerprints — must stay
//! byte-for-byte stable across refactors, and the differential harness pins
//! it. Constructors therefore preserve the shape they are given; consumers
//! that only care about semantic identity (the condition planner's
//! verdict-cache keys, the checkers' session memo keys) call `canonical()`
//! explicitly. Canonical forms are memoised in the interner, so repeated
//! canonicalisation of the predicates the refinement loop rebuilds every
//! iteration is a per-node O(1) lookup.
//!
//! Canonicalisation is **deterministic** (operand order comes from the
//! content-only structural order, never from interner ids), **idempotent**
//! (`canonical(canonical(e)) == canonical(e)`) and **evaluation-equivalent**
//! (`canonical(e).eval(v) == e.eval(v)` for every valuation) — all three are
//! pinned by property tests in this crate.

use crate::intern::{canonical_memo_get, canonical_memo_insert};
use crate::{BinOp, Expr, ExprKind, Sort, UnOp, Valuation, Value, VarSet};

impl Expr {
    /// The canonical representative of this expression's semantic equivalence
    /// class reachable by the local rewrites documented on the canonical
    /// module. Semantics, sort and free variables (up to rewrites that
    /// eliminate dead subtrees) are preserved; the *shape* is normalised, so
    /// two predicates that differ only syntactically — e.g. the same
    /// disjunction of outgoing edge predicates assembled in a different
    /// order by a refined hypothesis — intern to the same node and therefore
    /// make equal cache keys.
    pub fn canonical(&self) -> Expr {
        let id = self.id().0;
        if let Some(hit) = canonical_memo_get(id) {
            return hit;
        }
        let (result, rewrote) = rewrite(self);
        debug_assert!(
            result.sort() == self.sort(),
            "canonicalisation changed the sort from {} to {}",
            self.sort(),
            result.sort()
        );
        canonical_memo_insert(id, result.clone(), rewrote);
        result
    }
}

/// Canonicalises one node given canonical children, reporting whether any
/// *local* rule fired (a change beyond replacing children by their canonical
/// forms — child rewrites are counted at the child).
fn rewrite(e: &Expr) -> (Expr, bool) {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => (e.clone(), false),
        ExprKind::Unary(op, a) => {
            let ca = a.canonical();
            let result = match op {
                UnOp::Not => canonical_not(&ca),
                UnOp::Neg => canonical_neg(&ca, e.sort()),
            };
            let plain = matches!(result.kind(), ExprKind::Unary(o, x) if o == op && *x == ca);
            (result, !plain)
        }
        ExprKind::Binary(op, a, b) => {
            let ca = a.canonical();
            let cb = b.canonical();
            let result = canonical_binary(*op, &ca, &cb, e.sort());
            let plain = matches!(
                result.kind(),
                ExprKind::Binary(o, x, y) if o == op && *x == ca && *y == cb
            );
            (result, !plain)
        }
        ExprKind::Ite(c, t, els) => {
            let cc = c.canonical();
            let ct = t.canonical();
            let ce = els.canonical();
            let result = if cc.is_true() {
                ct.clone()
            } else if cc.is_false() {
                ce.clone()
            } else if ct == ce {
                ct.clone()
            } else {
                Expr::new(
                    ExprKind::Ite(cc.clone(), ct.clone(), ce.clone()),
                    e.sort().clone(),
                )
            };
            let plain = matches!(
                result.kind(),
                ExprKind::Ite(x, y, z) if *x == cc && *y == ct && *z == ce
            );
            (result, !plain)
        }
    }
}

fn canonical_not(a: &Expr) -> Expr {
    match a.kind() {
        ExprKind::Const(Value::Bool(b)) => Expr::bool_const(!b),
        ExprKind::Unary(UnOp::Not, inner) => inner.clone(),
        _ => Expr::new(ExprKind::Unary(UnOp::Not, a.clone()), Sort::Bool),
    }
}

fn canonical_neg(a: &Expr, sort: &Sort) -> Expr {
    match a.kind() {
        ExprKind::Const(Value::Int(v)) => {
            Expr::constant(sort, Value::Int(sort.wrap(-v))).expect("wrapped constant fits")
        }
        // Arithmetic negation is an involution under two's-complement
        // wrap-around (including the minimum value, which negates to itself).
        ExprKind::Unary(UnOp::Neg, inner) => inner.clone(),
        _ => Expr::new(ExprKind::Unary(UnOp::Neg, a.clone()), sort.clone()),
    }
}

/// Folds a fully constant binary node by evaluating it (both operands are
/// constants, so the empty valuation suffices).
fn fold_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    let raw = raw_binary(op, a.clone(), b.clone(), sort);
    let empty = VarSet::new();
    let folded = raw.eval(&Valuation::zeroed(&empty));
    Expr::constant(sort, folded).expect("folded constant fits its sort")
}

/// Builds the node without further rewriting (children are already
/// canonical and the operand sorts were validated when the original
/// expression was constructed).
fn raw_binary(op: BinOp, a: Expr, b: Expr, sort: &Sort) -> Expr {
    Expr::new(ExprKind::Binary(op, a, b), sort.clone())
}

/// Builds the commutative pair in structural order.
fn sorted_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    if a.structural_cmp(b) <= std::cmp::Ordering::Equal {
        raw_binary(op, a.clone(), b.clone(), sort)
    } else {
        raw_binary(op, b.clone(), a.clone(), sort)
    }
}

fn canonical_binary(op: BinOp, a: &Expr, b: &Expr, sort: &Sort) -> Expr {
    if a.as_const().is_some() && b.as_const().is_some() {
        return fold_binary(op, a, b, sort);
    }
    match op {
        BinOp::And => bool_chain(BinOp::And, a, b, true),
        BinOp::Or => bool_chain(BinOp::Or, a, b, false),
        BinOp::Xor => {
            if a == b {
                return Expr::false_();
            }
            if a.is_false() {
                return b.clone();
            }
            if b.is_false() {
                return a.clone();
            }
            if a.is_true() {
                return canonical_not(b);
            }
            if b.is_true() {
                return canonical_not(a);
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Implies => {
            if a == b || a.is_false() || b.is_true() {
                return Expr::true_();
            }
            if a.is_true() {
                return b.clone();
            }
            if b.is_false() {
                return canonical_not(a);
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Eq => {
            if a == b {
                return Expr::true_();
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Ne => {
            if a == b {
                return Expr::false_();
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Le | BinOp::Ge => {
            if a == b {
                return Expr::true_();
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Lt | BinOp::Gt => {
            if a == b {
                return Expr::false_();
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Add => {
            if is_int_const(a, 0) {
                return b.clone();
            }
            if is_int_const(b, 0) {
                return a.clone();
            }
            sorted_binary(op, a, b, sort)
        }
        BinOp::Sub => {
            if a == b {
                return Expr::constant(sort, Value::Int(0)).expect("zero fits int sorts");
            }
            if is_int_const(b, 0) {
                return a.clone();
            }
            raw_binary(op, a.clone(), b.clone(), sort)
        }
        BinOp::Mul => {
            if is_int_const(a, 0) || is_int_const(b, 0) {
                return Expr::constant(sort, Value::Int(0)).expect("zero fits int sorts");
            }
            if is_int_const(a, 1) {
                return b.clone();
            }
            if is_int_const(b, 1) {
                return a.clone();
            }
            sorted_binary(op, a, b, sort)
        }
    }
}

fn is_int_const(e: &Expr, v: i64) -> bool {
    e.as_const() == Some(Value::Int(v))
}

/// The flattened, constant-eliminated, deduplicated, structurally sorted
/// `&&`/`||` chain over canonical operands. `neutral` is the operator's
/// neutral element (`true` for `&&`, `false` for `||`); the other boolean
/// constant absorbs the whole chain.
fn bool_chain(op: BinOp, a: &Expr, b: &Expr, neutral: bool) -> Expr {
    fn flatten(op: BinOp, e: &Expr, out: &mut Vec<Expr>) {
        match e.kind() {
            ExprKind::Binary(o, x, y) if *o == op => {
                flatten(op, x, out);
                flatten(op, y, out);
            }
            _ => out.push(e.clone()),
        }
    }
    let mut operands = Vec::new();
    flatten(op, a, &mut operands);
    flatten(op, b, &mut operands);
    let mut elems: Vec<Expr> = Vec::with_capacity(operands.len());
    for e in operands {
        match e.as_const() {
            Some(Value::Bool(c)) if c == neutral => {}
            Some(Value::Bool(_)) => return Expr::bool_const(!neutral),
            _ => elems.push(e),
        }
    }
    elems.sort_by(Expr::structural_cmp);
    elems.dedup();
    let mut it = elems.into_iter();
    match it.next() {
        None => Expr::bool_const(neutral),
        Some(first) => it.fold(first, |acc, e| raw_binary(op, acc, e, &Sort::Bool)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn x() -> Expr {
        Expr::var(crate::VarId::from_index(0), Sort::int(8))
    }

    fn y() -> Expr {
        Expr::var(crate::VarId::from_index(1), Sort::int(8))
    }

    fn p() -> Expr {
        Expr::var(crate::VarId::from_index(2), Sort::Bool)
    }

    fn q() -> Expr {
        Expr::var(crate::VarId::from_index(3), Sort::Bool)
    }

    #[test]
    fn commutative_chains_collapse_to_one_key() {
        // The refinement-loop motif: the same outgoing-predicate disjunction
        // assembled in two different orders (and with different grouping).
        let lhs = p().or(&q()).or(&x().lt(&y()));
        let rhs = x().lt(&y()).or(&p().or(&q()));
        assert_ne!(lhs, rhs, "raw constructors preserve the given shape");
        assert_eq!(lhs.canonical(), rhs.canonical());
        assert_eq!(lhs.canonical().id(), rhs.canonical().id());
    }

    #[test]
    fn rendered_shape_is_untouched_by_canonical() {
        let e = Expr::true_().and(&p()).or(&Expr::false_());
        let before = e.to_string();
        let _ = e.canonical();
        assert_eq!(e.to_string(), before, "canonical() must not mutate");
        assert_eq!(e.canonical().to_string(), "x2");
    }

    #[test]
    fn neutral_and_absorbing_elements() {
        assert_eq!(p().and(&Expr::true_()).canonical(), p());
        assert!(p().and(&Expr::false_()).canonical().is_false());
        assert_eq!(p().or(&Expr::false_()).canonical(), p());
        assert!(p().or(&Expr::true_()).canonical().is_true());
        assert_eq!(x().add(&Expr::int_val(0, 8)).canonical(), x());
        assert_eq!(x().mul(&Expr::int_val(1, 8)).canonical(), x());
        assert!(is_int_const(&x().mul(&Expr::int_val(0, 8)).canonical(), 0));
        assert_eq!(x().sub(&Expr::int_val(0, 8)).canonical(), x());
    }

    #[test]
    fn reflexive_rules() {
        assert!(x().eq(&x()).canonical().is_true());
        assert!(x().ne(&x()).canonical().is_false());
        assert!(x().le(&x()).canonical().is_true());
        assert!(x().lt(&x()).canonical().is_false());
        assert!(p().implies(&p()).canonical().is_true());
        assert!(p().xor(&p()).canonical().is_false());
        assert!(is_int_const(&x().sub(&x()).canonical(), 0));
    }

    #[test]
    fn double_negation() {
        assert_eq!(p().not().not().canonical(), p());
        assert_eq!(x().neg().neg().canonical(), x());
        assert_eq!(p().not().not().not().canonical(), p().not());
    }

    #[test]
    fn constant_folding() {
        let e = Expr::int_val(3, 8).add(&Expr::int_val(250, 8));
        assert_eq!(e.canonical().as_const(), Some(Value::Int(253)));
        let wrap = Expr::int_val(200, 8).add(&Expr::int_val(100, 8));
        assert_eq!(wrap.canonical().as_const(), Some(Value::Int(44)));
        assert!(Expr::int_val(3, 8)
            .lt(&Expr::int_val(4, 8))
            .canonical()
            .is_true());
        let deep = Expr::true_().and(&Expr::int_val(1, 8).le(&Expr::int_val(1, 8)));
        assert!(deep.canonical().is_true());
    }

    #[test]
    fn chains_are_deduplicated() {
        let e = p().and(&q()).and(&p()).and(&q());
        let c = e.canonical();
        assert_eq!(c, p().and(&q()).canonical());
        assert_eq!(c.dag_size(), 3, "two variables and one conjunction");
    }

    #[test]
    fn ite_rules() {
        assert_eq!(Expr::true_().ite(&x(), &y()).canonical(), x());
        assert_eq!(Expr::false_().ite(&x(), &y()).canonical(), y());
        assert_eq!(p().ite(&x(), &x()).canonical(), x());
        let kept = p().ite(&x(), &y());
        assert_eq!(kept.canonical(), kept);
    }

    #[test]
    fn canonicalisation_is_memoised_and_counted() {
        use crate::InternerStats;
        let before = InternerStats::snapshot();
        // A fresh shape (salted) guaranteeing at least one local rewrite.
        let salt = (before.nodes_interned % 200) as i64;
        let e = Expr::int_val(salt, 60)
            .eq(&Expr::int_val(salt, 60))
            .and(&p());
        let c1 = e.canonical();
        let mid = InternerStats::snapshot();
        let c2 = e.canonical();
        assert_eq!(c1, c2, "memoised canonicalisation must be stable");
        // Other tests may canonicalise concurrently (the counters are
        // process-global), so only the lower bound is assertable.
        assert!(
            mid.since(&before).canonical_rewrites >= 1,
            "the constant fold inside the conjunction must count as a rewrite"
        );
    }
}
