//! Property-based tests for the expression layer.
//!
//! The key invariants checked here:
//!
//! 1. simplification preserves semantics on random expressions and random
//!    valuations;
//! 2. evaluation always stays within the sort's representable range;
//! 3. substitution with constants agrees with evaluation;
//! 4. the hash-consing interner gives `a == b ⟺ id(a) == id(b)`;
//! 5. canonicalisation is evaluation-equivalent to the raw AST, idempotent,
//!    sort-preserving, and never perturbs the rendered form of the input.

use crate::{simplify, Expr, Sort, Valuation, Value, VarId, VarSet};
use proptest::prelude::*;
use std::collections::HashMap;

const WIDTH: u32 = 6;

fn var_set() -> VarSet {
    let mut vars = VarSet::new();
    vars.declare("a", Sort::int(WIDTH)).unwrap();
    vars.declare("b", Sort::int(WIDTH)).unwrap();
    vars.declare("p", Sort::Bool).unwrap();
    vars.declare("q", Sort::Bool).unwrap();
    vars
}

fn arb_int_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            (0..(1i64 << WIDTH)).prop_map(|v| Expr::int_val(v, WIDTH)),
            Just(Expr::var(VarId::from_index(0), Sort::int(WIDTH))),
            Just(Expr::var(VarId::from_index(1), Sort::int(WIDTH))),
        ]
        .boxed()
    } else {
        let sub = arb_int_expr(depth - 1);
        let subb = arb_bool_expr(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.add(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.sub(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.mul(&b)),
            (subb, sub.clone(), sub.clone()).prop_map(|(c, a, b)| c.ite(&a, &b)),
            sub,
        ]
        .boxed()
    }
}

fn arb_bool_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            any::<bool>().prop_map(Expr::bool_const),
            Just(Expr::var(VarId::from_index(2), Sort::Bool)),
            Just(Expr::var(VarId::from_index(3), Sort::Bool)),
        ]
        .boxed()
    } else {
        let sub = arb_bool_expr(depth - 1);
        let subi = arb_int_expr(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.implies(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.xor(&b)),
            sub.clone().prop_map(|a| a.not()),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.lt(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.le(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.eq(&b)),
            (subi.clone(), subi).prop_map(|(a, b)| a.ne(&b)),
            sub,
        ]
        .boxed()
    }
}

/// Integer expressions without `ite`, so comparisons over them canonicalise
/// to a single comparison node (a chain *element*, never a chain) — what the
/// complementary-collapse structural assertions need.
fn arb_linear_int(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            (0..(1i64 << WIDTH)).prop_map(|v| Expr::int_val(v, WIDTH)),
            Just(Expr::var(VarId::from_index(0), Sort::int(WIDTH))),
            Just(Expr::var(VarId::from_index(1), Sort::int(WIDTH))),
        ]
        .boxed()
    } else {
        let sub = arb_linear_int(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.add(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.sub(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.mul(&b)),
            sub,
        ]
        .boxed()
    }
}

/// Boolean literals: variables, comparisons over `ite`-free integer terms,
/// and their negations.
fn arb_bool_literal() -> BoxedStrategy<Expr> {
    let i = arb_linear_int(1);
    let base = prop_oneof![
        Just(Expr::var(VarId::from_index(2), Sort::Bool)),
        Just(Expr::var(VarId::from_index(3), Sort::Bool)),
        (i.clone(), i.clone()).prop_map(|(a, b)| a.lt(&b)),
        (i.clone(), i.clone()).prop_map(|(a, b)| a.le(&b)),
        (i.clone(), i.clone()).prop_map(|(a, b)| a.eq(&b)),
        (i.clone(), i).prop_map(|(a, b)| a.ne(&b)),
    ];
    (base, any::<bool>())
        .prop_map(|(e, neg)| if neg { e.not() } else { e })
        .boxed()
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    (
        0..(1i64 << WIDTH),
        0..(1i64 << WIDTH),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, p, q)| {
            let vars = var_set();
            let mut v = Valuation::zeroed(&vars);
            v.set(VarId::from_index(0), Value::Int(a));
            v.set(VarId::from_index(1), Value::Int(b));
            v.set(VarId::from_index(2), Value::Bool(p));
            v.set(VarId::from_index(3), Value::Bool(q));
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplify_preserves_bool_semantics(e in arb_bool_expr(3), v in arb_valuation()) {
        let simp = simplify(&e);
        prop_assert_eq!(e.eval(&v), simp.eval(&v));
    }

    #[test]
    fn simplify_preserves_int_semantics(e in arb_int_expr(3), v in arb_valuation()) {
        let simp = simplify(&e);
        prop_assert_eq!(e.eval(&v), simp.eval(&v));
    }

    #[test]
    fn simplify_never_grows(e in arb_bool_expr(3)) {
        prop_assert!(simplify(&e).node_count() <= e.node_count());
    }

    #[test]
    fn eval_stays_in_range(e in arb_int_expr(3), v in arb_valuation()) {
        let value = e.eval(&v).as_int().unwrap();
        let (lo, hi) = Sort::int(WIDTH).value_range();
        prop_assert!(value >= lo && value <= hi);
    }

    #[test]
    fn substitution_of_constants_matches_eval(e in arb_bool_expr(3), v in arb_valuation()) {
        // Substitute every variable with its constant value, then evaluate the
        // closed expression: the result must match direct evaluation.
        let mut map = HashMap::new();
        map.insert(VarId::from_index(0), Expr::int_val(v.value(VarId::from_index(0)).to_i64(), WIDTH));
        map.insert(VarId::from_index(1), Expr::int_val(v.value(VarId::from_index(1)).to_i64(), WIDTH));
        map.insert(VarId::from_index(2), Expr::bool_const(v.value(VarId::from_index(2)).as_bool().unwrap()));
        map.insert(VarId::from_index(3), Expr::bool_const(v.value(VarId::from_index(3)).as_bool().unwrap()));
        let closed = e.substitute(&map);
        prop_assert!(closed.free_vars().is_empty());
        prop_assert_eq!(closed.eval(&v), e.eval(&v));
    }

    #[test]
    fn double_simplify_is_idempotent(e in arb_bool_expr(3)) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn interning_makes_equality_id_equality(a in arb_bool_expr(3), b in arb_bool_expr(3)) {
        // a == b ⟺ id(a) == id(b): the identity every expression-keyed
        // cache in the workspace relies on.
        prop_assert_eq!(a == b, a.id() == b.id());
        prop_assert_eq!(a.clone().id(), a.id(), "cloning preserves identity");
        if a == b {
            prop_assert_eq!(a.structural_hash(), b.structural_hash());
            prop_assert_eq!(a.structural_cmp(&b), std::cmp::Ordering::Equal);
        } else {
            prop_assert!(a.structural_cmp(&b) != std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn canonical_is_evaluation_equivalent_bool(e in arb_bool_expr(3), v in arb_valuation()) {
        let c = e.canonical();
        prop_assert_eq!(e.eval(&v), c.eval(&v));
        prop_assert_eq!(e.sort(), c.sort());
    }

    #[test]
    fn canonical_is_evaluation_equivalent_int(e in arb_int_expr(3), v in arb_valuation()) {
        let c = e.canonical();
        prop_assert_eq!(e.eval(&v), c.eval(&v));
        prop_assert_eq!(e.sort(), c.sort());
    }

    #[test]
    fn canonical_is_idempotent(e in arb_bool_expr(3)) {
        let once = e.canonical();
        let twice = once.canonical();
        prop_assert_eq!(once.id(), twice.id());
    }

    #[test]
    fn canonical_never_perturbs_the_rendered_input(e in arb_bool_expr(3)) {
        // The seam contract: canonicalisation is a *projection* for cache
        // keys; the expression handed to reports must render identically
        // whether or not someone canonicalised it along the way.
        let rendered = e.to_string();
        let _ = e.canonical();
        prop_assert_eq!(e.to_string(), rendered);
    }

    #[test]
    fn canonical_dag_never_grows(e in arb_bool_expr(3)) {
        prop_assert!(e.canonical().dag_size() <= e.dag_size());
    }

    #[test]
    fn complementary_literal_chains_collapse(
        lits in proptest::collection::vec(arb_bool_literal(), 1..5),
        pick in 0usize..4,
    ) {
        // A chain that contains a literal and its negation collapses to the
        // absorbing constant, wherever in the (flattened) chain they sit.
        let victim = lits[pick % lits.len()].clone();
        let or_chain = Expr::or_all(lits.iter().cloned()).or(&victim.not());
        prop_assert!(or_chain.canonical().is_true(), "{or_chain} did not collapse");
        let and_chain = Expr::and_all(lits.iter().cloned()).and(&victim.not());
        prop_assert!(and_chain.canonical().is_false(), "{and_chain} did not collapse");
    }

    #[test]
    fn comparison_flips_are_sound(a in arb_int_expr(2), b in arb_int_expr(2), v in arb_valuation()) {
        for cmp in [a.lt(&b), a.le(&b), a.gt(&b), a.ge(&b), a.eq(&b), a.ne(&b)] {
            let flipped = cmp.not().canonical();
            prop_assert_eq!(flipped.eval(&v), Value::Bool(!cmp.eval_bool(&v)));
            prop_assert_eq!(flipped.canonical().id(), flipped.id(), "flip not idempotent");
        }
    }

    #[test]
    fn arith_normal_form_is_sound_and_idempotent(e in arb_int_expr(3), v in arb_valuation()) {
        let c = e.canonical();
        prop_assert_eq!(e.eval(&v), c.eval(&v));
        prop_assert_eq!(c.canonical().id(), c.id());
        prop_assert!(c.dag_size() <= e.dag_size());
    }

    #[test]
    fn ite_lifting_is_sound_and_idempotent(
        c in arb_bool_expr(2),
        t in arb_int_expr(2),
        e in arb_int_expr(2),
        v in arb_valuation(),
    ) {
        let ite = c.ite(&t, &e);
        let canon = ite.canonical();
        prop_assert_eq!(ite.eval(&v), canon.eval(&v));
        prop_assert_eq!(canon.canonical().id(), canon.id());
        // And through a comparison against a constant (the lifting path).
        let cmp = ite.eq(&Expr::int_val(1, WIDTH));
        let ccmp = cmp.canonical();
        prop_assert_eq!(cmp.eval(&v), ccmp.eval(&v));
        prop_assert_eq!(ccmp.canonical().id(), ccmp.id());
    }

    #[test]
    fn dag_size_bounds_node_count(e in arb_bool_expr(3)) {
        let dag = e.dag_size();
        let tree = e.node_count();
        prop_assert!(dag <= tree, "distinct nodes cannot exceed tree occurrences");
        prop_assert!(dag >= 1);
    }
}
