//! Sorts (types) of variables and expressions.

use std::fmt;
use std::sync::Arc;

/// The sort (type) of a variable, value or expression.
///
/// Three sorts are supported, matching what Stateflow-style controllers need:
///
/// * [`Sort::Bool`] — booleans.
/// * [`Sort::Int`] — fixed-width integers with wrap-around arithmetic. The
///   width is in bits (1..=63) and the interpretation may be signed
///   (two's complement) or unsigned.
/// * [`Sort::Enum`] — a named, finite enumeration. Enum values are indices
///   into the variant list.
///
/// # Example
///
/// ```
/// use amle_expr::Sort;
///
/// let mode = Sort::enumeration("Mode", ["Off", "Heating", "Cooling"]);
/// assert_eq!(mode.enum_variants().unwrap().len(), 3);
/// assert!(Sort::int(8).is_int());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Fixed-width integer sort.
    Int {
        /// Width in bits (1..=63).
        bits: u32,
        /// Two's-complement interpretation if `true`, unsigned otherwise.
        signed: bool,
    },
    /// Named enumeration sort.
    Enum(Arc<EnumSort>),
}

/// The definition of an enumeration sort: a name plus an ordered variant list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumSort {
    /// Name of the enumeration (for diagnostics and pretty printing).
    pub name: String,
    /// Ordered list of variant names; values are indices into this list.
    pub variants: Vec<String>,
}

impl Sort {
    /// An unsigned fixed-width integer sort.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 63.
    pub fn int(bits: u32) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "integer sort width must be in 1..=63, got {bits}"
        );
        Sort::Int {
            bits,
            signed: false,
        }
    }

    /// A signed (two's complement) fixed-width integer sort.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 63.
    pub fn signed_int(bits: u32) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "integer sort width must be in 1..=63, got {bits}"
        );
        Sort::Int { bits, signed: true }
    }

    /// An enumeration sort with the given name and variants.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn enumeration<N, I, S>(name: N, variants: I) -> Self
    where
        N: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let variants: Vec<String> = variants.into_iter().map(Into::into).collect();
        assert!(
            !variants.is_empty(),
            "enumeration sort needs at least one variant"
        );
        Sort::Enum(Arc::new(EnumSort {
            name: name.into(),
            variants,
        }))
    }

    /// Returns `true` if this is the boolean sort.
    pub fn is_bool(&self) -> bool {
        matches!(self, Sort::Bool)
    }

    /// Returns `true` if this is an integer sort.
    pub fn is_int(&self) -> bool {
        matches!(self, Sort::Int { .. })
    }

    /// Returns `true` if this is an enumeration sort.
    pub fn is_enum(&self) -> bool {
        matches!(self, Sort::Enum(_))
    }

    /// Width of the bit-level encoding of this sort, in bits.
    ///
    /// Booleans take one bit, integers their declared width, enumerations the
    /// smallest width able to hold the largest variant index.
    pub fn bit_width(&self) -> u32 {
        match self {
            Sort::Bool => 1,
            Sort::Int { bits, .. } => *bits,
            Sort::Enum(e) => {
                let max = e.variants.len().saturating_sub(1) as u64;
                if max == 0 {
                    1
                } else {
                    64 - max.leading_zeros()
                }
            }
        }
    }

    /// The variant names of an enumeration sort, or `None` for other sorts.
    pub fn enum_variants(&self) -> Option<&[String]> {
        match self {
            Sort::Enum(e) => Some(&e.variants),
            _ => None,
        }
    }

    /// Looks up the index of a variant name in an enumeration sort.
    pub fn variant_index(&self, name: &str) -> Option<usize> {
        self.enum_variants()
            .and_then(|vs| vs.iter().position(|v| v == name))
    }

    /// The inclusive range of integer values representable by this sort.
    ///
    /// Booleans map to `0..=1`, enumerations to `0..=variants-1`.
    pub fn value_range(&self) -> (i64, i64) {
        match self {
            Sort::Bool => (0, 1),
            Sort::Int { bits, signed } => {
                if *signed {
                    let half = 1i64 << (bits - 1);
                    (-half, half - 1)
                } else {
                    (0, (1i64 << bits) - 1)
                }
            }
            Sort::Enum(e) => (0, e.variants.len() as i64 - 1),
        }
    }

    /// Wraps an arbitrary integer into the representable range of this sort
    /// (two's complement wrap-around for `Int`, clamping by modulo for enums
    /// and booleans).
    pub fn wrap(&self, v: i64) -> i64 {
        match self {
            Sort::Bool => {
                if v == 0 {
                    0
                } else {
                    1
                }
            }
            Sort::Int { bits, signed } => {
                let mask = (1u64 << bits) - 1;
                let raw = (v as u64) & mask;
                if *signed {
                    let sign_bit = 1u64 << (bits - 1);
                    if raw & sign_bit != 0 {
                        (raw as i64) - (1i64 << bits)
                    } else {
                        raw as i64
                    }
                } else {
                    raw as i64
                }
            }
            Sort::Enum(e) => {
                let n = e.variants.len() as i64;
                v.rem_euclid(n)
            }
        }
    }

    /// Returns `true` if two sorts are compatible for comparison and
    /// assignment purposes.
    ///
    /// Integer sorts of different width or signedness are *not* compatible;
    /// the expression layer requires explicit matching widths so that the
    /// bit-blaster never has to insert implicit casts.
    pub fn compatible(&self, other: &Sort) -> bool {
        self == other
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Int { bits, signed } => {
                write!(f, "{}{}", if *signed { "i" } else { "u" }, bits)
            }
            Sort::Enum(e) => write!(f, "enum {}", e.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sort_range_unsigned() {
        assert_eq!(Sort::int(4).value_range(), (0, 15));
        assert_eq!(Sort::int(1).value_range(), (0, 1));
        assert_eq!(Sort::int(8).value_range(), (0, 255));
    }

    #[test]
    fn int_sort_range_signed() {
        assert_eq!(Sort::signed_int(4).value_range(), (-8, 7));
        assert_eq!(Sort::signed_int(8).value_range(), (-128, 127));
    }

    #[test]
    fn wrap_unsigned() {
        let s = Sort::int(4);
        assert_eq!(s.wrap(16), 0);
        assert_eq!(s.wrap(17), 1);
        assert_eq!(s.wrap(-1), 15);
        assert_eq!(s.wrap(15), 15);
    }

    #[test]
    fn wrap_signed() {
        let s = Sort::signed_int(4);
        assert_eq!(s.wrap(8), -8);
        assert_eq!(s.wrap(7), 7);
        assert_eq!(s.wrap(-9), 7);
        assert_eq!(s.wrap(16), 0);
    }

    #[test]
    fn wrap_bool_and_enum() {
        assert_eq!(Sort::Bool.wrap(5), 1);
        assert_eq!(Sort::Bool.wrap(0), 0);
        let e = Sort::enumeration("Mode", ["A", "B", "C"]);
        assert_eq!(e.wrap(3), 0);
        assert_eq!(e.wrap(-1), 2);
    }

    #[test]
    fn enum_lookup() {
        let e = Sort::enumeration("Mode", ["Off", "On"]);
        assert_eq!(e.variant_index("On"), Some(1));
        assert_eq!(e.variant_index("Missing"), None);
        assert_eq!(e.bit_width(), 1);
        let e3 = Sort::enumeration("Mode", ["A", "B", "C"]);
        assert_eq!(e3.bit_width(), 2);
        let e5 = Sort::enumeration("Mode", ["A", "B", "C", "D", "E"]);
        assert_eq!(e5.bit_width(), 3);
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Sort::Bool.bit_width(), 1);
        assert_eq!(Sort::int(12).bit_width(), 12);
        assert_eq!(Sort::enumeration("E", ["only"]).bit_width(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Bool.to_string(), "bool");
        assert_eq!(Sort::int(8).to_string(), "u8");
        assert_eq!(Sort::signed_int(16).to_string(), "i16");
        assert_eq!(Sort::enumeration("Mode", ["A"]).to_string(), "enum Mode");
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=63")]
    fn zero_width_rejected() {
        let _ = Sort::int(0);
    }

    #[test]
    #[should_panic(expected = "at least one variant")]
    fn empty_enum_rejected() {
        let _ = Sort::enumeration("E", Vec::<String>::new());
    }

    #[test]
    fn compatibility() {
        assert!(Sort::int(8).compatible(&Sort::int(8)));
        assert!(!Sort::int(8).compatible(&Sort::int(9)));
        assert!(!Sort::int(8).compatible(&Sort::signed_int(8)));
        assert!(!Sort::Bool.compatible(&Sort::int(1)));
    }
}
