//! The active model-learning loop (Fig. 1 of the paper).

use crate::conditions::{extract_conditions, AssumptionMemo, Condition, ConditionKind};
use crate::engine::{
    ConditionEngine, OracleConfig, ParallelConfig, QueryPlanner, SequentialEngine, WorkerPool,
};
use crate::report::{Invariant, IterationStats, RunReport};
use amle_checker::build_oracle;
use amle_expr::{Valuation, VarId};
use amle_learner::{LearnError, ModelLearner};
use amle_system::{Simulator, System, Trace, TraceId, TraceSet, TraceStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of an active-learning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveLearnerConfig {
    /// The observable variables `X` the abstraction ranges over. `None` means
    /// all system variables.
    pub observables: Option<Vec<VarId>>,
    /// Number of random traces in the initial trace set (the paper uses 50).
    pub initial_traces: usize,
    /// Length of each random trace (the paper uses 50).
    pub trace_length: usize,
    /// k-induction bound for the spurious-counterexample check (the paper
    /// assumes a benchmark-specific `k` is supplied).
    pub k: usize,
    /// Safety bound on the number of learning iterations (plays the role of
    /// the paper's wall-clock timeout).
    pub max_iterations: usize,
    /// Bound on consecutive spurious counterexamples blocked for a single
    /// condition before the condition is given up for this iteration.
    pub max_spurious_rounds: usize,
    /// Seed for the random trace generator.
    pub seed: u64,
    /// Parallelism of the condition-checking engine. The default honours the
    /// `AMLE_WORKERS` environment variable (1 = sequential); reports are
    /// byte-identical across worker counts.
    pub parallel: ParallelConfig,
    /// The condition-oracle stack and planner behaviour: which engine
    /// answers queries (`AMLE_ENGINE`), whether the cross-iteration verdict
    /// cache is on (`AMLE_VERDICT_CACHE`), and the portfolio's budget /
    /// routing / cross-validation knobs. Semantic fingerprints are
    /// byte-identical across engines and cache settings.
    pub oracle: OracleConfig,
}

impl Default for ActiveLearnerConfig {
    fn default() -> Self {
        ActiveLearnerConfig {
            observables: None,
            initial_traces: 50,
            trace_length: 50,
            k: 10,
            max_iterations: 25,
            max_spurious_rounds: 10,
            seed: 0xA1,
            parallel: ParallelConfig::from_env(),
            oracle: OracleConfig::from_env(),
        }
    }
}

/// Errors raised by the active-learning loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActiveLearnError {
    /// The model-learning component failed.
    Learner(LearnError),
    /// The configuration is unusable (e.g. no traces requested).
    BadConfig {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for ActiveLearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActiveLearnError::Learner(e) => write!(f, "model learning failed: {e}"),
            ActiveLearnError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
        }
    }
}

impl Error for ActiveLearnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ActiveLearnError::Learner(e) => Some(e),
            ActiveLearnError::BadConfig { .. } => None,
        }
    }
}

impl From<LearnError> for ActiveLearnError {
    fn from(e: LearnError) -> Self {
        ActiveLearnError::Learner(e)
    }
}

/// Converts a valid counterexample into new traces by splicing it onto the
/// shortest prefix of every existing trace that ends in a state satisfying
/// the violated condition's assumption (Section III-B).
///
/// This is the **retained reference implementation** over flat traces: the
/// loop itself runs [`splice_counterexample`] on the interned
/// [`TraceStore`], which must insert exactly the distinct traces this
/// function produces, in the same first-occurrence order — the differential
/// tests below drive both with identical counterexample sequences and
/// compare the resulting sets observation for observation.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn counterexample_traces(
    condition: &Condition,
    from: &Valuation,
    to: &Valuation,
    traces: &TraceSet,
) -> Vec<Trace> {
    if condition.kind == ConditionKind::Initial {
        return vec![Trace::new(vec![to.clone()])];
    }
    let mut new_traces = Vec::new();
    for trace in traces.iter() {
        if let Some(j) = trace
            .observations()
            .iter()
            .position(|v| condition.assumption.eval_bool(v))
        {
            let mut observations = trace.observations()[..j].to_vec();
            observations.push(from.clone());
            observations.push(to.clone());
            new_traces.push(Trace::new(observations));
        }
    }
    if new_traces.is_empty() {
        new_traces.push(Trace::new(vec![from.clone(), to.clone()]));
    }
    new_traces
}

/// The store-backed splicing step (Section III-B): splices the valid
/// counterexample `from → to` onto the shortest qualifying prefix of every
/// trace stored before the call, returning the number of *new* traces this
/// inserted.
///
/// Per parent trace this is O(trace length) pointer-walking (the id path is
/// materialised once into a reused buffer) plus a memoised
/// per-distinct-observation assumption evaluation — no observation vectors
/// are cloned and no O(|T|) duplicate scans run. Parent traces that
/// share the same qualifying prefix *segment* would all produce the same
/// spliced trace, so the splice is emitted once per distinct segment
/// (fixing the duplicate-splice waste of the flat path, which built each
/// duplicate candidate in full before the insert rejected it). The set of
/// traces inserted — and therefore everything downstream — is identical to
/// the reference [`counterexample_traces`] path.
pub(crate) fn splice_counterexample(
    store: &mut TraceStore,
    condition: &Condition,
    from: &Valuation,
    to: &Valuation,
) -> usize {
    if condition.kind == ConditionKind::Initial {
        return usize::from(store.insert(std::slice::from_ref(to)).is_some());
    }
    // Snapshot the trace list: traces spliced in by this call (or by earlier
    // counterexamples of the same iteration, which *are* visible) must not
    // be re-scanned mid-call.
    let parents: Vec<TraceId> = store.traces().collect();
    let mut memo = AssumptionMemo::new(&condition.assumption, store.num_observations());
    let mut seen_prefixes = HashSet::new();
    let mut buf = Vec::new();
    let mut inserted = 0;
    let mut matched = false;
    for trace in parents {
        store.obs_ids_into(trace, &mut buf);
        let Some(j) = buf
            .iter()
            .position(|obs| memo.eval(*obs, store.valuation(*obs)))
        else {
            continue;
        };
        matched = true;
        let prefix = store.prefix(trace, j);
        if !seen_prefixes.insert(prefix) {
            continue; // an identical splice was already emitted
        }
        if store.splice(prefix, from, to).is_some() {
            inserted += 1;
        }
    }
    if !matched {
        // No trace reaches the assumption: record the bare transition.
        inserted += usize::from(store.insert(&[from.clone(), to.clone()]).is_some());
    }
    inserted
}

/// The active model-learning algorithm.
///
/// See the [crate documentation](crate) for the algorithm outline and an
/// end-to-end example.
#[derive(Debug)]
pub struct ActiveLearner<'a, L: ModelLearner> {
    system: &'a System,
    learner: L,
    config: ActiveLearnerConfig,
}

impl<'a, L: ModelLearner> ActiveLearner<'a, L> {
    /// Creates an active learner for `system` using the given pluggable
    /// model-learning component.
    pub fn new(system: &'a System, learner: L, config: ActiveLearnerConfig) -> Self {
        ActiveLearner {
            system,
            learner,
            config,
        }
    }

    /// The observable variables of this run.
    pub fn observables(&self) -> Vec<VarId> {
        self.config
            .observables
            .clone()
            .unwrap_or_else(|| self.system.all_vars())
    }

    /// Runs the loop starting from randomly generated traces.
    ///
    /// # Example
    ///
    /// Learning the Fig. 2 home climate-control cooler to completeness
    /// (`α = 1`, Theorem 1: the abstraction admits every system trace):
    ///
    /// ```
    /// use amle_core::{ActiveLearner, ActiveLearnerConfig};
    /// use amle_expr::{Expr, Sort, Value};
    /// use amle_learner::HistoryLearner;
    /// use amle_system::SystemBuilder;
    ///
    /// let mut b = SystemBuilder::new();
    /// let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120)?;
    /// let on = b.state("s_on", Sort::Bool, Value::Bool(false))?;
    /// let update = b.var(temp).gt(&Expr::int_val(75, 8));
    /// b.update(on, update)?;
    /// let system = b.build()?;
    ///
    /// let config = ActiveLearnerConfig {
    ///     initial_traces: 10,
    ///     trace_length: 10,
    ///     k: 4,
    ///     ..ActiveLearnerConfig::default()
    /// };
    /// let mut learner = ActiveLearner::new(&system, HistoryLearner::default(), config);
    /// let report = learner.run()?;
    /// assert!(report.converged);
    /// // The run's traces lived in an interned store; the report carries its
    /// // sharing statistics alongside the paper's columns.
    /// assert!(report.trace_store.unique_observations > 0);
    /// assert_eq!(report.trace_count, report.trace_store.traces);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ActiveLearnError::BadConfig`] for unusable configurations and
    /// [`ActiveLearnError::Learner`] when the model-learning component fails.
    pub fn run(&mut self) -> Result<RunReport, ActiveLearnError> {
        if self.config.initial_traces == 0 || self.config.trace_length == 0 {
            return Err(ActiveLearnError::BadConfig {
                reason: "initial_traces and trace_length must be positive".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let simulator = Simulator::new(self.system);
        let traces = simulator.random_traces(
            self.config.initial_traces,
            self.config.trace_length,
            &mut rng,
        );
        self.run_with_traces(traces)
    }

    /// Runs the loop starting from a user-supplied initial trace set.
    ///
    /// When `config.parallel.workers > 1` the per-iteration condition checks
    /// are fanned out over that many scoped worker threads, each owning a
    /// forked checker with persistent incremental sessions; results are
    /// merged in condition order and the report is byte-identical to a
    /// sequential run (see [`crate::ParallelConfig`]).
    ///
    /// # Errors
    ///
    /// As for [`ActiveLearner::run`].
    pub fn run_with_traces(&mut self, traces: TraceSet) -> Result<RunReport, ActiveLearnError> {
        let observables = self.observables();
        let workers = self.config.parallel.workers.max(1);
        let (k, max_spurious_rounds) = (self.config.k, self.config.max_spurious_rounds);
        let oracle_config = self.config.oracle;
        let max_iterations = self.config.max_iterations;
        let mut store = TraceStore::from_trace_set(&traces);
        drop(traces);
        // The engine's owned halves: a batch run builds both fresh and drops
        // them with the report. A resident `Session` owns the same pieces and
        // keeps them warm across refinement calls.
        let mut planner = QueryPlanner::new(oracle_config.verdict_cache);
        if workers == 1 {
            let mut oracle = build_oracle(self.system, &oracle_config.settings());
            let engine = SequentialEngine::new(
                self.system,
                &mut *oracle,
                &mut planner,
                observables.clone(),
                k,
                max_spurious_rounds,
            );
            run_refinement(
                self.system,
                &mut self.learner,
                &observables,
                max_iterations,
                &mut store,
                engine,
            )
        } else {
            let system = self.system;
            let learner = &mut self.learner;
            thread::scope(|scope| {
                let engine = WorkerPool::spawn(
                    scope,
                    system,
                    observables.clone(),
                    workers,
                    k,
                    max_spurious_rounds,
                    &oracle_config,
                    &mut planner,
                );
                run_refinement(
                    system,
                    learner,
                    &observables,
                    max_iterations,
                    &mut store,
                    engine,
                )
            })
        }
    }
}

/// The iteration loop of Fig. 1, generic over the condition-checking engine
/// and running over an **externally owned** trace store.
///
/// This is the shared core of the batch [`ActiveLearner`] and the resident
/// [`crate::Session`]: the batch path builds a fresh store from its initial
/// trace set and drops it with the report, while a session keeps the store
/// (plus the engine's oracle and verdict cache) alive across calls, so each
/// refinement continues from the spliced result of the previous one.
///
/// The trace set lives in an interned [`TraceStore`]: the learner consumes
/// it through [`ModelLearner::learn_from_store`] (incremental word
/// conversion and encoding), and counterexamples are spliced in via
/// [`splice_counterexample`] (O(1) shared-prefix splices). Both paths are
/// pinned byte-identical to the flat-trace reference semantics.
pub(crate) fn run_refinement<L: ModelLearner, E: ConditionEngine>(
    system: &System,
    learner: &mut L,
    observables: &[VarId],
    max_iterations: usize,
    store: &mut TraceStore,
    mut engine: E,
) -> Result<RunReport, ActiveLearnError> {
    let start = Instant::now();
    let mut learn_time = Duration::ZERO;
    let mut check_time = Duration::ZERO;
    let mut iteration_stats = Vec::new();
    // The learner accumulates solver and word statistics across its
    // lifetime; snapshot them so the report attributes only this run's
    // work. The expression interner's counters are process-global, so a
    // delta snapshot bounds them to this run the same way.
    let learner_stats_start = learner.solver_stats();
    let word_stats_start = learner.word_stats();
    let interner_start = amle_expr::InternerStats::snapshot();

    let mut abstraction = None;
    let mut conditions: Vec<Condition> = Vec::new();
    let mut alpha = 0.0;
    let mut converged = false;
    let mut iterations = 0;

    for iteration in 1..=max_iterations {
        iterations = iteration;

        // 1. Learn a candidate model from the current trace store.
        let learn_start = Instant::now();
        let words_before = learner.word_stats();
        let candidate = learner.learn_from_store(system.vars(), observables, store)?;
        let iteration_words = learner.word_stats().since(&words_before);
        let iteration_learn_time = learn_start.elapsed();
        learn_time += iteration_learn_time;

        // 2. Extract and check the completeness conditions.
        let check_start = Instant::now();
        let extracted = extract_conditions(&candidate, &system.init_expr());
        let evaluation = engine.evaluate(&extracted);
        let iteration_check_time = check_start.elapsed();
        check_time += iteration_check_time;

        alpha = evaluation.alpha();

        // 3. Splice valid counterexamples into new traces.
        let mut new_traces = 0;
        for (condition, from, to) in &evaluation.counterexamples {
            new_traces += splice_counterexample(store, condition, from, to);
        }

        iteration_stats.push(IterationStats {
            iteration,
            conditions: evaluation.total,
            conditions_holding: evaluation.held,
            alpha,
            new_traces,
            spurious_counterexamples: evaluation.spurious,
            inconclusive_counterexamples: evaluation.inconclusive,
            model_states: candidate.num_states(),
            model_transitions: candidate.num_transitions(),
            learn_time: iteration_learn_time,
            check_time: iteration_check_time,
            words_encoded: iteration_words.words_encoded,
            words_reused: iteration_words.words_reused,
            cache_hits: evaluation.cache_hits,
            conditions_solved: evaluation.solved,
        });

        conditions = extracted;
        abstraction = Some(candidate);

        if alpha >= 1.0 {
            converged = true;
            break;
        }
        if new_traces == 0 {
            // No progress is possible: every violated condition produced
            // only already-known traces (or none at all).
            break;
        }
    }

    let abstraction = abstraction.expect("at least one iteration ran");
    let invariants = conditions
        .iter()
        .map(|c| Invariant {
            assumption: c.assumption.clone(),
            conclusion: c.conclusion(),
        })
        .collect();

    let engine_stats = engine.finish();
    Ok(RunReport {
        abstraction,
        alpha,
        iterations,
        converged,
        invariants,
        iteration_stats,
        trace_count: store.len(),
        total_time: start.elapsed(),
        learn_time,
        check_time,
        checker_stats: engine_stats.checker,
        verdict_cache: engine_stats.cache,
        learner_solver_stats: learner.solver_stats().since(&learner_stats_start),
        word_stats: learner.word_stats().since(&word_stats_start),
        trace_store: store.stats(),
        interner: amle_expr::InternerStats::snapshot().since(&interner_start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Expr, Sort, Value};
    #[allow(unused_imports)]
    use amle_learner::ModelLearner as _;
    use amle_learner::{HistoryLearner, LstarLearner};
    use amle_system::SystemBuilder;

    /// The Fig. 2 home climate-control cooler.
    fn cooler() -> System {
        let mut b = SystemBuilder::new();
        b.name("HomeClimateControl");
        let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    /// A two-bit saturating counter with a mode flag — needs several
    /// iterations because random traces rarely reach saturation quickly.
    fn counter_with_flag() -> System {
        let mut b = SystemBuilder::new();
        b.name("CountEvents");
        let tick = b.input("tick", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        let full = b.state("full", Sort::Bool, Value::Bool(false)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(9, 4))
            .ite(&ce.add(&Expr::int_val(1, 4)), &ce);
        let next = b.var(tick).ite(&bumped, &ce);
        b.update(c, next.clone()).unwrap();
        b.update(full, next.ge(&Expr::int_val(9, 4))).unwrap();
        b.build().unwrap()
    }

    fn quick_config() -> ActiveLearnerConfig {
        ActiveLearnerConfig {
            initial_traces: 15,
            trace_length: 15,
            k: 6,
            max_iterations: 15,
            ..Default::default()
        }
    }

    #[test]
    fn cooler_converges_to_a_complete_model() {
        let sys = cooler();
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        let report = learner.run().unwrap();
        assert!(
            report.converged,
            "expected convergence, got α = {}",
            report.alpha
        );
        assert_eq!(report.alpha, 1.0);
        assert!(report.num_states() >= 1);
        assert!(!report.invariants.is_empty());
        assert!(report.iterations >= 1);
        assert_eq!(report.iteration_stats.len(), report.iterations);
    }

    #[test]
    fn final_model_admits_fresh_random_traces() {
        let sys = cooler();
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        let report = learner.run().unwrap();
        assert!(report.converged);
        // Theorem 1: the final abstraction admits every system trace. Sample
        // fresh traces with a different seed and verify.
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..20 {
            let t = sim.random_trace(30, &mut rng);
            assert!(report.abstraction.accepts_trace(&t), "fresh trace rejected");
        }
    }

    #[test]
    fn counter_system_requires_iterations_and_converges() {
        let sys = counter_with_flag();
        let config = ActiveLearnerConfig {
            initial_traces: 10,
            trace_length: 6,
            k: 20,
            max_iterations: 30,
            ..Default::default()
        };
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::new(1), config);
        let report = learner.run().unwrap();
        assert!(
            report.converged,
            "α = {} after {} iterations",
            report.alpha, report.iterations
        );
        // Short random traces rarely witness the saturation behaviour, so at
        // least one refinement iteration is expected.
        assert!(report.iterations >= 1);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..10 {
            let t = sim.random_trace(40, &mut rng);
            assert!(report.abstraction.accepts_trace(&t));
        }
    }

    #[test]
    fn lstar_is_a_valid_pluggable_component() {
        let sys = cooler();
        let config = ActiveLearnerConfig {
            initial_traces: 5,
            trace_length: 6,
            k: 4,
            max_iterations: 10,
            ..Default::default()
        };
        let mut learner = ActiveLearner::new(&sys, LstarLearner::default(), config);
        let report = learner.run().unwrap();
        assert!(report.alpha > 0.0);
    }

    #[test]
    fn alpha_is_monotone_in_practice_for_the_cooler() {
        let sys = cooler();
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        let report = learner.run().unwrap();
        // α of the final iteration must be the maximum seen (the loop stops
        // at 1.0 and otherwise keeps adding behaviours).
        let max_alpha = report
            .iteration_stats
            .iter()
            .map(|s| s.alpha)
            .fold(0.0f64, f64::max);
        assert!(report.alpha >= max_alpha - 1e-9);
    }

    #[test]
    fn solver_stats_flow_into_the_report() {
        let sys = cooler();
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        let report = learner.run().unwrap();
        // The checking phase issues SAT queries through the incremental
        // backend, so aggregated solve calls must be visible in the report.
        assert!(report.checker_stats.solver.solve_calls > 0);
        assert!(report.checker_stats.sat_queries > 0);
        assert_eq!(
            report.checker_stats.solver.solve_calls,
            report.checker_stats.sat_queries
        );
        assert!(report.solver_stats().solve_calls >= report.checker_stats.solver.solve_calls);
        // The history learner does not use SAT.
        assert_eq!(report.learner_solver_stats.solve_calls, 0);
    }

    #[test]
    fn sat_learner_solver_stats_flow_into_the_report() {
        let sys = cooler();
        // Restrict the abstraction to the boolean mode variable: over the full
        // valuation space the 8-bit input yields a large abstract alphabet and
        // exact DFA identification is not tractable in a unit test.
        let on = sys.vars().lookup("s_on").unwrap();
        let config = ActiveLearnerConfig {
            observables: Some(vec![on]),
            initial_traces: 5,
            trace_length: 6,
            k: 4,
            max_iterations: 4,
            ..Default::default()
        };
        let mut learner = ActiveLearner::new(&sys, amle_learner::SatDfaLearner::default(), config);
        let report = learner.run().unwrap();
        assert!(report.learner_solver_stats.solve_calls > 0);
        assert!(report.solver_stats().solve_calls > report.checker_stats.solver.solve_calls);

        // The learner accumulates stats across its lifetime, but each report
        // must attribute only its own run: an identical second run (same
        // seed, same traces) reports the same per-run solve count, not the
        // cumulative total.
        let second = learner.run().unwrap();
        assert_eq!(
            second.learner_solver_stats.solve_calls,
            report.learner_solver_stats.solve_calls
        );
    }

    #[test]
    fn parallel_engine_reports_match_sequential_byte_for_byte() {
        for system in [cooler(), counter_with_flag()] {
            let mut config = quick_config();
            config.parallel = ParallelConfig::with_workers(1);
            let sequential = ActiveLearner::new(&system, HistoryLearner::default(), config.clone())
                .run()
                .unwrap();
            config.parallel = ParallelConfig::with_workers(4);
            let parallel = ActiveLearner::new(&system, HistoryLearner::default(), config)
                .run()
                .unwrap();
            assert_eq!(sequential.abstraction, parallel.abstraction);
            assert_eq!(
                sequential.semantic_fingerprint(system.vars()),
                parallel.semantic_fingerprint(system.vars()),
                "worker count leaked into the report for {}",
                system.name()
            );
        }
    }

    #[test]
    fn observables_default_to_all_variables() {
        let sys = cooler();
        let learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        assert_eq!(learner.observables().len(), 2);
    }

    #[test]
    fn bad_config_is_rejected() {
        let sys = cooler();
        let config = ActiveLearnerConfig {
            initial_traces: 0,
            ..Default::default()
        };
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), config);
        assert!(matches!(
            learner.run(),
            Err(ActiveLearnError::BadConfig { .. })
        ));
    }

    #[test]
    fn run_with_explicit_traces() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(5);
        let traces = sim.random_traces(10, 10, &mut rng);
        let mut learner = ActiveLearner::new(&sys, HistoryLearner::default(), quick_config());
        let report = learner.run_with_traces(traces).unwrap();
        assert!(report.trace_count >= 1);
        assert!(report.total_time >= report.learn_time);
    }

    /// Drives the reference flat-trace splicing and the store-backed
    /// splicing with the same counterexample sequence and asserts the
    /// resulting trace sets are observation-for-observation identical
    /// (content *and* insertion order), and that both report the same
    /// new-trace counts.
    fn assert_splicing_differential(
        system: &System,
        initial: &TraceSet,
        counterexamples: &[(Condition, Valuation, Valuation)],
    ) {
        let _ = system;
        let mut reference = initial.clone();
        let mut store = TraceStore::from_trace_set(initial);
        for (condition, from, to) in counterexamples {
            let mut reference_new = 0;
            for trace in counterexample_traces(condition, from, to, &reference) {
                if reference.insert(trace) {
                    reference_new += 1;
                }
            }
            let store_new = splice_counterexample(&mut store, condition, from, to);
            assert_eq!(store_new, reference_new, "new-trace counts diverged");
        }
        let materialized = store.to_trace_set();
        assert_eq!(
            materialized.len(),
            reference.len(),
            "trace counts diverged after splicing"
        );
        for (got, want) in materialized.iter().zip(reference.iter()) {
            assert_eq!(
                got.observations(),
                want.observations(),
                "spliced traces diverged observation-for-observation"
            );
        }
    }

    /// Conditions extracted from a model learned on the system's own random
    /// traces, plus concrete counterexample transitions sampled from fresh
    /// simulations — a realistic splicing workload without running the
    /// checker.
    fn splicing_workload(
        system: &System,
        seed: u64,
    ) -> (TraceSet, Vec<(Condition, Valuation, Valuation)>) {
        let sim = Simulator::new(system);
        let mut rng = StdRng::seed_from_u64(seed);
        let traces = sim.random_traces(10, 8, &mut rng);
        let model = HistoryLearner::default()
            .learn(system.vars(), &system.all_vars(), &traces)
            .unwrap();
        let conditions = extract_conditions(&model, &system.init_expr());
        let mut counterexamples = Vec::new();
        for (i, condition) in conditions.iter().enumerate() {
            let probe = sim.random_trace(6, &mut rng);
            let step = probe.steps().nth(i % 5);
            if let Some((from, to)) = step {
                counterexamples.push((condition.clone(), from.clone(), to.clone()));
            }
        }
        assert!(
            counterexamples.len() >= 3,
            "workload should exercise several conditions"
        );
        (traces, counterexamples)
    }

    #[test]
    fn store_splicing_matches_reference_on_the_cooler() {
        let system = cooler();
        let (traces, counterexamples) = splicing_workload(&system, 0xC0);
        assert_splicing_differential(&system, &traces, &counterexamples);
    }

    #[test]
    fn store_splicing_matches_reference_on_a_synthetic_family() {
        let benchmark = amle_benchmarks::benchmark_by_name("SynthModularArithM5")
            .or_else(|| {
                amle_benchmarks::full_suite()
                    .into_iter()
                    .find(|b| b.name.starts_with("Synth"))
            })
            .expect("a synthetic benchmark exists");
        let (traces, counterexamples) = splicing_workload(&benchmark.system, 0x5E);
        assert_splicing_differential(&benchmark.system, &traces, &counterexamples);
    }

    #[test]
    fn duplicate_prefix_splices_are_emitted_once() {
        // Two traces with the same qualifying prefix: the reference path
        // builds both candidates and dedupes on insert; the store path must
        // emit the splice once and report one new trace — and a third trace
        // with a *different* qualifying prefix still yields its own splice.
        let sys = cooler();
        let temp = sys.vars().lookup("inp_temp").unwrap();
        let on = sys.vars().lookup("s_on").unwrap();
        let mk = |t: i64, o: bool| {
            let mut v = sys.initial_valuation();
            v.set(temp, Value::Int(t));
            v.set(on, Value::Bool(o));
            v
        };
        let mut traces = TraceSet::new();
        // Shared prefix [10, 80*] before the first `s_on` observation.
        traces.insert(Trace::new(vec![mk(10, false), mk(80, true), mk(90, true)]));
        traces.insert(Trace::new(vec![mk(10, false), mk(80, true), mk(20, false)]));
        // Different prefix [30] before its first `s_on` observation.
        traces.insert(Trace::new(vec![mk(30, false), mk(95, true)]));

        let condition = Condition {
            kind: ConditionKind::State {
                state: amle_automaton::StateId::from_index(0),
            },
            assumption: sys.var(on),
            outgoing: vec![Expr::true_()],
        };
        let from = mk(85, true);
        let to = mk(20, true);

        let mut store = TraceStore::from_trace_set(&traces);
        let inserted = splice_counterexample(&mut store, &condition, &from, &to);
        assert_eq!(inserted, 2, "one splice per distinct qualifying prefix");
        assert_eq!(store.len(), traces.len() + 2);

        // And the result matches the reference path exactly.
        assert_splicing_differential(&sys, &traces, &[(condition, from, to)]);
    }

    #[test]
    fn counterexample_trace_splicing() {
        let sys = cooler();
        let temp = sys.vars().lookup("inp_temp").unwrap();
        let on = sys.vars().lookup("s_on").unwrap();
        let mk = |t: i64, o: bool| {
            let mut v = sys.initial_valuation();
            v.set(temp, Value::Int(t));
            v.set(on, Value::Bool(o));
            v
        };
        let mut traces = TraceSet::new();
        traces.insert(Trace::new(vec![mk(10, false), mk(80, false), mk(90, true)]));

        let condition = Condition {
            kind: ConditionKind::State {
                state: amle_automaton::StateId::from_index(0),
            },
            assumption: sys.var(on),
            outgoing: vec![Expr::true_()],
        };
        let from = mk(85, true);
        let to = mk(20, true);
        let spliced = counterexample_traces(&condition, &from, &to, &traces);
        assert_eq!(spliced.len(), 1);
        // The prefix before the first observation satisfying `s_on` has
        // length 2, so the new trace is v1, v2, from, to.
        assert_eq!(spliced[0].len(), 4);
        assert_eq!(spliced[0].observations()[2], from);
        assert_eq!(spliced[0].observations()[3], to);

        // Initial-condition counterexamples become single-observation traces.
        let initial_condition = Condition {
            kind: ConditionKind::Initial,
            assumption: Expr::true_(),
            outgoing: vec![],
        };
        let spliced = counterexample_traces(&initial_condition, &from, &to, &traces);
        assert_eq!(spliced.len(), 1);
        assert_eq!(spliced[0].len(), 1);

        // With no matching prefix the counterexample still becomes a trace.
        let unmatched = Condition {
            kind: ConditionKind::State {
                state: amle_automaton::StateId::from_index(0),
            },
            assumption: Expr::false_(),
            outgoing: vec![],
        };
        let spliced = counterexample_traces(&unmatched, &from, &to, &traces);
        assert_eq!(spliced.len(), 1);
        assert_eq!(spliced[0].len(), 2);
    }
}
