//! Extraction of completeness conditions from a candidate abstraction
//! (Eqs. 1 and 2 of the paper), plus the memoised assumption evaluator the
//! splicing step uses to find qualifying trace prefixes.

use amle_automaton::{Nfa, StateId};
use amle_expr::{Expr, Valuation};
use amle_system::ObsId;

/// Which of the paper's two condition shapes a [`Condition`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionKind {
    /// Condition (1): successors of initial system states must satisfy some
    /// outgoing predicate of an initial automaton state.
    Initial,
    /// Condition (2): from any state satisfying an incoming predicate of an
    /// automaton state, every transition's successor must satisfy some
    /// outgoing predicate of that state.
    State {
        /// The automaton state the condition was extracted from.
        state: StateId,
    },
}

/// One completeness condition of the form
/// `v ⊨ assumption ∧ (v, v') ⊨ R ⟹ v' ⊨ ⋁ outgoing`.
///
/// When every extracted condition holds, Theorem 1 of the paper guarantees
/// `Traces_X(S) ⊆ L(M)`; the conditions then serve as invariants of the
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Whether this is the initial-state condition or a per-state condition.
    pub kind: ConditionKind,
    /// The assumption `r` on the pre-state (`Init` for the initial condition,
    /// an incoming predicate otherwise).
    pub assumption: Expr,
    /// The outgoing predicates whose disjunction must hold on the post-state.
    pub outgoing: Vec<Expr>,
}

impl Condition {
    /// The conclusion of the condition: the disjunction of the outgoing
    /// predicates (`false` for a state with no outgoing transitions).
    pub fn conclusion(&self) -> Expr {
        Expr::or_all(self.outgoing.iter().cloned())
    }

    /// Renders the condition as an implication `assumption ∧ R ⟹ conclusion'`.
    pub fn as_implication(&self) -> Expr {
        self.assumption.implies(&self.conclusion())
    }
}

/// Memoised evaluation of one condition's assumption over interned
/// observations.
///
/// The splicing step of Section III-B scans every stored trace for its first
/// observation satisfying the violated condition's assumption. With a flat
/// trace set that evaluates the assumption expression once per observation
/// *occurrence*; interning makes the evaluation a per-distinct-observation
/// memo lookup, which is what keeps splicing cheap on heavily shared trace
/// sets.
pub(crate) struct AssumptionMemo<'c> {
    assumption: &'c Expr,
    memo: Vec<Option<bool>>,
}

impl<'c> AssumptionMemo<'c> {
    /// Creates a memo for `assumption` over a store currently holding
    /// `num_observations` interned observations.
    pub fn new(assumption: &'c Expr, num_observations: usize) -> Self {
        AssumptionMemo {
            assumption,
            memo: vec![None; num_observations],
        }
    }

    /// Whether the assumption holds on the observation, evaluating the
    /// expression at most once per distinct observation id.
    pub fn eval(&mut self, obs: ObsId, valuation: &Valuation) -> bool {
        match self.memo[obs.index()] {
            Some(holds) => holds,
            None => {
                let holds = self.assumption.eval_bool(valuation);
                self.memo[obs.index()] = Some(holds);
                holds
            }
        }
    }
}

/// Extracts the full set of completeness conditions from a candidate
/// abstraction, given the system's initial-state constraint.
///
/// One condition of kind [`ConditionKind::Initial`] is produced (Eq. 1 of the
/// paper), plus one condition of kind [`ConditionKind::State`] per pair of an
/// automaton state and an incoming predicate of that state (Eq. 2).
pub fn extract_conditions(nfa: &Nfa, init: &Expr) -> Vec<Condition> {
    let mut conditions = Vec::new();
    conditions.push(Condition {
        kind: ConditionKind::Initial,
        assumption: init.clone(),
        outgoing: nfa.initial_outgoing_predicates(),
    });
    for state in nfa.states() {
        let outgoing = nfa.outgoing_predicates(state);
        for incoming in nfa.incoming_predicates(state) {
            conditions.push(Condition {
                kind: ConditionKind::State { state },
                assumption: incoming,
                outgoing: outgoing.clone(),
            });
        }
    }
    conditions
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Valuation, Value, VarId, VarSet};

    fn fixture() -> (VarSet, Nfa, Expr) {
        let mut vars = VarSet::new();
        let on = vars.declare("on", Sort::Bool).unwrap();
        let one = Expr::var(on, Sort::Bool);
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q1, one.clone());
        nfa.add_transition(q1, q0, one.not());
        nfa.add_transition(q1, q1, one.clone());
        (vars, nfa, one.not())
    }

    #[test]
    fn extraction_counts() {
        let (_, nfa, init) = fixture();
        let conditions = extract_conditions(&nfa, &init);
        // 1 initial + one per (state, incoming predicate): q0 has one incoming
        // (from q1), q1 has two incoming (from q0 and its self-loop).
        assert_eq!(conditions.len(), 1 + 1 + 2);
        assert_eq!(
            conditions
                .iter()
                .filter(|c| c.kind == ConditionKind::Initial)
                .count(),
            1
        );
        let q1 = StateId::from_index(1);
        assert_eq!(
            conditions
                .iter()
                .filter(|c| c.kind == (ConditionKind::State { state: q1 }))
                .count(),
            2
        );
    }

    #[test]
    fn initial_condition_uses_init_and_initial_outgoing() {
        let (_, nfa, init) = fixture();
        let conditions = extract_conditions(&nfa, &init);
        let initial = &conditions[0];
        assert_eq!(initial.assumption, init);
        assert_eq!(initial.outgoing.len(), 1);
    }

    #[test]
    fn conclusion_is_disjunction_of_outgoing() {
        let (vars, nfa, init) = fixture();
        let conditions = extract_conditions(&nfa, &init);
        // Find a condition for q1: its conclusion must hold both when on is
        // true (self-loop) and when on is false (edge back to q0).
        let q1 = StateId::from_index(1);
        let condition = conditions
            .iter()
            .find(|c| c.kind == (ConditionKind::State { state: q1 }))
            .unwrap();
        let mut v = Valuation::zeroed(&vars);
        assert!(condition.conclusion().eval_bool(&v));
        v.set(VarId::from_index(0), Value::Bool(true));
        assert!(condition.conclusion().eval_bool(&v));
    }

    #[test]
    fn dead_end_state_yields_false_conclusion() {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        nfa.mark_initial(q0);
        nfa.add_transition(q0, q1, Expr::true_());
        let conditions = extract_conditions(&nfa, &Expr::true_());
        let dead_end = conditions
            .iter()
            .find(|c| c.kind == (ConditionKind::State { state: q1 }))
            .unwrap();
        assert!(dead_end.conclusion().is_false());
        assert_eq!(dead_end.as_implication().to_string(), "(true => false)");
    }
}
