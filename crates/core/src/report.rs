//! Run reports, per-iteration statistics and extracted invariants.

use crate::engine::VerdictCacheStats;
use amle_automaton::{display_expr, Nfa};
use amle_checker::CheckerStats;
use amle_expr::{Expr, InternerStats, VarSet};
use amle_learner::WordStats;
use amle_sat::SolverStats;
use amle_system::TraceStoreStats;
use std::time::Duration;

/// An invariant of the implementation, extracted from the final abstraction:
/// every system transition from a state satisfying `assumption` leads to a
/// state satisfying `conclusion`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// The pre-state assumption `r`.
    pub assumption: Expr,
    /// The post-state guarantee `s` (a disjunction of outgoing predicates).
    pub conclusion: Expr,
}

impl Invariant {
    /// Renders the invariant with variable names, e.g.
    /// `(s_on) ∧ R ⟹ (inp_temp > 75 || !s_on')`.
    pub fn display(&self, vars: &VarSet) -> String {
        format!(
            "{} && R(X, X') => {}'",
            display_expr(&self.assumption, vars),
            display_expr(&self.conclusion, vars)
        )
    }
}

/// Statistics of one learning iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Iteration number, starting at 1.
    pub iteration: usize,
    /// Number of completeness conditions extracted from the candidate model.
    pub conditions: usize,
    /// Number of conditions that held.
    pub conditions_holding: usize,
    /// Degree of completeness `α` of the candidate model.
    pub alpha: f64,
    /// Number of valid counterexamples converted into new traces.
    pub new_traces: usize,
    /// Number of counterexamples proven spurious (and blocked).
    pub spurious_counterexamples: usize,
    /// Number of inconclusive counterexamples (treated as valid, recorded).
    pub inconclusive_counterexamples: usize,
    /// Number of states of the candidate model.
    pub model_states: usize,
    /// Number of transitions of the candidate model.
    pub model_transitions: usize,
    /// Wall-clock time spent in the model-learning component this iteration.
    pub learn_time: Duration,
    /// Wall-clock time spent in condition checking this iteration.
    pub check_time: Duration,
    /// Abstract words the learner converted and encoded this iteration.
    /// With an incremental learner this stays proportional to the *new*
    /// traces per iteration instead of the full trace count.
    pub words_encoded: u64,
    /// Abstract words the learner reused from its incremental cache this
    /// iteration (zero for non-incremental learners).
    pub words_reused: u64,
    /// Conditions answered by the cross-iteration verdict cache this
    /// iteration (no oracle query at all).
    pub cache_hits: usize,
    /// Conditions actually solved by a condition oracle this iteration.
    pub conditions_solved: usize,
}

/// The result of an active-learning run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The final learned abstraction `M'`.
    pub abstraction: Nfa,
    /// Degree of completeness of the final abstraction (1.0 when converged).
    pub alpha: f64,
    /// Number of model-learning iterations performed (the paper's `i`).
    pub iterations: usize,
    /// `true` when every extracted condition was proven to hold.
    pub converged: bool,
    /// The conditions extracted from the final abstraction; when `converged`
    /// they are invariants of the implementation.
    pub invariants: Vec<Invariant>,
    /// Per-iteration statistics.
    pub iteration_stats: Vec<IterationStats>,
    /// Number of traces in the final training set.
    pub trace_count: usize,
    /// Total wall-clock time of the run (the paper's `T`).
    pub total_time: Duration,
    /// Total wall-clock time spent in the model-learning component.
    pub learn_time: Duration,
    /// Total wall-clock time spent in model checking.
    pub check_time: Duration,
    /// Model-checker statistics, including the aggregated backend SAT-solver
    /// statistics of the checking phase (`checker_stats.solver`) and the
    /// per-engine query attribution of the oracle portfolio.
    pub checker_stats: CheckerStats,
    /// Statistics of the cross-iteration verdict cache (hits, misses, live
    /// entries). All zero when the cache is disabled.
    pub verdict_cache: VerdictCacheStats,
    /// Aggregated backend SAT-solver statistics of the model-learning phase
    /// (zero for learners that do not reason with SAT).
    pub learner_solver_stats: SolverStats,
    /// Aggregated word-pipeline statistics of the model-learning phase:
    /// how much word conversion/encoding work ran versus how much the
    /// learner's incremental cache absorbed.
    pub word_stats: WordStats,
    /// Final statistics of the interned trace store the run accumulated its
    /// traces in (unique observations, shared segments, bytes saved).
    pub trace_store: TraceStoreStats,
    /// Expression-interner traffic during this run (nodes interned, intern
    /// hits, canonical rewrites applied). The underlying counters are
    /// process-global, so when several runs execute concurrently (the
    /// sharded suite) a run's delta includes its neighbours' traffic — a
    /// load indicator, deliberately excluded from the semantic fingerprint.
    pub interner: InternerStats,
}

impl RunReport {
    /// The percentage of total runtime attributed to model learning (the
    /// paper's `%Tm` column). Returns 0 when the total time is zero.
    pub fn learn_time_percentage(&self) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total <= f64::EPSILON {
            0.0
        } else {
            100.0 * self.learn_time.as_secs_f64() / total
        }
    }

    /// Number of states of the final abstraction (the paper's `N` column).
    pub fn num_states(&self) -> usize {
        self.abstraction.num_states()
    }

    /// Combined backend SAT-solver statistics across the checking and
    /// learning phases of the run.
    pub fn solver_stats(&self) -> SolverStats {
        self.checker_stats.solver + self.learner_solver_stats
    }

    /// A canonical rendering of every semantically meaningful field of the
    /// report: the learned automaton (as DOT), the extracted invariants, the
    /// convergence data and the per-iteration verdict trajectory.
    ///
    /// Wall-clock durations and *work* counters — SAT query counts, solver
    /// internals, explicit-engine work units, verdict-cache hit counts — are
    /// excluded: they legitimately vary between worker counts, oracle
    /// engines and cache settings, while the semantics (which conditions
    /// held, which counterexamples were found, what was learned) must not.
    /// Everything that remains is guaranteed byte-identical across
    /// condition-engine worker counts, across `--engine
    /// kinduction`/`explicit`/`portfolio` and across verdict-cache on/off,
    /// which is what the differential tests and the suite runner's
    /// `--compare` mode assert.
    pub fn semantic_fingerprint(&self, vars: &VarSet) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "alpha={} iterations={} converged={} traces={}",
            self.alpha, self.iterations, self.converged, self.trace_count
        );
        for s in &self.iteration_stats {
            let _ = writeln!(
                out,
                "iter {}: conditions={}/{} alpha={} new_traces={} spurious={} inconclusive={} states={} transitions={}",
                s.iteration,
                s.conditions_holding,
                s.conditions,
                s.alpha,
                s.new_traces,
                s.spurious_counterexamples,
                s.inconclusive_counterexamples,
                s.model_states,
                s.model_transitions
            );
        }
        for invariant in &self.invariants {
            let _ = writeln!(out, "invariant: {}", invariant.display(vars));
        }
        out.push_str(&self.abstraction.to_dot(vars));
        out
    }
}

/// A short, stable digest of a fingerprint string (FNV-1a 64, rendered as
/// 16 hex digits): compact enough to commit next to the CI workflow, to
/// accumulate in `BENCH_*.json` trajectories and to stream over the serving
/// protocol, yet any semantic drift in the underlying report changes it.
pub fn fingerprint_digest(fingerprint: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in fingerprint.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, VarSet};

    #[test]
    fn invariant_display_uses_names() {
        let mut vars = VarSet::new();
        let on = vars.declare("s_on", Sort::Bool).unwrap();
        let inv = Invariant {
            assumption: Expr::var(on, Sort::Bool),
            conclusion: Expr::var(on, Sort::Bool).not(),
        };
        let text = inv.display(&vars);
        assert!(text.contains("s_on"));
        assert!(text.contains("R(X, X')"));
    }

    #[test]
    fn learn_time_percentage() {
        let report = RunReport {
            abstraction: Nfa::new(),
            alpha: 1.0,
            iterations: 1,
            converged: true,
            invariants: Vec::new(),
            iteration_stats: Vec::new(),
            trace_count: 0,
            total_time: Duration::from_millis(200),
            learn_time: Duration::from_millis(50),
            check_time: Duration::from_millis(150),
            checker_stats: CheckerStats::default(),
            verdict_cache: VerdictCacheStats::default(),
            learner_solver_stats: SolverStats::default(),
            word_stats: WordStats::default(),
            trace_store: TraceStoreStats::default(),
            interner: InternerStats::default(),
        };
        assert!((report.learn_time_percentage() - 25.0).abs() < 1e-9);
        assert_eq!(report.num_states(), 0);

        let zero = RunReport {
            total_time: Duration::ZERO,
            ..report
        };
        assert_eq!(zero.learn_time_percentage(), 0.0);
    }
}
