//! # amle-core
//!
//! The paper's primary contribution: an active model-learning loop that
//! combines a pluggable passive learner (black-box, `amle-learner`) with
//! software model checking (white-box, `amle-checker`) to produce an
//! abstraction that provably admits **all** system behaviours over a chosen
//! set of observable variables.
//!
//! The loop (Fig. 1 of the paper):
//!
//! 1. generate an initial trace set `T` by executing the system on random
//!    inputs;
//! 2. learn a candidate NFA `M` from `T`;
//! 3. extract the completeness conditions (1) and (2) from the structure of
//!    `M` ([`extract_conditions`]) and check each against the system with
//!    k-induction;
//! 4. classify counterexamples as valid or spurious (Fig. 3b), strengthen
//!    assumptions for spurious ones, and splice valid ones onto matching
//!    trace prefixes to form new traces `T_CE`;
//! 5. if every condition holds (`α = 1`), return `M` together with the
//!    conditions, which are now invariants of the implementation; otherwise
//!    set `T ← T ∪ T_CE` and repeat.
//!
//! The crate also contains the passive random-sampling baseline used in the
//! paper's comparison (Section IV-C).
//!
//! ## Example
//!
//! ```
//! use amle_core::{ActiveLearner, ActiveLearnerConfig};
//! use amle_expr::{Expr, Sort, Value};
//! use amle_learner::HistoryLearner;
//! use amle_system::SystemBuilder;
//!
//! // The Fig. 2 climate-control cooler: the mode follows a temperature
//! // threshold.
//! let mut b = SystemBuilder::new();
//! let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120)?;
//! let on = b.state("s_on", Sort::Bool, Value::Bool(false))?;
//! let update = b.var(temp).gt(&Expr::int_val(75, 8));
//! b.update(on, update)?;
//! let system = b.build()?;
//!
//! let config = ActiveLearnerConfig {
//!     initial_traces: 10,
//!     trace_length: 10,
//!     k: 4,
//!     ..ActiveLearnerConfig::default()
//! };
//! let mut learner = ActiveLearner::new(&system, HistoryLearner::default(), config);
//! let report = learner.run()?;
//! assert!(report.converged);
//! assert_eq!(report.alpha, 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baseline;
mod conditions;
mod engine;
mod learner_loop;
mod report;
mod session;

pub use baseline::{random_sampling_baseline, BaselineReport};
pub use conditions::{extract_conditions, Condition, ConditionKind};
pub use engine::{OracleConfig, ParallelConfig, VerdictCacheStats};
pub use learner_loop::{ActiveLearnError, ActiveLearner, ActiveLearnerConfig};
pub use report::{fingerprint_digest, Invariant, IterationStats, RunReport};
pub use session::{IngestOutcome, Session, SessionStats};

// The interned trace container the loop accumulates its traces in, and the
// statistics types surfaced through `RunReport` — re-exported so harnesses
// need not depend on the system/learner/checker/sat crates directly.
pub use amle_checker::{CheckerStats, ConditionOracle, OracleKind};
pub use amle_expr::InternerStats;
pub use amle_learner::WordStats;
pub use amle_sat::{PhaseMode, RestartStrategy, SolverConfig, SolverStats};
pub use amle_system::{ObsId, SegmentId, TraceId, TraceStore, TraceStoreStats};

#[cfg(test)]
mod proptests;
