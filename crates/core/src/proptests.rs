//! Property-based tests of the end-to-end active-learning loop.
//!
//! The central property is the paper's Theorem 1: when the loop converges
//! (`α = 1`), the learned abstraction admits every system trace — checked by
//! sampling fresh random traces with seeds the learner never saw.

use crate::{ActiveLearner, ActiveLearnerConfig};
use amle_expr::{Expr, Sort, Value};
use amle_learner::HistoryLearner;
use amle_system::{Simulator, System, SystemBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parametric threshold controller (the Fig. 2 shape) with a configurable
/// threshold.
fn threshold_controller(threshold: i64) -> System {
    let mut b = SystemBuilder::new();
    b.name("threshold_controller");
    let temp = b.input_in_range("temp", Sort::int(7), 0, 120).unwrap();
    let on = b.state("on", Sort::Bool, Value::Bool(false)).unwrap();
    let update = b.var(temp).gt(&Expr::int_val(threshold, 7));
    b.update(on, update).unwrap();
    b.build().unwrap()
}

/// A parametric mod-N counter with an enable input.
fn mod_counter(n: i64) -> System {
    let mut b = SystemBuilder::new();
    b.name("mod_counter");
    let en = b.input("en", Sort::Bool).unwrap();
    let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
    let ce = b.var(c);
    let wrapped = ce
        .add(&Expr::int_val(1, 4))
        .ge(&Expr::int_val(n, 4))
        .ite(&Expr::int_val(0, 4), &ce.add(&Expr::int_val(1, 4)));
    b.update(c, b.var(en).ite(&wrapped, &ce)).unwrap();
    b.build().unwrap()
}

fn check_theorem_1(system: &System, config: ActiveLearnerConfig) -> Result<(), TestCaseError> {
    let mut learner = ActiveLearner::new(system, HistoryLearner::default(), config);
    let report = learner.run().expect("active learning must not error");
    prop_assert!(
        report.converged,
        "loop did not converge: α = {}",
        report.alpha
    );
    let sim = Simulator::new(system);
    let mut rng = StdRng::seed_from_u64(0xFEED_5EED);
    for _ in 0..15 {
        let fresh = sim.random_trace(25, &mut rng);
        prop_assert!(
            report.abstraction.accepts_trace(&fresh),
            "converged abstraction rejected a fresh system trace"
        );
    }
    // The paper's prefix-closure argument: every prefix must be admitted too.
    let fresh = sim.random_trace(12, &mut rng);
    for k in 0..=fresh.len() {
        prop_assert!(report.abstraction.accepts(&fresh.observations()[..k]));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn theorem_1_holds_for_threshold_controllers(threshold in 20i64..100, seed in 0u64..50) {
        let system = threshold_controller(threshold);
        let config = ActiveLearnerConfig {
            initial_traces: 10,
            trace_length: 10,
            k: 4,
            max_iterations: 15,
            seed,
            ..Default::default()
        };
        check_theorem_1(&system, config)?;
    }

    #[test]
    fn theorem_1_holds_for_mod_counters(n in 2i64..9, seed in 0u64..50) {
        let system = mod_counter(n);
        let config = ActiveLearnerConfig {
            initial_traces: 8,
            trace_length: 6,
            k: (2 * n) as usize,
            max_iterations: 40,
            seed,
            ..Default::default()
        };
        check_theorem_1(&system, config)?;
    }

    #[test]
    fn iteration_count_never_exceeds_the_bound(threshold in 20i64..100, max_iterations in 1usize..6) {
        let system = threshold_controller(threshold);
        let config = ActiveLearnerConfig {
            initial_traces: 5,
            trace_length: 5,
            k: 4,
            max_iterations,
            ..Default::default()
        };
        let mut learner = ActiveLearner::new(&system, HistoryLearner::default(), config);
        let report = learner.run().expect("run");
        prop_assert!(report.iterations <= max_iterations);
        prop_assert_eq!(report.iteration_stats.len(), report.iterations);
    }
}
