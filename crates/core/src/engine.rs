//! The condition-checking engine: sequential and parallel execution of the
//! per-iteration completeness-condition checks.
//!
//! Checking the extracted conditions dominates the wall-clock time of an
//! active-learning iteration, and the conditions are mutually independent:
//! each one is decided by its own SAT queries, and the spurious-counterexample
//! re-check loop of a condition only strengthens that condition's own
//! assumption. The engine exploits this by fanning conditions out over a pool
//! of [`std::thread::scope`] workers, each owning a private fork
//! ([`amle_checker::KInductionChecker::fork`]) of the k-induction checker with
//! its own persistent incremental solver sessions.
//!
//! **Determinism guarantee.** The merged [`ConditionEvaluation`] is
//! byte-identical for every worker count, including 1:
//!
//! * verdicts (`Valid`/`Violated`, `Spurious`/`Reachable`/`Inconclusive`) are
//!   satisfiability results, which do not depend on solver history;
//! * counterexample *models* would normally depend on solver history, but the
//!   checker canonicalises them to the lexicographically minimal satisfying
//!   transition, making each condition's outcome a pure function of the
//!   condition and the system;
//! * workers pull work items from a shared queue (dynamic load balancing),
//!   and results are merged back **in condition order**, so neither
//!   scheduling nor completion order can leak into the report.

use crate::conditions::{Condition, ConditionKind};
use amle_checker::{CheckResult, CheckerStats, KInductionChecker, SpuriousResult};
use amle_expr::{Valuation, VarId};
use amle_system::System;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Parallelism configuration of the condition-checking engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of condition-checking workers. `1` checks conditions on the
    /// calling thread; `n > 1` spawns `n` scoped workers, each with its own
    /// persistent checker sessions.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 1 }
    }
}

impl ParallelConfig {
    /// A configuration with the given worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.max(1),
        }
    }

    /// Reads the worker count from the `AMLE_WORKERS` environment variable,
    /// defaulting to 1 (sequential) when unset or unparsable.
    pub fn from_env() -> Self {
        let workers = std::env::var("AMLE_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1);
        Self::with_workers(workers)
    }
}

/// Outcome of checking the full condition set of one candidate model.
#[derive(Debug, Clone)]
pub(crate) struct ConditionEvaluation {
    pub total: usize,
    pub held: usize,
    /// Valid counterexamples: the violated condition together with the
    /// offending transition, in condition order.
    pub counterexamples: Vec<(Condition, Valuation, Valuation)>,
    pub spurious: usize,
    pub inconclusive: usize,
}

impl ConditionEvaluation {
    pub fn alpha(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.held as f64 / self.total as f64
        }
    }
}

/// The result of fully evaluating a single condition, including its
/// spurious-counterexample re-check rounds.
#[derive(Debug, Clone)]
pub(crate) enum ConditionOutcome {
    /// The condition was proven to hold.
    Held,
    /// A valid (or inconclusive, treated-as-valid) counterexample was found
    /// after `spurious` blocked rounds.
    Counterexample {
        from: Valuation,
        to: Valuation,
        spurious: usize,
        inconclusive: bool,
    },
    /// Every counterexample within the round budget was spurious; the
    /// condition is not shown to hold but produces no new trace.
    Exhausted { spurious: usize },
}

/// Checks one condition against the system, classifying counterexamples as in
/// Section III-B/III-C of the paper. This is the unit of work the parallel
/// engine distributes; thanks to canonical counterexample extraction its
/// result is a pure function of `(condition, system, k, max_spurious_rounds)`.
pub(crate) fn evaluate_one_condition(
    checker: &mut KInductionChecker<'_>,
    condition: &Condition,
    observables: &[VarId],
    k: usize,
    max_spurious_rounds: usize,
) -> ConditionOutcome {
    let mut blocked = Vec::new();
    let mut spurious = 0;
    loop {
        let result =
            checker.check_condition(&condition.assumption, &blocked, &condition.conclusion());
        match result {
            CheckResult::Valid => return ConditionOutcome::Held,
            CheckResult::Violated { from, to } => {
                if condition.kind == ConditionKind::Initial {
                    // Counterexamples to condition (1) start in an Init state
                    // and are always valid.
                    return ConditionOutcome::Counterexample {
                        from,
                        to,
                        spurious,
                        inconclusive: false,
                    };
                }
                let state_formula = checker.state_formula(&from, observables);
                match checker.check_spurious(&state_formula, k) {
                    SpuriousResult::Spurious => {
                        spurious += 1;
                        blocked.push(state_formula);
                        if spurious >= max_spurious_rounds {
                            return ConditionOutcome::Exhausted { spurious };
                        }
                    }
                    SpuriousResult::Reachable => {
                        return ConditionOutcome::Counterexample {
                            from,
                            to,
                            spurious,
                            inconclusive: false,
                        };
                    }
                    SpuriousResult::Inconclusive => {
                        return ConditionOutcome::Counterexample {
                            from,
                            to,
                            spurious,
                            inconclusive: true,
                        };
                    }
                }
            }
        }
    }
}

/// Folds per-condition outcomes (in condition order) into the aggregate
/// evaluation. This is the deterministic merge point of the engine.
pub(crate) fn merge_outcomes(
    conditions: &[Condition],
    outcomes: Vec<ConditionOutcome>,
) -> ConditionEvaluation {
    debug_assert_eq!(conditions.len(), outcomes.len());
    let mut evaluation = ConditionEvaluation {
        total: conditions.len(),
        held: 0,
        counterexamples: Vec::new(),
        spurious: 0,
        inconclusive: 0,
    };
    for (condition, outcome) in conditions.iter().zip(outcomes) {
        match outcome {
            ConditionOutcome::Held => evaluation.held += 1,
            ConditionOutcome::Counterexample {
                from,
                to,
                spurious,
                inconclusive,
            } => {
                evaluation.spurious += spurious;
                if inconclusive {
                    evaluation.inconclusive += 1;
                }
                evaluation
                    .counterexamples
                    .push((condition.clone(), from, to));
            }
            ConditionOutcome::Exhausted { spurious } => evaluation.spurious += spurious,
        }
    }
    evaluation
}

/// Checks every extracted condition sequentially on the given checker.
///
/// Shared by the sequential engine and the random-sampling baseline's α
/// measurement.
pub(crate) fn evaluate_conditions(
    checker: &mut KInductionChecker<'_>,
    conditions: &[Condition],
    observables: &[VarId],
    k: usize,
    max_spurious_rounds: usize,
) -> ConditionEvaluation {
    let outcomes = conditions
        .iter()
        .map(|c| evaluate_one_condition(checker, c, observables, k, max_spurious_rounds))
        .collect();
    merge_outcomes(conditions, outcomes)
}

/// A condition-checking engine usable by the active-learning loop: evaluates
/// whole condition sets and surrenders its accumulated checker statistics at
/// the end of the run.
pub(crate) trait ConditionEngine {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation;
    fn finish(self) -> CheckerStats;
}

/// The sequential engine: one persistent checker on the calling thread,
/// exactly the paper's Fig. 1 behaviour.
pub(crate) struct SequentialEngine<'a> {
    checker: KInductionChecker<'a>,
    observables: Vec<VarId>,
    k: usize,
    max_spurious_rounds: usize,
}

impl<'a> SequentialEngine<'a> {
    pub fn new(
        system: &'a System,
        observables: Vec<VarId>,
        k: usize,
        max_spurious_rounds: usize,
    ) -> Self {
        SequentialEngine {
            checker: KInductionChecker::new(system),
            observables,
            k,
            max_spurious_rounds,
        }
    }
}

impl ConditionEngine for SequentialEngine<'_> {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation {
        evaluate_conditions(
            &mut self.checker,
            conditions,
            &self.observables,
            self.k,
            self.max_spurious_rounds,
        )
    }

    fn finish(self) -> CheckerStats {
        self.checker.stats()
    }
}

/// One unit of work: the condition's position in the extracted set plus the
/// condition itself.
type WorkItem = (usize, Condition);

/// A message from a worker to the merge loop.
enum PoolMessage {
    /// One condition's outcome, tagged with its position.
    Outcome(usize, ConditionOutcome),
    /// The sending worker is unwinding from a panic.
    Panicked,
}

/// Sends [`PoolMessage::Panicked`] when dropped during a panic unwind, so a
/// dying worker fails the run loudly: without this, the merge loop would
/// block forever on a result that will never arrive (the surviving workers
/// keep the result channel open).
struct PanicNotifier {
    result_tx: mpsc::Sender<PoolMessage>,
}

impl Drop for PanicNotifier {
    fn drop(&mut self) {
        if thread::panicking() {
            let _ = self.result_tx.send(PoolMessage::Panicked);
        }
    }
}

/// The parallel engine: a pool of scoped worker threads, each owning a forked
/// checker with persistent sessions that survive across iterations. Work
/// items are pulled from a shared queue; results are merged in condition
/// order.
pub(crate) struct WorkerPool<'scope> {
    work_tx: Option<mpsc::Sender<WorkItem>>,
    result_rx: mpsc::Receiver<PoolMessage>,
    handles: Vec<thread::ScopedJoinHandle<'scope, CheckerStats>>,
}

impl<'scope> WorkerPool<'scope> {
    /// Spawns `workers` threads on `scope`, each forking its own checker for
    /// `system`.
    pub fn spawn<'env: 'scope>(
        scope: &'scope thread::Scope<'scope, 'env>,
        system: &'env System,
        observables: Vec<VarId>,
        workers: usize,
        k: usize,
        max_spurious_rounds: usize,
    ) -> Self {
        let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (result_tx, result_rx) = mpsc::channel();
        let template = KInductionChecker::new(system);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let work_rx = Arc::clone(&work_rx);
            let result_tx = result_tx.clone();
            let observables = observables.clone();
            let mut checker = template.fork();
            handles.push(scope.spawn(move || {
                let _notifier = PanicNotifier {
                    result_tx: result_tx.clone(),
                };
                loop {
                    // Hold the queue lock only for the dequeue itself; the
                    // expensive SAT work below runs unlocked.
                    let item = match work_rx.lock().expect("queue lock poisoned").recv() {
                        Ok(item) => item,
                        Err(_) => break,
                    };
                    let (index, condition) = item;
                    let outcome = evaluate_one_condition(
                        &mut checker,
                        &condition,
                        &observables,
                        k,
                        max_spurious_rounds,
                    );
                    if result_tx
                        .send(PoolMessage::Outcome(index, outcome))
                        .is_err()
                    {
                        break;
                    }
                }
                checker.stats()
            }));
        }
        WorkerPool {
            work_tx: Some(work_tx),
            result_rx,
            handles,
        }
    }
}

impl ConditionEngine for WorkerPool<'_> {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation {
        let work_tx = self.work_tx.as_ref().expect("pool already finished");
        for (index, condition) in conditions.iter().enumerate() {
            work_tx
                .send((index, condition.clone()))
                .expect("a worker thread panicked");
        }
        let mut outcomes: Vec<Option<ConditionOutcome>> = vec![None; conditions.len()];
        for _ in 0..conditions.len() {
            match self
                .result_rx
                .recv()
                .expect("every condition-checking worker exited before finishing its work")
            {
                PoolMessage::Outcome(index, outcome) => outcomes[index] = Some(outcome),
                PoolMessage::Panicked => {
                    panic!("a condition-checking worker panicked; aborting the run")
                }
            }
        }
        merge_outcomes(
            conditions,
            outcomes
                .into_iter()
                .map(|o| o.expect("every condition produced an outcome"))
                .collect(),
        )
    }

    fn finish(mut self) -> CheckerStats {
        // Closing the queue lets every worker drain out and return its stats.
        drop(self.work_tx.take());
        let mut total = CheckerStats::default();
        for handle in self.handles {
            total += handle.join().expect("worker thread panicked");
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_automaton::StateId;
    use amle_expr::{Expr, Sort, Value};
    use amle_system::SystemBuilder;

    #[test]
    #[should_panic(expected = "condition-checking worker panicked")]
    fn a_panicking_worker_fails_the_run_instead_of_hanging() {
        // k = 0 trips the checker's bound assertion on the first violated
        // non-initial condition, panicking inside a worker. The merge loop
        // must surface that as a panic of its own, not block forever waiting
        // for an outcome that will never arrive.
        let mut b = SystemBuilder::new();
        let tick = b.input("tick", Sort::Bool).unwrap();
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        let next = b.var(tick);
        b.update(s, next).unwrap();
        let _ = tick;
        let system = b.build().unwrap();

        let condition = Condition {
            kind: ConditionKind::State {
                state: StateId::from_index(0),
            },
            assumption: Expr::true_(),
            outgoing: vec![Expr::false_()],
        };
        thread::scope(|scope| {
            let mut pool = WorkerPool::spawn(scope, &system, system.all_vars(), 2, 0, 10);
            let _ = pool.evaluate(std::slice::from_ref(&condition));
        });
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(ParallelConfig::default().workers, 1);
        assert_eq!(ParallelConfig::with_workers(0).workers, 1);
        assert_eq!(ParallelConfig::with_workers(8).workers, 8);
    }

    #[test]
    fn from_env_parses_and_defaults() {
        // Sequential when unset; the CI matrix sets AMLE_WORKERS explicitly,
        // in which case the parsed value must flow through.
        let parsed = ParallelConfig::from_env();
        match std::env::var("AMLE_WORKERS") {
            Ok(v) => assert_eq!(
                parsed.workers,
                v.trim().parse::<usize>().unwrap_or(1).max(1)
            ),
            Err(_) => assert_eq!(parsed.workers, 1),
        }
    }
}
