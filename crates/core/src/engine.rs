//! The condition-checking engine: a query planner over pluggable condition
//! oracles, with a cross-iteration verdict cache and a failure-history
//! priority order, executing sequentially or over a worker pool.
//!
//! Checking the extracted conditions dominates the wall-clock time of an
//! active-learning iteration. Three observations shape the engine:
//!
//! 1. **Conditions are mutually independent** — each is decided by its own
//!    oracle queries, and the spurious-counterexample re-check loop of a
//!    condition only strengthens that condition's own assumption. The engine
//!    fans conditions out over a pool of [`std::thread::scope`] workers, each
//!    owning a private oracle stack (built by [`amle_checker::build_oracle`])
//!    with its own persistent sessions.
//! 2. **Condition outcomes are pure functions of the condition.** Thanks to
//!    canonical counterexamples, the full outcome of evaluating a condition —
//!    verdict, counterexample transition, spurious rounds — depends only on
//!    `(assumption, conclusion, kind, system, k, max_spurious_rounds)`. On
//!    stable stretches of the learning loop most hypotheses change only
//!    locally, so most extracted conditions are *semantically identical* to
//!    ones already decided. The **verdict cache** keys outcomes by the
//!    semantic content `(initial?, assumption, conclusion)` — the hypothesis
//!    automaton restricted to the condition — and replays them across
//!    iterations without touching a solver. Keying by semantics is also the
//!    invalidation rule: an alphabet or abstraction change rewrites the
//!    predicates, producing different keys, so exactly the affected
//!    conditions miss while untouched ones keep hitting; spliced traces
//!    never invalidate anything because trace content does not enter the
//!    outcome at all.
//! 3. **Past failures predict future failures.** A refined state keeps its
//!    incoming predicate while its outgoing set grows, so a condition whose
//!    *assumption* produced counterexamples before is the best candidate to
//!    fail again. The planner orders pending work by per-assumption failure
//!    counts (ties broken by condition index), so likely-failing conditions
//!    surface counterexamples first and the worker pool spends its early
//!    slots where refinement progress is made.
//!
//! **Determinism guarantee.** The merged [`ConditionEvaluation`] is
//! byte-identical for every worker count (including 1), every oracle engine
//! and cache on/off:
//!
//! * verdicts are satisfiability results and counterexample models are
//!   canonicalised, so each condition's outcome is a pure function of the
//!   condition and the system — across engines too (see `amle-checker`);
//! * cached outcomes are exactly the outcomes the oracle would recompute;
//! * workers pull work items from a shared queue (dynamic load balancing),
//!   and results are merged back **in condition order**, so neither
//!   scheduling, priority order nor completion order can leak into the
//!   report.

use crate::conditions::{Condition, ConditionKind};
use amle_checker::{
    build_oracle, CheckResult, CheckerStats, ConditionOracle, OracleKind, OracleSettings,
    SpuriousResult,
};
use amle_expr::{Expr, Valuation, VarId, VarSet};
use amle_sat::SolverConfig;
use amle_system::System;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Parallelism configuration of the condition-checking engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of condition-checking workers. `1` checks conditions on the
    /// calling thread; `n > 1` spawns `n` scoped workers, each with its own
    /// persistent checker sessions.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 1 }
    }
}

impl ParallelConfig {
    /// A configuration with the given worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.max(1),
        }
    }

    /// Reads the worker count from the `AMLE_WORKERS` environment variable:
    /// unset (or empty) means 1 (sequential), `0` is clamped to 1, and a
    /// value that does not parse as an unsigned integer falls back to 1 with
    /// a one-time warning — a typo in a CI matrix or a service unit must not
    /// silently evaporate the intended parallel coverage.
    pub fn from_env() -> Self {
        Self::with_workers(Self::workers_from_env_value(
            std::env::var("AMLE_WORKERS").ok().as_deref(),
        ))
    }

    /// The pure parsing rule behind [`ParallelConfig::from_env`], factored
    /// out so tests can pin it without mutating the process environment.
    fn workers_from_env_value(value: Option<&str>) -> usize {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        let Some(raw) = value else { return 1 };
        let raw = raw.trim();
        if raw.is_empty() {
            return 1;
        }
        match raw.parse::<usize>() {
            // `with_workers` clamps again, but clamping here keeps the rule
            // self-contained: 0 is "sequential", never "no workers".
            Ok(n) => n.max(1),
            Err(_) => {
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "AMLE_WORKERS=`{raw}` is not a worker count; \
                         using 1 (sequential)"
                    )
                });
                1
            }
        }
    }
}

/// Which oracle stack answers the loop's queries and how the planner treats
/// repeated conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// The condition-oracle engine (see [`OracleKind`]).
    pub engine: OracleKind,
    /// Whether the cross-iteration verdict cache is consulted. Reports are
    /// byte-identical either way; the cache only skips re-solving.
    pub verdict_cache: bool,
    /// Per-query work budget of the explicit engine (portfolio stacks).
    pub explicit_budget: u64,
    /// Portfolio routing threshold (largest estimated concrete query size
    /// still routed to the explicit engine).
    pub route_threshold: u64,
    /// Cross-validation mode: explicitly-routed queries are also answered
    /// by k-induction and the results asserted equal.
    pub cross_validate: bool,
    /// Delta-encode conclusion disjunctions in the k-induction condition
    /// sessions (the default). Reports are byte-identical either way; the
    /// switch exists so the differential harness can pin that.
    pub conclusion_delta: bool,
    /// Chain-encode base-session frame disjunctions in the k-induction
    /// spurious checks (the default). Reports are byte-identical either way.
    pub base_delta: bool,
    /// CDCL search policy for every SAT session (restarts, phase saving,
    /// clause-DB reduction). Verdict-neutral: fingerprints and solve counts
    /// never depend on it, only conflicts/propagations/wall time do.
    pub solver: SolverConfig,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            engine: OracleKind::default(),
            verdict_cache: true,
            explicit_budget: amle_checker::DEFAULT_EXPLICIT_BUDGET,
            route_threshold: amle_checker::DEFAULT_ROUTE_THRESHOLD,
            cross_validate: false,
            conclusion_delta: true,
            base_delta: true,
            solver: SolverConfig::default(),
        }
    }
}

impl OracleConfig {
    /// Reads the engine from `AMLE_ENGINE` (`kinduction`, `explicit` or
    /// `portfolio`), the cache switch from `AMLE_VERDICT_CACHE`, the
    /// conclusion delta-encoding switch from `AMLE_CONCLUSION_DELTA`, the
    /// base-session chain-encoding switch from `AMLE_BASE_DELTA`
    /// (`0`/`off`/`false` disable any of them) and the solver search policy
    /// from the `AMLE_SOLVER_*` knobs (see [`SolverConfig::from_env`]),
    /// defaulting to k-induction with the cache and both delta encodings on.
    pub fn from_env() -> Self {
        let mut config = OracleConfig::default();
        if let Ok(name) = std::env::var("AMLE_ENGINE") {
            match OracleKind::from_name(&name) {
                Some(kind) => config.engine = kind,
                // Loud, not fatal: `from_env` runs inside `Default`, but a
                // typo must not silently evaporate the intended engine
                // coverage.
                None => eprintln!(
                    "AMLE_ENGINE=`{name}` is not a known engine \
                     (kinduction|explicit|portfolio); using {}",
                    config.engine.name()
                ),
            }
        }
        if let Ok(flag) = std::env::var("AMLE_VERDICT_CACHE") {
            let flag = flag.trim();
            config.verdict_cache = !(flag == "0"
                || flag.eq_ignore_ascii_case("off")
                || flag.eq_ignore_ascii_case("false"));
        }
        if let Ok(flag) = std::env::var("AMLE_CONCLUSION_DELTA") {
            let flag = flag.trim();
            config.conclusion_delta = !(flag == "0"
                || flag.eq_ignore_ascii_case("off")
                || flag.eq_ignore_ascii_case("false"));
        }
        if let Ok(flag) = std::env::var("AMLE_BASE_DELTA") {
            let flag = flag.trim();
            config.base_delta = !(flag == "0"
                || flag.eq_ignore_ascii_case("off")
                || flag.eq_ignore_ascii_case("false"));
        }
        config.solver = SolverConfig::from_env();
        config
    }

    /// The construction-time settings handed to [`build_oracle`].
    pub(crate) fn settings(&self) -> OracleSettings {
        OracleSettings {
            kind: self.engine,
            explicit_budget: self.explicit_budget,
            route_threshold: self.route_threshold,
            cross_validate: self.cross_validate,
            conclusion_delta: self.conclusion_delta,
            base_delta: self.base_delta,
            solver: self.solver,
        }
    }
}

/// Aggregate statistics of the cross-iteration verdict cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCacheStats {
    /// Conditions answered from the cache without touching an oracle.
    pub hits: u64,
    /// Conditions that had to be solved (and were then recorded).
    pub misses: u64,
    /// Distinct semantic keys live in the cache at the end of the run.
    pub entries: u64,
}

/// Outcome of checking the full condition set of one candidate model.
#[derive(Debug, Clone)]
pub(crate) struct ConditionEvaluation {
    pub total: usize,
    pub held: usize,
    /// Valid counterexamples: the violated condition together with the
    /// offending transition, in condition order.
    pub counterexamples: Vec<(Condition, Valuation, Valuation)>,
    pub spurious: usize,
    pub inconclusive: usize,
    /// Conditions answered by the verdict cache this evaluation.
    pub cache_hits: usize,
    /// Conditions actually solved by an oracle this evaluation.
    pub solved: usize,
}

impl ConditionEvaluation {
    pub fn alpha(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.held as f64 / self.total as f64
        }
    }
}

/// The result of fully evaluating a single condition, including its
/// spurious-counterexample re-check rounds.
#[derive(Debug, Clone)]
pub(crate) enum ConditionOutcome {
    /// The condition was proven to hold.
    Held,
    /// A valid (or inconclusive, treated-as-valid) counterexample was found
    /// after `spurious` blocked rounds.
    Counterexample {
        from: Valuation,
        to: Valuation,
        spurious: usize,
        inconclusive: bool,
    },
    /// Every counterexample within the round budget was spurious; the
    /// condition is not shown to hold but produces no new trace.
    Exhausted { spurious: usize },
}

/// Checks one condition against the system, classifying counterexamples as in
/// Section III-B/III-C of the paper. This is the unit of work the engine
/// distributes; thanks to canonical counterexample extraction its result is a
/// pure function of `(condition, system, k, max_spurious_rounds)` — for every
/// oracle engine.
pub(crate) fn evaluate_one_condition(
    oracle: &mut (impl ConditionOracle + ?Sized),
    vars: &VarSet,
    condition: &Condition,
    observables: &[VarId],
    k: usize,
    max_spurious_rounds: usize,
) -> ConditionOutcome {
    let mut blocked = Vec::new();
    let mut spurious = 0;
    loop {
        let result = oracle.check_condition(&condition.assumption, &blocked, &condition.outgoing);
        match result {
            CheckResult::Valid => return ConditionOutcome::Held,
            CheckResult::Violated { from, to } => {
                if condition.kind == ConditionKind::Initial {
                    // Counterexamples to condition (1) start in an Init state
                    // and are always valid.
                    return ConditionOutcome::Counterexample {
                        from,
                        to,
                        spurious,
                        inconclusive: false,
                    };
                }
                let state_formula = amle_checker::state_formula(vars, &from, observables);
                match oracle.check_spurious(&state_formula, k) {
                    SpuriousResult::Spurious => {
                        spurious += 1;
                        blocked.push(state_formula);
                        if spurious >= max_spurious_rounds {
                            return ConditionOutcome::Exhausted { spurious };
                        }
                    }
                    SpuriousResult::Reachable => {
                        return ConditionOutcome::Counterexample {
                            from,
                            to,
                            spurious,
                            inconclusive: false,
                        };
                    }
                    SpuriousResult::Inconclusive => {
                        return ConditionOutcome::Counterexample {
                            from,
                            to,
                            spurious,
                            inconclusive: true,
                        };
                    }
                }
            }
        }
    }
}

/// Folds per-condition outcomes (in condition order) into the aggregate
/// evaluation. This is the deterministic merge point of the engine.
pub(crate) fn merge_outcomes(
    conditions: &[Condition],
    outcomes: Vec<ConditionOutcome>,
) -> ConditionEvaluation {
    debug_assert_eq!(conditions.len(), outcomes.len());
    let mut evaluation = ConditionEvaluation {
        total: conditions.len(),
        held: 0,
        counterexamples: Vec::new(),
        spurious: 0,
        inconclusive: 0,
        cache_hits: 0,
        solved: conditions.len(),
    };
    for (condition, outcome) in conditions.iter().zip(outcomes) {
        match outcome {
            ConditionOutcome::Held => evaluation.held += 1,
            ConditionOutcome::Counterexample {
                from,
                to,
                spurious,
                inconclusive,
            } => {
                evaluation.spurious += spurious;
                if inconclusive {
                    evaluation.inconclusive += 1;
                }
                evaluation
                    .counterexamples
                    .push((condition.clone(), from, to));
            }
            ConditionOutcome::Exhausted { spurious } => evaluation.spurious += spurious,
        }
    }
    evaluation
}

/// Checks every extracted condition sequentially on the given oracle,
/// without planning or caching.
///
/// Shared by the random-sampling baseline's α measurement and the planner
/// tests.
pub(crate) fn evaluate_conditions(
    oracle: &mut (impl ConditionOracle + ?Sized),
    vars: &VarSet,
    conditions: &[Condition],
    observables: &[VarId],
    k: usize,
    max_spurious_rounds: usize,
) -> ConditionEvaluation {
    let outcomes = conditions
        .iter()
        .map(|c| evaluate_one_condition(oracle, vars, c, observables, k, max_spurious_rounds))
        .collect();
    merge_outcomes(conditions, outcomes)
}

/// The semantic identity of a condition: the hypothesis automaton restricted
/// to the condition (incoming assumption + disjunction of outgoing
/// predicates) plus the condition shape. Together with the per-run constants
/// (system, `k`, `max_spurious_rounds`) this determines the full outcome, so
/// it is the verdict-cache key. Notably the automaton *state id* is absent:
/// two states with the same predicates share an outcome, and a state that
/// keeps its id but changes predicates gets a fresh key.
///
/// The key predicates are **canonicalised** ([`Expr::canonical`]): a
/// refined hypothesis frequently rebuilds the same predicate in a different
/// shape — outgoing disjunctions reassembled in another order, a duplicated
/// disjunct, a constant-true guard threaded through — and every such
/// variant decides identically (condition outcomes are pure functions of
/// the predicates' *semantics*; counterexamples are canonicalised by the
/// oracles). Canonical keys let those re-shaped conditions hit the verdict
/// cache across iterations instead of re-solving. Equality and hashing on
/// the interned canonical forms are O(1), so planning cost per condition is
/// a couple of integer probes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ConditionKey {
    initial: bool,
    assumption: Expr,
    conclusion: Expr,
}

impl ConditionKey {
    fn of(condition: &Condition) -> ConditionKey {
        ConditionKey {
            initial: condition.kind == ConditionKind::Initial,
            assumption: condition.assumption.canonical(),
            conclusion: condition.conclusion().canonical(),
        }
    }
}

/// The failure-history key: per-assumption, deliberately coarser than the
/// cache key. Refinement grows a state's *outgoing* set while keeping its
/// incoming predicate, so the assumption is the stable part that predicts
/// repeated failure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FailureKey {
    initial: bool,
    assumption: Expr,
}

/// The work plan for one condition set: cache hits pre-filled, misses listed
/// in solving order.
struct PlannedWork {
    /// One slot per condition, hits already filled.
    outcomes: Vec<Option<ConditionOutcome>>,
    /// `(condition index, cache key)` of every miss, most-likely-failing
    /// first (per-assumption failure count, ties by index).
    pending: Vec<(usize, ConditionKey)>,
    /// In-batch duplicates, keyed by the primary pending index: these slots
    /// receive a clone of the primary's outcome instead of being solved.
    duplicates: HashMap<usize, Vec<usize>>,
    /// Number of slots answered without solving (cache hits + in-batch
    /// duplicates).
    cache_hits: usize,
}

impl PlannedWork {
    /// Fills the slot of a solved primary plus all its in-batch duplicates.
    fn resolve(&mut self, index: usize, outcome: ConditionOutcome) {
        if let Some(dups) = self.duplicates.remove(&index) {
            for dup in dups {
                self.outcomes[dup] = Some(outcome.clone());
            }
        }
        self.outcomes[index] = Some(outcome);
    }
}

/// The query planner: consults and maintains the verdict cache and the
/// failure history. Lives on the merge side of the engine (never inside a
/// worker), so its state evolves deterministically in condition order.
pub(crate) struct QueryPlanner {
    /// `None` when the cache is disabled; the failure history stays active
    /// either way.
    cache: Option<HashMap<ConditionKey, ConditionOutcome>>,
    failures: HashMap<FailureKey, u64>,
    hits: u64,
    misses: u64,
}

impl QueryPlanner {
    pub fn new(cache_enabled: bool) -> QueryPlanner {
        QueryPlanner {
            cache: cache_enabled.then(HashMap::new),
            failures: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn plan(&mut self, conditions: &[Condition]) -> PlannedWork {
        let mut outcomes: Vec<Option<ConditionOutcome>> = vec![None; conditions.len()];
        // (failure count, index, key) so the priority sort compares plain
        // integers instead of re-hashing expression trees per comparison.
        let mut pending: Vec<(u64, usize, ConditionKey)> = Vec::new();
        // First occurrence of each semantic key within this batch: later
        // duplicates are not solved again, they share the primary's outcome
        // (and count as hits — they are served by the entry the primary is
        // about to record). Only active alongside the cache: with caching
        // disabled every condition is genuinely solved.
        let mut planned: HashMap<ConditionKey, usize> = HashMap::new();
        let mut duplicates: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut cache_hits = 0;
        for (index, condition) in conditions.iter().enumerate() {
            let key = ConditionKey::of(condition);
            if let Some(cache) = &self.cache {
                if let Some(outcome) = cache.get(&key) {
                    outcomes[index] = Some(outcome.clone());
                    cache_hits += 1;
                    self.hits += 1;
                    continue;
                }
                if let Some(&primary) = planned.get(&key) {
                    duplicates.entry(primary).or_default().push(index);
                    cache_hits += 1;
                    self.hits += 1;
                    continue;
                }
                self.misses += 1;
                planned.insert(key.clone(), index);
            }
            let failures = self.failure_count(&key);
            pending.push((failures, index, key));
        }
        pending.sort_by(|(fa, ia, _), (fb, ib, _)| fb.cmp(fa).then(ia.cmp(ib)));
        PlannedWork {
            outcomes,
            pending: pending.into_iter().map(|(_, i, k)| (i, k)).collect(),
            duplicates,
            cache_hits,
        }
    }

    fn failure_count(&self, key: &ConditionKey) -> u64 {
        let key = FailureKey {
            initial: key.initial,
            assumption: key.assumption.clone(),
        };
        self.failures.get(&key).copied().unwrap_or(0)
    }

    /// Records a freshly solved outcome: into the cache under its semantic
    /// key, and into the failure history when it produced a counterexample.
    fn record(&mut self, key: ConditionKey, outcome: &ConditionOutcome) {
        if matches!(outcome, ConditionOutcome::Counterexample { .. }) {
            let fkey = FailureKey {
                initial: key.initial,
                assumption: key.assumption.clone(),
            };
            *self.failures.entry(fkey).or_insert(0) += 1;
        }
        if let Some(cache) = &mut self.cache {
            cache.insert(key, outcome.clone());
        }
    }

    pub fn stats(&self) -> VerdictCacheStats {
        VerdictCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.cache.as_ref().map_or(0, |c| c.len() as u64),
        }
    }
}

/// Completes a plan whose every slot has been filled.
fn finish_evaluation(conditions: &[Condition], plan: PlannedWork) -> ConditionEvaluation {
    let cache_hits = plan.cache_hits;
    let outcomes: Vec<ConditionOutcome> = plan
        .outcomes
        .into_iter()
        .map(|o| o.expect("every condition produced an outcome"))
        .collect();
    let mut evaluation = merge_outcomes(conditions, outcomes);
    evaluation.cache_hits = cache_hits;
    evaluation.solved = conditions.len() - cache_hits;
    evaluation
}

/// Statistics surrendered by an engine at the end of a run.
pub(crate) struct EngineStats {
    pub checker: CheckerStats,
    pub cache: VerdictCacheStats,
}

/// A condition-checking engine usable by the active-learning loop: evaluates
/// whole condition sets and surrenders its accumulated statistics at the end
/// of the run.
pub(crate) trait ConditionEngine {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation;
    fn finish(self) -> EngineStats;
}

/// The sequential engine: one oracle stack on the calling thread plus the
/// planner — the paper's Fig. 1 behaviour with cached verdicts.
///
/// Both the oracle and the planner are **borrowed**, not owned: the caller
/// decides their lifetime. A batch run builds both fresh and drops them with
/// the report; a resident [`crate::Session`] keeps the same warm oracle
/// (incremental solver sessions intact) and the same verdict cache across
/// many refinement calls.
pub(crate) struct SequentialEngine<'o, 'a> {
    system: &'a System,
    oracle: &'o mut (dyn ConditionOracle + 'a),
    planner: &'o mut QueryPlanner,
    observables: Vec<VarId>,
    k: usize,
    max_spurious_rounds: usize,
}

impl<'o, 'a> SequentialEngine<'o, 'a> {
    pub fn new(
        system: &'a System,
        oracle: &'o mut (dyn ConditionOracle + 'a),
        planner: &'o mut QueryPlanner,
        observables: Vec<VarId>,
        k: usize,
        max_spurious_rounds: usize,
    ) -> Self {
        SequentialEngine {
            system,
            oracle,
            planner,
            observables,
            k,
            max_spurious_rounds,
        }
    }
}

impl ConditionEngine for SequentialEngine<'_, '_> {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation {
        let mut plan = self.planner.plan(conditions);
        for (index, key) in std::mem::take(&mut plan.pending) {
            let outcome = evaluate_one_condition(
                &mut *self.oracle,
                self.system.vars(),
                &conditions[index],
                &self.observables,
                self.k,
                self.max_spurious_rounds,
            );
            self.planner.record(key, &outcome);
            plan.resolve(index, outcome);
        }
        finish_evaluation(conditions, plan)
    }

    fn finish(self) -> EngineStats {
        EngineStats {
            checker: self.oracle.stats(),
            cache: self.planner.stats(),
        }
    }
}

/// One unit of work: the condition's position in the extracted set plus the
/// condition itself.
type WorkItem = (usize, Condition);

/// A message from a worker to the merge loop.
enum PoolMessage {
    /// One condition's outcome, tagged with its position.
    Outcome(usize, ConditionOutcome),
    /// The sending worker is unwinding from a panic.
    Panicked,
}

/// Sends [`PoolMessage::Panicked`] when dropped during a panic unwind, so a
/// dying worker fails the run loudly: without this, the merge loop would
/// block forever on a result that will never arrive (the surviving workers
/// keep the result channel open).
struct PanicNotifier {
    result_tx: mpsc::Sender<PoolMessage>,
}

impl Drop for PanicNotifier {
    fn drop(&mut self) {
        if thread::panicking() {
            let _ = self.result_tx.send(PoolMessage::Panicked);
        }
    }
}

/// The parallel engine: a pool of scoped worker threads, each owning its own
/// oracle stack with persistent sessions that survive across iterations.
/// Work items are pulled from a shared queue in planner priority order; the
/// planner itself (cache + failure history) lives on the merge side, so its
/// state evolves identically for every worker count.
pub(crate) struct WorkerPool<'scope, 'p> {
    work_tx: Option<mpsc::Sender<WorkItem>>,
    result_rx: mpsc::Receiver<PoolMessage>,
    handles: Vec<thread::ScopedJoinHandle<'scope, CheckerStats>>,
    planner: &'p mut QueryPlanner,
}

impl<'scope, 'p> WorkerPool<'scope, 'p> {
    /// Spawns `workers` threads on `scope`, each building its own oracle
    /// stack for `system`. The planner is borrowed from the caller so the
    /// verdict cache can outlive the pool (worker oracles are rebuilt per
    /// refinement inside their `thread::scope`, but cached verdicts — living
    /// on the merge side — persist).
    #[allow(clippy::too_many_arguments)] // internal seam; callers are the two refine paths
    pub fn spawn<'env: 'scope>(
        scope: &'scope thread::Scope<'scope, 'env>,
        system: &'env System,
        observables: Vec<VarId>,
        workers: usize,
        k: usize,
        max_spurious_rounds: usize,
        oracle: &OracleConfig,
        planner: &'p mut QueryPlanner,
    ) -> Self {
        let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (result_tx, result_rx) = mpsc::channel();
        let settings = oracle.settings();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let work_rx = Arc::clone(&work_rx);
            let result_tx = result_tx.clone();
            let observables = observables.clone();
            handles.push(scope.spawn(move || {
                let _notifier = PanicNotifier {
                    result_tx: result_tx.clone(),
                };
                let mut oracle = build_oracle(system, &settings);
                let vars = system.vars();
                loop {
                    // Hold the queue lock only for the dequeue itself; the
                    // expensive solving below runs unlocked.
                    let item = match work_rx.lock().expect("queue lock poisoned").recv() {
                        Ok(item) => item,
                        Err(_) => break,
                    };
                    let (index, condition) = item;
                    let outcome = evaluate_one_condition(
                        &mut *oracle,
                        vars,
                        &condition,
                        &observables,
                        k,
                        max_spurious_rounds,
                    );
                    if result_tx
                        .send(PoolMessage::Outcome(index, outcome))
                        .is_err()
                    {
                        break;
                    }
                }
                oracle.stats()
            }));
        }
        WorkerPool {
            work_tx: Some(work_tx),
            result_rx,
            handles,
            planner,
        }
    }
}

impl ConditionEngine for WorkerPool<'_, '_> {
    fn evaluate(&mut self, conditions: &[Condition]) -> ConditionEvaluation {
        let mut plan = self.planner.plan(conditions);
        let pending = std::mem::take(&mut plan.pending);
        let work_tx = self.work_tx.as_ref().expect("pool already finished");
        for (index, _) in &pending {
            work_tx
                .send((*index, conditions[*index].clone()))
                .expect("a worker thread panicked");
        }
        let mut keys: HashMap<usize, ConditionKey> = pending.into_iter().collect();
        for _ in 0..keys.len() {
            match self
                .result_rx
                .recv()
                .expect("every condition-checking worker exited before finishing its work")
            {
                PoolMessage::Outcome(index, outcome) => {
                    let key = keys.remove(&index).expect("outcome for an unplanned index");
                    self.planner.record(key, &outcome);
                    plan.resolve(index, outcome);
                }
                PoolMessage::Panicked => {
                    panic!("a condition-checking worker panicked; aborting the run")
                }
            }
        }
        finish_evaluation(conditions, plan)
    }

    fn finish(mut self) -> EngineStats {
        // Closing the queue lets every worker drain out and return its stats.
        drop(self.work_tx.take());
        let mut total = CheckerStats::default();
        for handle in self.handles {
            total += handle.join().expect("worker thread panicked");
        }
        EngineStats {
            checker: total,
            cache: self.planner.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_automaton::StateId;
    use amle_expr::{Expr, Sort, Value};
    use amle_system::SystemBuilder;

    fn toggle_system() -> System {
        let mut b = SystemBuilder::new();
        let tick = b.input("tick", Sort::Bool).unwrap();
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        let next = b.var(tick);
        b.update(s, next).unwrap();
        b.build().unwrap()
    }

    fn state_condition(state_index: usize, assumption: Expr, outgoing: Vec<Expr>) -> Condition {
        Condition {
            kind: ConditionKind::State {
                state: StateId::from_index(state_index),
            },
            assumption,
            outgoing,
        }
    }

    /// The owned halves a [`SequentialEngine`] borrows — what a batch run
    /// builds fresh and a resident session keeps warm.
    fn engine_parts<'a>(
        system: &'a System,
        config: &OracleConfig,
    ) -> (Box<dyn ConditionOracle + 'a>, QueryPlanner) {
        (
            build_oracle(system, &config.settings()),
            QueryPlanner::new(config.verdict_cache),
        )
    }

    #[test]
    #[should_panic(expected = "condition-checking worker panicked")]
    fn a_panicking_worker_fails_the_run_instead_of_hanging() {
        // k = 0 trips the checker's bound assertion on the first violated
        // non-initial condition, panicking inside a worker. The merge loop
        // must surface that as a panic of its own, not block forever waiting
        // for an outcome that will never arrive.
        let system = toggle_system();
        let condition = state_condition(0, Expr::true_(), vec![Expr::false_()]);
        let mut planner = QueryPlanner::new(true);
        thread::scope(|scope| {
            let mut pool = WorkerPool::spawn(
                scope,
                &system,
                system.all_vars(),
                2,
                0,
                10,
                &OracleConfig::default(),
                &mut planner,
            );
            let _ = pool.evaluate(std::slice::from_ref(&condition));
        });
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(ParallelConfig::default().workers, 1);
        assert_eq!(ParallelConfig::with_workers(0).workers, 1);
        assert_eq!(ParallelConfig::with_workers(8).workers, 8);
    }

    /// The `AMLE_WORKERS` parsing rule, pinned without touching the process
    /// environment: unset/empty → sequential, `0` clamps to 1 (never "no
    /// workers"), garbage falls back to 1 (with a one-time warning) instead
    /// of silently dropping the intended parallelism to a panic or to 0.
    #[test]
    fn workers_env_value_clamps_and_defaults() {
        assert_eq!(ParallelConfig::workers_from_env_value(None), 1);
        assert_eq!(ParallelConfig::workers_from_env_value(Some("")), 1);
        assert_eq!(ParallelConfig::workers_from_env_value(Some("  ")), 1);
        assert_eq!(ParallelConfig::workers_from_env_value(Some(" 7 ")), 7);
        assert_eq!(
            ParallelConfig::workers_from_env_value(Some("0")),
            1,
            "0 must clamp to sequential, not zero workers"
        );
        assert_eq!(ParallelConfig::workers_from_env_value(Some("four")), 1);
        assert_eq!(ParallelConfig::workers_from_env_value(Some("-3")), 1);
        assert_eq!(ParallelConfig::workers_from_env_value(Some("3.5")), 1);
    }

    #[test]
    fn from_env_parses_and_defaults() {
        // Sequential when unset; the CI matrix sets AMLE_WORKERS explicitly,
        // in which case the parsed value must flow through.
        let parsed = ParallelConfig::from_env();
        match std::env::var("AMLE_WORKERS") {
            Ok(v) => assert_eq!(
                parsed.workers,
                v.trim().parse::<usize>().unwrap_or(1).max(1)
            ),
            Err(_) => assert_eq!(parsed.workers, 1),
        }
    }

    #[test]
    fn oracle_config_env_round_trip() {
        // `from_env` must honour the AMLE_ENGINE value when the CI matrix
        // sets one and default to kinduction + cache otherwise.
        let parsed = OracleConfig::from_env();
        match std::env::var("AMLE_ENGINE") {
            Ok(v) => {
                if let Some(kind) = OracleKind::from_name(&v) {
                    assert_eq!(parsed.engine, kind);
                }
            }
            Err(_) => assert_eq!(parsed.engine, OracleKind::KInduction),
        }
        if std::env::var("AMLE_VERDICT_CACHE").is_err() {
            assert!(parsed.verdict_cache);
        }
        match std::env::var("AMLE_CONCLUSION_DELTA") {
            Ok(v) => {
                let v = v.trim();
                let expect =
                    !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"));
                assert_eq!(parsed.conclusion_delta, expect);
            }
            Err(_) => assert!(parsed.conclusion_delta),
        }
        match std::env::var("AMLE_BASE_DELTA") {
            Ok(v) => {
                let v = v.trim();
                let expect =
                    !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"));
                assert_eq!(parsed.base_delta, expect);
            }
            Err(_) => assert!(parsed.base_delta),
        }
        // The solver policy flows through from `SolverConfig::from_env`,
        // whatever the CI matrix set.
        assert_eq!(parsed.solver, SolverConfig::from_env());
    }

    /// The stale-cache regression pin (a cache keyed by automaton state id or
    /// by condition index — the natural bug — fails this test): across two
    /// "iterations" the condition at the *same* state id and the same
    /// position changes its predicates from an always-holding conclusion to a
    /// falsifiable one. The planner must re-solve it (a semantic miss) and
    /// report the violation, while the genuinely unchanged condition hits.
    #[test]
    fn changed_predicates_flush_exactly_the_affected_entries() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let (mut oracle, mut planner) = engine_parts(&system, &OracleConfig::default());
        let mut engine = SequentialEngine::new(
            &system,
            &mut *oracle,
            &mut planner,
            system.all_vars(),
            4,
            10,
        );

        // Iteration 1: both conditions hold.
        let unchanged = state_condition(0, se.clone(), vec![Expr::true_()]);
        let mutated_v1 = state_condition(1, se.not(), vec![Expr::true_()]);
        let first = engine.evaluate(&[unchanged.clone(), mutated_v1]);
        assert_eq!(first.held, 2);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.solved, 2);

        // Iteration 2: state 1 keeps its id and position but its outgoing
        // set changed to something falsifiable ("after a step, s never
        // holds" is violated by tick = true).
        let mutated_v2 = state_condition(1, se.not(), vec![se.not()]);
        let second = engine.evaluate(&[unchanged, mutated_v2]);
        assert_eq!(second.cache_hits, 1, "the unchanged condition must hit");
        assert_eq!(second.solved, 1, "the mutated condition must re-solve");
        assert_eq!(
            second.counterexamples.len(),
            1,
            "a stale verdict would mask the violation"
        );
        assert_eq!(second.held, 1);

        let stats = engine.finish();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 3);
        assert_eq!(stats.cache.entries, 3);
    }

    /// The canonical-key pin of the interner PR: conditions whose predicates
    /// are semantically identical but *syntactically different* — the same
    /// assumption threaded through a redundant `&& true`, the same outgoing
    /// set disjoined in a different order with a duplicated disjunct — must
    /// collapse onto one verdict-cache key and replay instead of re-solving.
    /// (Keys built on the raw expressions — the pre-canonicalisation
    /// behaviour — miss here.)
    #[test]
    fn syntactically_reshaped_conditions_hit_the_cache() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let (mut oracle, mut planner) = engine_parts(&system, &OracleConfig::default());
        let mut engine = SequentialEngine::new(
            &system,
            &mut *oracle,
            &mut planner,
            system.all_vars(),
            4,
            10,
        );

        let original = state_condition(0, se.clone(), vec![se.clone(), se.not()]);
        let first = engine.evaluate(std::slice::from_ref(&original));
        assert_eq!((first.cache_hits, first.solved), (0, 1));

        // The refinement-loop motif: same semantics, different shape, and a
        // different state id for good measure.
        let reshaped = state_condition(
            7,
            Expr::true_().and(&se),
            vec![se.not(), se.clone(), se.not()],
        );
        assert_ne!(original.assumption, reshaped.assumption);
        assert_ne!(original.conclusion(), reshaped.conclusion());
        let second = engine.evaluate(std::slice::from_ref(&reshaped));
        assert_eq!(
            second.cache_hits, 1,
            "canonical keys must merge the variants"
        );
        assert_eq!(second.solved, 0);
        assert_eq!(second.held, first.held);

        let stats = engine.finish();
        assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
        assert_eq!(stats.cache.entries, 1);
    }

    /// Semantic keying also *merges*: a condition re-extracted under a
    /// different state id with identical predicates is the same query and
    /// must hit.
    #[test]
    fn state_ids_do_not_enter_the_cache_key() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let (mut oracle, mut planner) = engine_parts(&system, &OracleConfig::default());
        let mut engine = SequentialEngine::new(
            &system,
            &mut *oracle,
            &mut planner,
            system.all_vars(),
            4,
            10,
        );
        let at_state_0 = state_condition(0, se.clone(), vec![Expr::true_()]);
        let at_state_7 = state_condition(7, se, vec![Expr::true_()]);
        let first = engine.evaluate(std::slice::from_ref(&at_state_0));
        assert_eq!(first.solved, 1);
        let second = engine.evaluate(std::slice::from_ref(&at_state_7));
        assert_eq!(second.cache_hits, 1);
        assert_eq!(second.solved, 0);
    }

    /// Cache on and cache off must produce identical evaluations (the cache
    /// only skips work); the oracle must not be consulted again on a hit.
    #[test]
    fn cached_evaluations_match_uncached_and_skip_the_oracle() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let conditions = vec![
            state_condition(0, Expr::true_(), vec![se.clone(), se.not()]),
            state_condition(1, se.clone(), vec![se.not()]),
        ];

        let (mut cached_oracle, mut cached_planner) =
            engine_parts(&system, &OracleConfig::default());
        let mut cached = SequentialEngine::new(
            &system,
            &mut *cached_oracle,
            &mut cached_planner,
            system.all_vars(),
            4,
            10,
        );
        let uncached_config = OracleConfig {
            verdict_cache: false,
            ..OracleConfig::default()
        };
        let (mut uncached_oracle, mut uncached_planner) = engine_parts(&system, &uncached_config);
        let mut uncached = SequentialEngine::new(
            &system,
            &mut *uncached_oracle,
            &mut uncached_planner,
            system.all_vars(),
            4,
            10,
        );

        for round in 0..3 {
            let a = cached.evaluate(&conditions);
            let b = uncached.evaluate(&conditions);
            assert_eq!(a.held, b.held, "round {round}");
            assert_eq!(a.spurious, b.spurious);
            assert_eq!(a.inconclusive, b.inconclusive);
            assert_eq!(a.counterexamples.len(), b.counterexamples.len());
            for ((ca, fa, ta), (cb, fb, tb)) in a.counterexamples.iter().zip(&b.counterexamples) {
                assert_eq!(ca, cb);
                assert_eq!(fa, fb);
                assert_eq!(ta, tb);
            }
            if round > 0 {
                assert_eq!(a.cache_hits, conditions.len());
                assert_eq!(b.cache_hits, 0);
            }
        }
        let cached_stats = cached.finish();
        let uncached_stats = uncached.finish();
        // After the first round every cached evaluation is free.
        assert_eq!(cached_stats.cache.hits, 2 * conditions.len() as u64);
        assert_eq!(uncached_stats.cache.hits, 0);
        assert_eq!(uncached_stats.cache.entries, 0);
        assert!(
            cached_stats.checker.sat_queries < uncached_stats.checker.sat_queries,
            "the cache must actually skip solver work"
        );
    }

    /// Semantically identical conditions within one batch are solved once:
    /// the duplicates share the primary's outcome and count as hits. With
    /// the cache disabled every condition is genuinely solved.
    #[test]
    fn in_batch_duplicates_are_solved_once_with_the_cache_on() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let batch = vec![
            state_condition(0, se.clone(), vec![Expr::true_()]),
            state_condition(1, se.clone(), vec![Expr::true_()]),
            state_condition(2, se.clone(), vec![Expr::true_()]),
        ];
        let (mut cached_oracle, mut cached_planner) =
            engine_parts(&system, &OracleConfig::default());
        let mut cached = SequentialEngine::new(
            &system,
            &mut *cached_oracle,
            &mut cached_planner,
            system.all_vars(),
            4,
            10,
        );
        let evaluation = cached.evaluate(&batch);
        assert_eq!(evaluation.held, 3, "duplicates must still get an outcome");
        assert_eq!(evaluation.solved, 1);
        assert_eq!(evaluation.cache_hits, 2);
        let stats = cached.finish();
        assert_eq!(stats.checker.condition_checks, 1);
        assert_eq!((stats.cache.hits, stats.cache.misses), (2, 1));

        let uncached_config = OracleConfig {
            verdict_cache: false,
            ..OracleConfig::default()
        };
        let (mut uncached_oracle, mut uncached_planner) = engine_parts(&system, &uncached_config);
        let mut uncached = SequentialEngine::new(
            &system,
            &mut *uncached_oracle,
            &mut uncached_planner,
            system.all_vars(),
            4,
            10,
        );
        let evaluation = uncached.evaluate(&batch);
        assert_eq!(evaluation.held, 3);
        assert_eq!(evaluation.solved, 3);
        assert_eq!(uncached.finish().checker.condition_checks, 3);
    }

    /// The failure history orders pending work: an assumption that produced
    /// counterexamples before is solved first even from a later position,
    /// and the coarser key survives a changed conclusion.
    #[test]
    fn failure_history_prioritises_likely_failing_assumptions() {
        let system = toggle_system();
        let s = system.vars().lookup("s").unwrap();
        let se = system.var(s);
        let mut planner = QueryPlanner::new(true);

        let failing = state_condition(3, se.clone(), vec![se.not()]);
        let key = ConditionKey::of(&failing);
        planner.record(
            key,
            &ConditionOutcome::Counterexample {
                from: Valuation::zeroed(system.vars()),
                to: Valuation::zeroed(system.vars()),
                spurious: 0,
                inconclusive: false,
            },
        );

        // Same assumption, *different* conclusion (the refinement case) at a
        // late position; two fresh conditions ahead of it.
        let refined = state_condition(3, se.clone(), vec![se.not(), se.clone()]);
        let fresh_a = state_condition(0, Expr::true_(), vec![Expr::true_()]);
        let fresh_b = state_condition(1, se.not(), vec![Expr::true_()]);
        let plan = planner.plan(&[fresh_a, fresh_b, refined]);
        assert_eq!(plan.pending.len(), 3);
        assert_eq!(
            plan.pending[0].0, 2,
            "the historically failing assumption must be scheduled first"
        );
        assert_eq!(plan.pending[1].0, 0);
        assert_eq!(plan.pending[2].0, 1);
    }
}
