//! A resident learning session: the batch loop's warm state, kept alive
//! across incremental trace deliveries.
//!
//! The batch [`ActiveLearner`](crate::ActiveLearner) rebuilds every warm
//! structure per invocation — the interned [`TraceStore`], the condition
//! oracle's incremental solver sessions, the cross-iteration verdict cache.
//! All of them already survive across *iterations* in-process; a [`Session`]
//! is the seam that lets them survive across *requests* too, which is what a
//! long-lived trace-ingestion service (see the `amle-serve` crate) needs:
//!
//! * [`Session::ingest`] folds a batch of traces into the shared store
//!   (interned, deduplicated, insertion order preserved);
//! * [`Session::refine`] runs the paper's Fig. 1 refinement loop over the
//!   current store, reusing the warm oracle (sequential engine) and the
//!   verdict cache (every engine), and returns a [`RunReport`] attributing
//!   exactly this call's work;
//! * [`Session::stats`] exposes the cumulative counters a resident process
//!   wants to watch.
//!
//! **Determinism contract.** A fresh session that ingests trace batches and
//! then refines once produces a [`RunReport::semantic_fingerprint`]
//! byte-identical to [`ActiveLearner::run_with_traces`](crate::ActiveLearner)
//! on the concatenation of those batches — for every worker count, oracle
//! engine and cache setting. The integration tests of `amle-serve` pin this
//! differentially over a TCP boundary.

use crate::engine::{QueryPlanner, SequentialEngine, VerdictCacheStats, WorkerPool};
use crate::learner_loop::{run_refinement, ActiveLearnError, ActiveLearnerConfig};
use crate::report::RunReport;
use amle_checker::{build_oracle, CheckerStats, ConditionOracle};
use amle_expr::VarId;
use amle_learner::ModelLearner;
use amle_system::{System, Trace, TraceStore, TraceStoreStats};
use std::thread;

/// Result of folding one trace batch into a session's store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Traces newly inserted into the store.
    pub accepted: usize,
    /// Traces already present (the store deduplicates exact repeats).
    pub duplicates: usize,
}

/// Cumulative counters of a session, for the serving layer's `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Traces delivered through [`Session::ingest`] (including duplicates).
    pub ingested_traces: u64,
    /// Ingested traces rejected as exact duplicates.
    pub duplicate_traces: u64,
    /// Completed [`Session::refine`] calls.
    pub refinements: u64,
    /// Current statistics of the interned trace store.
    pub store: TraceStoreStats,
    /// Verdict-cache counters accumulated across every refinement.
    pub verdict_cache: VerdictCacheStats,
    /// Checker work accumulated across every refinement.
    pub checker: CheckerStats,
}

/// A resident active-learning session over one system.
///
/// The session owns the pieces the batch loop would rebuild per run and
/// keeps them warm:
///
/// * the interned [`TraceStore`] the traces accumulate in;
/// * the query planner (verdict cache + failure history), persisted for
///   every engine configuration;
/// * in the sequential configuration, the [`ConditionOracle`] with its
///   incremental solver sessions (with `workers > 1` the per-worker oracles
///   are rebuilt per refinement inside their `thread::scope`, exactly like
///   the batch path — the cache still persists on the merge side).
///
/// `initial_traces`, `trace_length` and `seed` in the config are ignored:
/// sessions never generate traces, they are fed them.
///
/// # Example
///
/// ```
/// use amle_core::{ActiveLearnerConfig, Session};
/// use amle_expr::{Expr, Sort, Value};
/// use amle_learner::HistoryLearner;
/// use amle_system::{Simulator, SystemBuilder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut b = SystemBuilder::new();
/// let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120)?;
/// let on = b.state("s_on", Sort::Bool, Value::Bool(false))?;
/// let update = b.var(temp).gt(&Expr::int_val(75, 8));
/// b.update(on, update)?;
/// let system = b.build()?;
///
/// let config = ActiveLearnerConfig { k: 4, ..ActiveLearnerConfig::default() };
/// let mut session = Session::new(&system, HistoryLearner::default(), config);
///
/// // Traces arrive in batches, e.g. collected from the running system.
/// let mut rng = StdRng::seed_from_u64(7);
/// let sim = Simulator::new(&system);
/// let batch: Vec<_> = sim.random_traces(10, 10, &mut rng).iter().cloned().collect();
/// session.ingest(batch);
/// let report = session.refine()?;
/// assert!(report.converged);
///
/// // More traces later: the store, oracle and verdict cache stay warm.
/// let more: Vec<_> = sim.random_traces(5, 10, &mut rng).iter().cloned().collect();
/// session.ingest(more);
/// let again = session.refine()?;
/// assert!(again.converged);
/// assert_eq!(session.stats().refinements, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'a, L: ModelLearner> {
    system: &'a System,
    learner: L,
    config: ActiveLearnerConfig,
    store: TraceStore,
    planner: QueryPlanner,
    /// The warm sequential oracle, built lazily on the first sequential
    /// refinement (a parallel-only session never needs it).
    oracle: Option<Box<dyn ConditionOracle + 'a>>,
    cache_total: VerdictCacheStats,
    checker_total: CheckerStats,
    stats: SessionStats,
}

impl<'a, L: ModelLearner> Session<'a, L> {
    /// Creates an empty session for `system`.
    pub fn new(system: &'a System, learner: L, config: ActiveLearnerConfig) -> Self {
        let planner = QueryPlanner::new(config.oracle.verdict_cache);
        Session {
            system,
            learner,
            config,
            store: TraceStore::new(),
            planner,
            oracle: None,
            cache_total: VerdictCacheStats::default(),
            checker_total: CheckerStats::default(),
            stats: SessionStats::default(),
        }
    }

    /// The system this session learns.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// The session's configuration.
    pub fn config(&self) -> &ActiveLearnerConfig {
        &self.config
    }

    /// The observable variables of this session's abstraction.
    pub fn observables(&self) -> Vec<VarId> {
        self.config
            .observables
            .clone()
            .unwrap_or_else(|| self.system.all_vars())
    }

    /// The interned store the ingested (and spliced) traces live in.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Number of traces currently in the store.
    pub fn trace_count(&self) -> usize {
        self.store.len()
    }

    /// Folds a batch of traces into the session's store. Exact duplicates
    /// (of earlier batches or within the batch) are deduplicated by the
    /// store; insertion order is first-occurrence order, exactly as
    /// [`TraceStore::from_trace_set`] would produce for the concatenated
    /// batches.
    pub fn ingest<I: IntoIterator<Item = Trace>>(&mut self, traces: I) -> IngestOutcome {
        let mut outcome = IngestOutcome::default();
        for trace in traces {
            if self.store.insert_trace(&trace).is_some() {
                outcome.accepted += 1;
            } else {
                outcome.duplicates += 1;
            }
        }
        self.stats.ingested_traces += (outcome.accepted + outcome.duplicates) as u64;
        self.stats.duplicate_traces += outcome.duplicates as u64;
        outcome
    }

    /// Runs the Fig. 1 refinement loop over the current store: learn a
    /// candidate, check its completeness conditions, splice valid
    /// counterexamples back into the store, repeat until `α = 1` or the
    /// iteration budget runs out.
    ///
    /// The store keeps the spliced traces afterwards, so the next refinement
    /// (after more ingestion) continues from this call's result. The report
    /// attributes only this call's checker and cache work.
    ///
    /// # Errors
    ///
    /// [`ActiveLearnError::BadConfig`] when no traces have been ingested
    /// yet, [`ActiveLearnError::Learner`] when the model-learning component
    /// fails.
    pub fn refine(&mut self) -> Result<RunReport, ActiveLearnError> {
        if self.store.is_empty() {
            return Err(ActiveLearnError::BadConfig {
                reason: "refine requires at least one ingested trace".to_string(),
            });
        }
        let observables = self.observables();
        let workers = self.config.parallel.workers.max(1);
        let (k, max_spurious_rounds) = (self.config.k, self.config.max_spurious_rounds);
        let max_iterations = self.config.max_iterations;
        let oracle_config = self.config.oracle;

        let mut report = if workers == 1 {
            let system = self.system;
            let oracle = self
                .oracle
                .get_or_insert_with(|| build_oracle(system, &oracle_config.settings()));
            // The oracle accumulates across refinements; snapshot so the
            // report covers exactly this call.
            let checker_before = oracle.stats();
            let engine = SequentialEngine::new(
                self.system,
                &mut **oracle,
                &mut self.planner,
                observables.clone(),
                k,
                max_spurious_rounds,
            );
            let mut report = run_refinement(
                self.system,
                &mut self.learner,
                &observables,
                max_iterations,
                &mut self.store,
                engine,
            )?;
            report.checker_stats = report.checker_stats.since(&checker_before);
            report
        } else {
            let system = self.system;
            let learner = &mut self.learner;
            let store = &mut self.store;
            let planner = &mut self.planner;
            thread::scope(|scope| {
                let engine = WorkerPool::spawn(
                    scope,
                    system,
                    observables.clone(),
                    workers,
                    k,
                    max_spurious_rounds,
                    &oracle_config,
                    planner,
                );
                run_refinement(system, learner, &observables, max_iterations, store, engine)
            })?
        };

        // The planner persists across refinements; the report carries this
        // call's delta (`entries` is a gauge and passes through).
        let cumulative = self.planner.stats();
        report.verdict_cache = VerdictCacheStats {
            hits: cumulative.hits - self.cache_total.hits,
            misses: cumulative.misses - self.cache_total.misses,
            entries: cumulative.entries,
        };
        self.cache_total = cumulative;
        self.checker_total += report.checker_stats;
        self.stats.refinements += 1;
        Ok(report)
    }

    /// Cumulative counters of this session.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            store: self.store.stats(),
            verdict_cache: self.cache_total,
            checker: self.checker_total,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActiveLearner, ParallelConfig};
    use amle_expr::{Expr, Sort, Value};
    use amle_learner::HistoryLearner;
    use amle_system::{Simulator, SystemBuilder, TraceSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cooler() -> System {
        let mut b = SystemBuilder::new();
        b.name("HomeClimateControl");
        let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    fn session_config(workers: usize) -> ActiveLearnerConfig {
        ActiveLearnerConfig {
            k: 6,
            max_iterations: 15,
            parallel: ParallelConfig::with_workers(workers),
            ..Default::default()
        }
    }

    fn sample_traces(system: &System, count: usize, length: usize, seed: u64) -> Vec<Trace> {
        let sim = Simulator::new(system);
        let mut rng = StdRng::seed_from_u64(seed);
        sim.random_traces(count, length, &mut rng)
            .iter()
            .cloned()
            .collect()
    }

    /// The session determinism contract: ingest-all-then-refine-once equals
    /// the batch run on the concatenated traces, byte for byte — sequential
    /// and parallel.
    #[test]
    fn first_refinement_matches_batch_run_byte_for_byte() {
        let system = cooler();
        for workers in [1, 4] {
            let traces = sample_traces(&system, 15, 15, 0xA1);
            let mut batch_set = TraceSet::new();
            for t in &traces {
                batch_set.insert(t.clone());
            }
            let batch =
                ActiveLearner::new(&system, HistoryLearner::default(), session_config(workers))
                    .run_with_traces(batch_set)
                    .unwrap();

            let mut session =
                Session::new(&system, HistoryLearner::default(), session_config(workers));
            // Deliver in two batches: the store's first-occurrence order is
            // what makes this equal to the single-set batch path.
            let mid = traces.len() / 2;
            session.ingest(traces[..mid].to_vec());
            session.ingest(traces[mid..].to_vec());
            let report = session.refine().unwrap();

            assert_eq!(
                batch.semantic_fingerprint(system.vars()),
                report.semantic_fingerprint(system.vars()),
                "session refine diverged from batch run with {workers} worker(s)"
            );
            assert_eq!(batch.verdict_cache, report.verdict_cache);
            assert_eq!(
                batch.checker_stats.sat_queries,
                report.checker_stats.sat_queries
            );
            if workers == 1 {
                // Sequentially even the solver-internal counters are pinned;
                // solve_time is wall-clock and legitimately jitters. (With a
                // worker pool, which worker's incremental session answers
                // which condition is scheduling-dependent, so clause/decision
                // counts vary while the merged semantics cannot.)
                let strip_time = |mut stats: CheckerStats| {
                    stats.solver.solve_time = std::time::Duration::ZERO;
                    stats
                };
                assert_eq!(
                    strip_time(batch.checker_stats),
                    strip_time(report.checker_stats)
                );
            }
        }
    }

    #[test]
    fn ingest_deduplicates_and_counts() {
        let system = cooler();
        let mut session = Session::new(&system, HistoryLearner::default(), session_config(1));
        let traces = sample_traces(&system, 5, 8, 9);
        let first = session.ingest(traces.clone());
        assert_eq!(first.accepted + first.duplicates, 5);
        let again = session.ingest(traces);
        assert_eq!(again.accepted, 0, "exact repeats must deduplicate");
        assert_eq!(again.duplicates, 5);
        let stats = session.stats();
        assert_eq!(stats.ingested_traces, 10);
        assert_eq!(stats.duplicate_traces, 5 + first.duplicates as u64);
        assert_eq!(session.trace_count(), first.accepted);
    }

    #[test]
    fn refine_without_traces_is_a_bad_config() {
        let system = cooler();
        let mut session = Session::new(&system, HistoryLearner::default(), session_config(1));
        assert!(matches!(
            session.refine(),
            Err(ActiveLearnError::BadConfig { .. })
        ));
    }

    /// Warm-state reuse: a second refinement re-extracts the same conditions
    /// and must answer them from the persisted verdict cache instead of
    /// re-solving, while per-call attribution keeps each report bounded to
    /// its own work.
    #[test]
    fn second_refinement_hits_the_persisted_verdict_cache() {
        let system = cooler();
        let mut session = Session::new(&system, HistoryLearner::default(), session_config(1));
        session.ingest(sample_traces(&system, 15, 15, 0xA1));
        let first = session.refine().unwrap();
        assert!(first.converged);
        assert!(first.verdict_cache.misses > 0);

        let second = session.refine().unwrap();
        assert!(second.converged);
        assert_eq!(second.iterations, 1, "already-converged store");
        assert_eq!(
            second.verdict_cache.misses, 0,
            "the converged hypothesis re-extracts cached conditions only"
        );
        assert!(second.verdict_cache.hits > 0);
        assert_eq!(
            second.checker_stats.sat_queries, 0,
            "a fully cached refinement must not touch the solver"
        );

        let stats = session.stats();
        assert_eq!(stats.refinements, 2);
        assert_eq!(
            stats.verdict_cache.hits,
            first.verdict_cache.hits + second.verdict_cache.hits
        );
        assert_eq!(
            stats.checker.sat_queries,
            first.checker_stats.sat_queries + second.checker_stats.sat_queries
        );
    }

    /// Incremental delivery with interleaved refinements still converges and
    /// keeps the trajectory deterministic across worker counts.
    #[test]
    fn interleaved_ingest_refine_is_deterministic_across_workers() {
        let system = cooler();
        let fingerprints: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|workers| {
                let mut session =
                    Session::new(&system, HistoryLearner::default(), session_config(workers));
                let traces = sample_traces(&system, 12, 12, 0x77);
                let mid = traces.len() / 2;
                session.ingest(traces[..mid].to_vec());
                let _ = session.refine().unwrap();
                session.ingest(traces[mid..].to_vec());
                let report = session.refine().unwrap();
                assert!(report.converged);
                report.semantic_fingerprint(system.vars())
            })
            .collect();
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "worker count leaked into the resident trajectory"
        );
    }
}
