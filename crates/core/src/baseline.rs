//! The passive random-sampling baseline of Section IV-C.

use crate::conditions::extract_conditions;
use crate::engine::evaluate_conditions;
use amle_automaton::Nfa;
use amle_checker::KInductionChecker;
use amle_expr::VarId;
use amle_learner::{LearnError, ModelLearner};
use amle_system::{Simulator, System};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Result of the random-sampling baseline: a passively learned model together
/// with its (post-hoc) degree of completeness.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The passively learned model.
    pub model: Nfa,
    /// Degree of completeness of the model, measured with the same condition
    /// checks the active algorithm uses.
    pub alpha: f64,
    /// Number of traces fed to the learner.
    pub trace_count: usize,
    /// Total number of random input samples consumed.
    pub inputs_used: usize,
    /// Wall-clock time of trace generation plus learning (the paper's `T`
    /// column for random sampling; the α measurement is reported separately).
    pub time: Duration,
    /// Wall-clock time of the α measurement.
    pub alpha_time: Duration,
}

impl BaselineReport {
    /// Number of states of the learned model (the paper's `N` column).
    pub fn num_states(&self) -> usize {
        self.model.num_states()
    }
}

/// Runs the random-sampling baseline: execute the system on `total_inputs`
/// randomly sampled inputs (in traces of `trace_length` observations), learn
/// a model passively, and measure its degree of completeness `α` using the
/// same completeness conditions as the active algorithm.
///
/// The paper uses one million random inputs; the budget is a parameter here
/// so the experiment can be scaled to the simulator substrate.
///
/// # Errors
///
/// Propagates [`LearnError`] from the model-learning component.
pub fn random_sampling_baseline<L: ModelLearner>(
    system: &System,
    learner: &mut L,
    observables: &[VarId],
    total_inputs: usize,
    trace_length: usize,
    k: usize,
    seed: u64,
) -> Result<BaselineReport, LearnError> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let simulator = Simulator::new(system);
    let traces = simulator.random_traces_with_budget(total_inputs, trace_length, &mut rng);
    let model = learner.learn(system.vars(), observables, &traces)?;
    let time = start.elapsed();

    let alpha_start = Instant::now();
    let mut checker = KInductionChecker::new(system);
    let conditions = extract_conditions(&model, &system.init_expr());
    let evaluation =
        evaluate_conditions(&mut checker, system.vars(), &conditions, observables, k, 10);
    let alpha_time = alpha_start.elapsed();

    Ok(BaselineReport {
        model,
        alpha: evaluation.alpha(),
        trace_count: traces.len(),
        inputs_used: traces.total_observations(),
        time,
        alpha_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActiveLearner, ActiveLearnerConfig};
    use amle_expr::{Expr, Sort, Value};
    use amle_learner::HistoryLearner;
    use amle_system::SystemBuilder;

    /// A system where random sampling struggles: a counter must reach 12
    /// before a flag flips, which short random traces rarely witness.
    fn needle_system() -> System {
        let mut b = SystemBuilder::new();
        b.name("needle");
        let tick = b.input("tick", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        let hit = b.state("hit", Sort::Bool, Value::Bool(false)).unwrap();
        let ce = b.var(c);
        let bumped = ce
            .lt(&Expr::int_val(12, 4))
            .ite(&ce.add(&Expr::int_val(1, 4)), &ce);
        let next = b.var(tick).ite(&bumped, &ce);
        b.update(c, next.clone()).unwrap();
        b.update(hit, next.ge(&Expr::int_val(12, 4))).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn baseline_learns_a_model_and_measures_alpha() {
        let sys = needle_system();
        let mut learner = HistoryLearner::new(1);
        let observables = sys.all_vars();
        let report =
            random_sampling_baseline(&sys, &mut learner, &observables, 120, 6, 30, 7).unwrap();
        assert!(report.num_states() >= 1);
        assert!(report.trace_count >= 1);
        assert!(report.inputs_used >= 100);
        assert!((0.0..=1.0).contains(&report.alpha));
    }

    #[test]
    fn active_learning_reaches_higher_alpha_than_a_small_random_budget() {
        // The paper's headline comparison: with a limited random budget the
        // passive model misses behaviours (α < 1) while the active loop
        // reaches α = 1.
        let sys = needle_system();
        let observables = sys.all_vars();

        let mut passive_learner = HistoryLearner::new(1);
        let baseline =
            random_sampling_baseline(&sys, &mut passive_learner, &observables, 60, 5, 30, 3)
                .unwrap();

        let config = ActiveLearnerConfig {
            initial_traces: 12,
            trace_length: 5,
            k: 30,
            max_iterations: 40,
            ..Default::default()
        };
        let mut active = ActiveLearner::new(&sys, HistoryLearner::new(1), config);
        let report = active.run().unwrap();

        assert!(
            report.converged,
            "active loop should converge, α = {}",
            report.alpha
        );
        assert!(
            baseline.alpha <= report.alpha,
            "baseline α {} should not exceed active α {}",
            baseline.alpha,
            report.alpha
        );
    }
}
