//! Differential tests of the pluggable oracle portfolio and the
//! cross-iteration verdict cache.
//!
//! For every benchmark of the full suite, an active-learning run must
//! produce a byte-identical [`RunReport::semantic_fingerprint`] across:
//!
//! * oracle engines (`kinduction` vs `portfolio`),
//! * verdict cache on vs off,
//! * condition-engine worker counts (1 vs 4).
//!
//! This pins the two invariants the oracle refactor rests on: engines agree
//! query-for-query (verdicts *and* canonical counterexamples), and the
//! cache only skips work it would have recomputed identically.

use amle_benchmarks::{circuit_benchmarks, full_suite, Benchmark};
use amle_core::{
    ActiveLearner, ActiveLearnerConfig, OracleConfig, OracleKind, ParallelConfig, RunReport,
};
use amle_learner::HistoryLearner;

fn run(benchmark: &Benchmark, workers: usize, oracle: OracleConfig) -> RunReport {
    // Deliberately small: the property under test is determinism across
    // configurations, not convergence, and `cargo test` runs unoptimised.
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 6,
        trace_length: 8,
        k: benchmark.k.min(4),
        max_iterations: 3,
        parallel: ParallelConfig::with_workers(workers),
        oracle,
        ..Default::default()
    };
    ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config)
        .run()
        .expect("active learning run failed")
}

fn kinduction() -> OracleConfig {
    OracleConfig {
        engine: OracleKind::KInduction,
        ..OracleConfig::default()
    }
}

fn portfolio() -> OracleConfig {
    OracleConfig {
        engine: OracleKind::Portfolio,
        ..OracleConfig::default()
    }
}

fn without_cache(mut config: OracleConfig) -> OracleConfig {
    config.verdict_cache = false;
    config
}

/// Runs the full engine × cache × worker matrix for one benchmark and
/// asserts every variant reproduces the sequential k-induction reference
/// fingerprint, plus that the reference's cache accounting is complete.
fn assert_fingerprints_agree(benchmark: &Benchmark) {
    let vars = benchmark.system.vars();
    let reference_report = run(benchmark, 1, kinduction());
    let reference = reference_report.semantic_fingerprint(vars);
    let variants: [(&str, usize, OracleConfig); 4] = [
        ("kinduction, cache, 4 workers", 4, kinduction()),
        (
            "kinduction, no cache, 1 worker",
            1,
            without_cache(kinduction()),
        ),
        ("portfolio, cache, 1 worker", 1, portfolio()),
        (
            "portfolio, no cache, 4 workers",
            4,
            without_cache(portfolio()),
        ),
    ];
    for (label, workers, oracle) in variants {
        let report = run(benchmark, workers, oracle);
        assert_eq!(
            reference,
            report.semantic_fingerprint(vars),
            "{}: `{}` diverged from the kinduction/cache/sequential reference",
            benchmark.name,
            label
        );
    }
    // The cache-enabled reference accounts every condition as a hit or
    // a miss, and the per-iteration hit counts add up to the total.
    let conditions: u64 = reference_report
        .iteration_stats
        .iter()
        .map(|s| s.conditions as u64)
        .sum();
    let cache = reference_report.verdict_cache;
    assert_eq!(
        cache.hits + cache.misses,
        conditions,
        "{}: cache accounting is incomplete",
        benchmark.name
    );
    let per_iteration_hits: u64 = reference_report
        .iteration_stats
        .iter()
        .map(|s| s.cache_hits as u64)
        .sum();
    assert_eq!(per_iteration_hits, cache.hits);
}

#[test]
fn fingerprints_identical_across_engines_cache_and_workers() {
    for benchmark in full_suite() {
        assert_fingerprints_agree(&benchmark);
    }
}

#[test]
fn circuit_fingerprints_identical_across_engines_cache_and_workers() {
    // The circuit family rides outside `full_suite()` (so the pinned quick-
    // suite fingerprint stays comparable across releases) but the same
    // determinism contract applies to systems compiled from netlists —
    // including the COI-reduced one, whose registered outputs exercise the
    // compiler's extra state variables.
    let circuits = circuit_benchmarks();
    assert!(!circuits.is_empty(), "the circuit family is empty");
    for benchmark in circuits {
        assert_fingerprints_agree(&benchmark);
    }
}

#[test]
fn explicit_first_portfolio_matches_kinduction_on_small_systems() {
    // Small input/state products are the explicit engine's home turf; an
    // unbounded routing threshold forces every query through it (with
    // k-induction rescuing budget exhaustions), and cross-validation
    // additionally asserts per-query agreement inside the portfolio.
    let small: Vec<Benchmark> = full_suite()
        .into_iter()
        .filter(|b| {
            amle_checker::ExplicitChecker::new(&b.system, 0).estimate_condition_cost() <= 50_000
        })
        .collect();
    assert!(
        !small.is_empty(),
        "no suite benchmark is small enough for the explicit engine"
    );
    for benchmark in small {
        let vars = benchmark.system.vars();
        let baseline = run(&benchmark, 1, kinduction());
        let explicit_first = OracleConfig {
            engine: OracleKind::Portfolio,
            route_threshold: u64::MAX,
            cross_validate: true,
            ..OracleConfig::default()
        };
        let report = run(&benchmark, 1, explicit_first);
        assert_eq!(
            baseline.semantic_fingerprint(vars),
            report.semantic_fingerprint(vars),
            "{}: explicit-first portfolio diverged",
            benchmark.name
        );
        assert!(
            report.checker_stats.explicit_queries > 0,
            "{}: the explicit engine was never consulted",
            benchmark.name
        );
    }
}
