//! Differential tests of the CDCL search policy and the delta encodings.
//!
//! The load-bearing invariant of workload tuning: because counterexamples
//! are canonicalised by static bit-probing, a run's semantic fingerprint
//! *and its per-run `solve_calls`* are pure functions of query semantics —
//! independent of restart strategy, phase-saving mode, clause-DB reduction
//! settings, the base/conclusion delta encodings, the engine and the worker
//! count. Only conflicts, propagations and wall time may move. That is what
//! makes aggressive search-policy tuning safely CI-gateable: any config that
//! perturbs a verdict, a counterexample or a solve count fails here (and
//! fails the committed fingerprint digests in CI).

use amle_benchmarks::{circuit_benchmarks, full_suite, Benchmark};
use amle_core::{
    ActiveLearner, ActiveLearnerConfig, OracleConfig, OracleKind, ParallelConfig, PhaseMode,
    RestartStrategy, RunReport, SolverConfig,
};
use amle_learner::HistoryLearner;

fn run(benchmark: &Benchmark, workers: usize, oracle: OracleConfig) -> RunReport {
    // Small fixed shape: the property is invariance across configurations,
    // not convergence, and the grid below is multiplicative.
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 6,
        trace_length: 8,
        k: benchmark.k.min(4),
        max_iterations: 3,
        parallel: ParallelConfig::with_workers(workers),
        oracle,
        ..Default::default()
    };
    ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config)
        .run()
        .expect("active learning run failed")
}

/// The search-policy grid: every restart strategy, both phase modes, and
/// non-default clause-DB settings.
fn solver_grid() -> Vec<(&'static str, SolverConfig)> {
    vec![
        (
            "ema-lbd restarts",
            SolverConfig {
                restart: RestartStrategy::EmaLbd,
                restart_base: 16,
                ..SolverConfig::default()
            },
        ),
        (
            "no restarts",
            SolverConfig {
                restart: RestartStrategy::NoneBelow(u64::MAX),
                ..SolverConfig::default()
            },
        ),
        (
            "gated restarts + phase reset",
            SolverConfig {
                restart: RestartStrategy::NoneBelow(64),
                restart_base: 32,
                phase_saving: PhaseMode::ResetPerQuery,
                ..SolverConfig::default()
            },
        ),
        (
            "eager luby + tight clause DB",
            SolverConfig {
                restart: RestartStrategy::Luby,
                restart_base: 25,
                phase_saving: PhaseMode::Persist,
                reduce_growth_pct: 100,
                glue_threshold: 4,
            },
        ),
    ]
}

/// Asserts one benchmark's fingerprint and solve-call count are invariant
/// across the solver-config grid, the delta-encoding switches, the
/// kinduction/portfolio engines and worker counts 1 and 4.
fn assert_policy_invariant(benchmark: &Benchmark) {
    let vars = benchmark.system.vars();
    let reference_report = run(benchmark, 1, OracleConfig::default());
    let reference = reference_report.semantic_fingerprint(vars);
    // Solve-call identity holds per engine: the portfolio routes a subset of
    // queries to the explicit engine, so its SAT call count legitimately
    // differs from pure k-induction. Fingerprints agree across everything.
    let reference_calls = reference_report.solver_stats().solve_calls;
    let portfolio_reference_calls = run(
        benchmark,
        1,
        OracleConfig {
            engine: OracleKind::Portfolio,
            ..OracleConfig::default()
        },
    )
    .solver_stats()
    .solve_calls;

    let mut variants: Vec<(String, usize, OracleConfig)> = Vec::new();
    for (label, solver) in solver_grid() {
        for workers in [1, 4] {
            variants.push((
                format!("{label}, kinduction, {workers} workers"),
                workers,
                OracleConfig {
                    solver,
                    ..OracleConfig::default()
                },
            ));
        }
        variants.push((
            format!("{label}, portfolio, 1 worker"),
            1,
            OracleConfig {
                engine: OracleKind::Portfolio,
                solver,
                ..OracleConfig::default()
            },
        ));
    }
    // Both delta encodings off, under a non-default policy and 4 workers —
    // the farthest corner from the reference configuration.
    variants.push((
        "delta encodings off, ema-lbd, 4 workers".to_string(),
        4,
        OracleConfig {
            conclusion_delta: false,
            base_delta: false,
            solver: SolverConfig {
                restart: RestartStrategy::EmaLbd,
                restart_base: 16,
                ..SolverConfig::default()
            },
            ..OracleConfig::default()
        },
    ));

    for (label, workers, oracle) in variants {
        let expected_calls = match oracle.engine {
            OracleKind::Portfolio => portfolio_reference_calls,
            _ => reference_calls,
        };
        let report = run(benchmark, workers, oracle);
        assert_eq!(
            reference,
            report.semantic_fingerprint(vars),
            "{}: `{}` perturbed the fingerprint",
            benchmark.name,
            label
        );
        assert_eq!(
            expected_calls,
            report.solver_stats().solve_calls,
            "{}: `{}` perturbed the solve-call count",
            benchmark.name,
            label
        );
    }
}

#[test]
fn search_policy_never_perturbs_fingerprints_or_solve_calls() {
    // A cross-section of the suite: a Table I controller, a synthetic
    // splicing benchmark and a circuit benchmark cover the three query
    // profiles (condition-heavy, spurious-heavy, wide-word).
    let picked: Vec<Benchmark> = full_suite()
        .into_iter()
        .filter(|b| {
            b.name == "HomeClimateControlCooler"
                || b.name.starts_with("SynthGray")
                || b.name == "RedundantSensorPair"
        })
        .take(3)
        .collect();
    assert!(!picked.is_empty(), "no benchmark matched the cross-section");
    for benchmark in picked {
        assert_policy_invariant(&benchmark);
    }
}

#[test]
fn search_policy_never_perturbs_circuit_fingerprints() {
    let mut circuits = circuit_benchmarks();
    assert!(!circuits.is_empty(), "the circuit family is empty");
    circuits.truncate(1);
    for benchmark in circuits {
        assert_policy_invariant(&benchmark);
    }
}

#[test]
fn base_session_reuse_dominates_by_late_iterations() {
    // The acceptance criterion on the base-session ledger: on a benchmark
    // with repeated spurious checks, reuse must dominate fresh encodes by
    // the end of the run (full mode re-encodes per (formula, k) instead).
    for benchmark in full_suite() {
        let report = run(&benchmark, 1, OracleConfig::default());
        let stats = report.checker_stats;
        if stats.spurious_checks >= 4 {
            assert!(
                stats.frames_reused > stats.frames_encoded,
                "{}: frame reuse {} did not dominate encodes {} over {} spurious checks",
                benchmark.name,
                stats.frames_reused,
                stats.frames_encoded,
                stats.spurious_checks
            );
            return;
        }
    }
    panic!("no suite benchmark issued enough spurious checks at this shape");
}
