//! Golden test for the DOT rendering of a learned abstraction.
//!
//! Learns the Fig. 2 home climate-control cooler with a fixed seed and
//! compares the `amle_automaton` DOT export byte-for-byte against a checked-in
//! golden file, so that any change to guard rendering, node/edge layout or
//! the learned model itself is surfaced in review. The run is deterministic
//! across condition-engine worker counts (canonical counterexamples), so the
//! golden holds under any `AMLE_WORKERS` setting.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! AMLE_DOT_GOLDEN_WRITE=1 cargo test -p amle-core --test dot_golden
//! ```

use amle_core::{ActiveLearner, ActiveLearnerConfig};
use amle_expr::{Expr, Sort, Value};
use amle_learner::HistoryLearner;
use amle_system::{System, SystemBuilder};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/cooler.dot");

fn cooler() -> System {
    let mut b = SystemBuilder::new();
    b.name("HomeClimateControl");
    let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
    let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
    b.update(on, b.var(temp).gt(&Expr::int_val(75, 8))).unwrap();
    b.build().unwrap()
}

#[test]
fn learned_cooler_dot_matches_golden() {
    let system = cooler();
    let config = ActiveLearnerConfig {
        initial_traces: 15,
        trace_length: 15,
        k: 6,
        max_iterations: 15,
        ..Default::default()
    };
    let report = ActiveLearner::new(&system, HistoryLearner::default(), config)
        .run()
        .expect("cooler learning failed");
    assert!(report.converged, "cooler must converge before rendering");
    let dot = report.abstraction.to_dot(system.vars());

    if std::env::var("AMLE_DOT_GOLDEN_WRITE").is_ok() {
        std::fs::write(GOLDEN_PATH, &dot).expect("writing golden file failed");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with AMLE_DOT_GOLDEN_WRITE=1 to create it");
    assert_eq!(
        dot, golden,
        "DOT rendering drifted from tests/golden/cooler.dot; \
         re-generate with AMLE_DOT_GOLDEN_WRITE=1 if the change is intended"
    );
}
