//! Differential tests of the parallel condition-checking engine.
//!
//! For every benchmark of the full suite (Table I plus the synthetic
//! families), an active-learning run with `workers = 4` must produce a
//! [`RunReport`] identical to the `workers = 1` run: the same learned NFA,
//! the same iteration counts, the same invariants and the same deterministic
//! work counters. This mirrors the incremental-vs-fresh equivalence test of
//! the checker crate one level up, at the whole-loop granularity.

use amle_benchmarks::{full_suite, Benchmark};
use amle_core::{ActiveLearner, ActiveLearnerConfig, ParallelConfig, RunReport};
use amle_learner::HistoryLearner;

fn run(benchmark: &Benchmark, workers: usize) -> RunReport {
    // Deliberately small: the property under test is determinism across
    // worker counts, not convergence, and `cargo test` runs unoptimised.
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 6,
        trace_length: 8,
        k: benchmark.k.min(4),
        max_iterations: 3,
        parallel: ParallelConfig::with_workers(workers),
        ..Default::default()
    };
    ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config)
        .run()
        .expect("active learning run failed")
}

#[test]
fn four_workers_match_one_worker_on_every_benchmark() {
    for benchmark in full_suite() {
        let start = std::time::Instant::now();
        let sequential = run(&benchmark, 1);
        let parallel = run(&benchmark, 4);
        eprintln!("{}: {:.2}s", benchmark.name, start.elapsed().as_secs_f64());

        // The learned model and the loop trajectory must be identical.
        assert_eq!(
            sequential.abstraction, parallel.abstraction,
            "{}: learned NFAs differ",
            benchmark.name
        );
        assert_eq!(
            sequential.iterations, parallel.iterations,
            "{}: iteration counts differ",
            benchmark.name
        );
        assert_eq!(
            sequential.converged, parallel.converged,
            "{}: convergence differs",
            benchmark.name
        );
        assert_eq!(
            sequential.invariants, parallel.invariants,
            "{}: invariants differ",
            benchmark.name
        );
        assert_eq!(
            sequential.trace_count, parallel.trace_count,
            "{}: trace counts differ",
            benchmark.name
        );

        // Deterministic work counters: the engine distributes the very same
        // per-condition work, so the aggregated counts must agree too.
        assert_eq!(
            sequential.checker_stats.condition_checks, parallel.checker_stats.condition_checks,
            "{}: condition-check counts differ",
            benchmark.name
        );
        assert_eq!(
            sequential.checker_stats.spurious_checks, parallel.checker_stats.spurious_checks,
            "{}: spurious-check counts differ",
            benchmark.name
        );
        assert_eq!(
            sequential.checker_stats.sat_queries, parallel.checker_stats.sat_queries,
            "{}: SAT query counts differ",
            benchmark.name
        );

        // And the canonical rendering — everything above plus per-iteration
        // statistics — must be byte-identical.
        let vars = benchmark.system.vars();
        assert_eq!(
            sequential.semantic_fingerprint(vars),
            parallel.semantic_fingerprint(vars),
            "{}: semantic fingerprints differ",
            benchmark.name
        );
    }
}
