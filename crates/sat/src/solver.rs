//! The CDCL solver.

use crate::{Lit, Var};
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::{Duration, Instant};

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// The formula (under the given assumptions) is satisfiable; a model is
    /// available through [`Solver::value`] / [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Aggregate statistics of a solver instance, useful for benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database. This is a
    /// point-in-time gauge, not a counter: when statistics from several
    /// solver sessions are aggregated (`+`/`+=`), the result is the sum of
    /// per-session snapshots and should be treated as approximate.
    pub learnt_clauses: u64,
    /// Number of `solve` / `solve_with_assumptions` calls.
    pub solve_calls: u64,
    /// Cumulative wall-clock time spent inside `solve`.
    pub solve_time: Duration,
}

impl AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        self.learnt_clauses += rhs.learnt_clauses;
        self.solve_calls += rhs.solve_calls;
        self.solve_time += rhs.solve_time;
    }
}

impl Add for SolverStats {
    type Output = SolverStats;

    fn add(mut self, rhs: SolverStats) -> SolverStats {
        self += rhs;
        self
    }
}

impl SolverStats {
    /// The work done since an earlier snapshot of the same (accumulating)
    /// statistics: componentwise saturating subtraction. Used to attribute
    /// lifetime-cumulative stats to a single run.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(earlier.learnt_clauses),
            solve_calls: self.solve_calls.saturating_sub(earlier.solve_calls),
            solve_time: self.solve_time.saturating_sub(earlier.solve_time),
        }
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

const INVALID_CLAUSE: usize = usize::MAX;

/// A CDCL SAT solver.
///
/// See the [crate documentation](crate) for the feature list and an example.
/// Typical use: allocate variables with [`Solver::new_var`], add clauses with
/// [`Solver::add_clause`], call [`Solver::solve`] (or
/// [`Solver::solve_with_assumptions`]) and read the model back with
/// [`Solver::value`].
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assigns: Vec<Option<bool>>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<usize>,
    activity: Vec<f64>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    var_inc: f64,
    cla_inc: f64,
    ok: bool,
    model_valid: bool,
    seen: Vec<bool>,
    stats: SolverStats,
    max_learnts: f64,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.clauses.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            saved_phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            model_valid: false,
            seen: Vec::new(),
            stats: SolverStats::default(),
            max_learnts: 0.0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(None);
        self.saved_phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID_CLAUSE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original plus currently retained learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause to the solver.
    ///
    /// Clauses may be added between solve calls (incremental use); doing so
    /// discards the current model, so read any model values you need before
    /// growing the formula.
    ///
    /// Returns `false` if the solver is already known to be unsatisfiable
    /// (either previously, or because this clause is empty after
    /// simplification against the top-level assignment).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        // Clause simplification and unit enqueueing are only sound against
        // the top-level assignment; backtracking discards any model.
        self.model_valid = false;
        self.backtrack(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology / satisfied / falsified literal handling at level 0.
        let mut simplified = Vec::with_capacity(clause.len());
        let mut i = 0;
        while i < clause.len() {
            let lit = clause[i];
            if i + 1 < clause.len() && clause[i + 1] == !lit {
                return true; // tautology: p and !p both present
            }
            match self.lit_value(lit) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => simplified.push(lit),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], INVALID_CLAUSE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len();
        self.watches[(!lits[0]).code()].push(idx);
        self.watches[(!lits[1]).code()].push(idx);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        idx
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var().index()].map(|b| b == lit.is_positive())
    }

    /// The value of a variable in the most recent satisfying model.
    ///
    /// Returns `None` for variables that were never assigned (possible only
    /// before the first successful [`Solver::solve`] call, or for variables
    /// added afterwards).
    ///
    /// Only meaningful while [`Solver::has_model`] is true: an Unsat solve or
    /// an incremental [`Solver::add_clause`] discards the model, after which
    /// this returns the residual top-level assignment, not model values. The
    /// [`crate::IncrementalSolver`] trait methods perform this check.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.assigns.get(var.index()).copied().flatten()
    }

    /// Whether a satisfying model is currently available: the last solve
    /// returned [`SolveResult::Sat`] and no clause has been added since.
    pub fn has_model(&self) -> bool {
        self.model_valid
    }

    /// The most recent satisfying model as a dense vector indexed by
    /// variable. Unassigned variables default to `false`.
    ///
    /// As with [`Solver::value`], only meaningful while [`Solver::has_model`]
    /// is true; read the model before growing the formula.
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.assigns[i].unwrap_or(false))
            .collect()
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: Lit, reason: usize) -> bool {
        match self.lit_value(lit) {
            Some(b) => b,
            None => {
                let v = lit.var().index();
                self.assigns[v] = Some(lit.is_positive());
                self.saved_phase[v] = lit.is_positive();
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // The falsified literal is !p; normalise it to position 1.
                let false_lit = !p;
                {
                    let clause = &mut self.clauses[ci];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[(!new_watch).code()].push(ci);
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.code()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[p.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, ci: usize) {
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backtrack level.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            debug_assert_ne!(confl, INVALID_CLAUSE);
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()];
        }
        learnt[0] = !p.expect("conflict analysis found an asserting literal");

        // Determine backtrack level (second-highest level in the clause).
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };

        for lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        (learnt, backtrack_level)
    }

    fn backtrack(&mut self, level: usize) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("non-root decision level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var().index();
                self.saved_phase[v] = lit.is_positive();
                self.assigns[v] = None;
                self.reason[v] = INVALID_CLAUSE;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v].is_none() {
                let act = self.activity[v];
                match best {
                    Some((_, b)) if b >= act => {}
                    _ => best = Some((v, act)),
                }
            }
        }
        best.map(|(v, _)| Var::from_index(v))
    }

    fn reduce_learnts(&mut self) {
        // Collect learnt clause indices sorted by activity (ascending) and
        // remove the least active half that are not reasons for current
        // assignments. Rebuilding watches afterwards keeps the code simple.
        let mut learnt_idx: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt)
            .collect();
        if learnt_idx.len() < 2 {
            return;
        }
        learnt_idx.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<usize> = self
            .reason
            .iter()
            .copied()
            .filter(|&r| r != INVALID_CLAUSE)
            .collect();
        let to_remove: Vec<usize> = learnt_idx
            .iter()
            .copied()
            .take(learnt_idx.len() / 2)
            .filter(|i| !locked.contains(i))
            .collect();
        if to_remove.is_empty() {
            return;
        }
        let keep: Vec<bool> = (0..self.clauses.len())
            .map(|i| !to_remove.contains(&i))
            .collect();
        // Build the index remapping and compact the clause database.
        let mut remap = vec![INVALID_CLAUSE; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - to_remove.len());
        for (i, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if keep[i] {
                remap[i] = new_clauses.len();
                new_clauses.push(clause);
            } else {
                self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
            }
        }
        self.clauses = new_clauses;
        for r in &mut self.reason {
            if *r != INVALID_CLAUSE {
                *r = remap[*r];
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            self.watches[(!clause.lits[0]).code()].push(i);
            self.watches[(!clause.lits[1]).code()].push(i);
        }
    }

    fn luby(i: u64) -> u64 {
        // Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        // `i` is the 0-based restart count.
        let mut i = i + 1;
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// Assumptions are treated as forced decisions at the lowest decision
    /// levels; they do not permanently constrain the solver, so repeated calls
    /// with different assumptions are supported.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let started = Instant::now();
        let result = self.solve_with_assumptions_inner(assumptions);
        self.model_valid = result == SolveResult::Sat;
        self.stats.solve_calls += 1;
        self.stats.solve_time += started.elapsed();
        result
    }

    fn solve_with_assumptions_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            self.ensure_vars(lit.var().index() + 1);
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        self.max_learnts = (self.clauses.len() as f64 * 0.5).max(100.0);

        let mut restart_count: u64 = 0;
        let mut conflicts_until_restart = 100 * Self::luby(restart_count);
        let mut conflicts_in_round: u64 = 0;

        loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    conflicts_in_round += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let (learnt, backtrack_level) = self.analyze(confl);
                    self.backtrack(backtrack_level);
                    let assert_lit = learnt[0];
                    if learnt.len() == 1 {
                        if !self.enqueue(assert_lit, INVALID_CLAUSE) {
                            self.ok = false;
                            return SolveResult::Unsat;
                        }
                    } else {
                        let ci = self.attach_clause(learnt, true);
                        self.bump_clause(ci);
                        self.enqueue(assert_lit, ci);
                    }
                    self.decay_activities();
                }
                None => {
                    if conflicts_in_round >= conflicts_until_restart {
                        conflicts_in_round = 0;
                        restart_count += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart = 100 * Self::luby(restart_count);
                        self.backtrack(assumptions.len().min(self.decision_level()));
                    }
                    if self.stats.learnt_clauses as f64 > self.max_learnts {
                        self.reduce_learnts();
                        self.max_learnts *= 1.1;
                    }
                    // Assumption decisions first, then free decisions.
                    let next = if self.decision_level() < assumptions.len() {
                        let a = assumptions[self.decision_level()];
                        match self.lit_value(a) {
                            Some(true) => {
                                // Already implied: introduce an empty decision level
                                // to keep the level/assumption correspondence.
                                self.trail_lim.push(self.trail.len());
                                continue;
                            }
                            Some(false) => {
                                self.backtrack(0);
                                return SolveResult::Unsat;
                            }
                            None => Some(a),
                        }
                    } else {
                        self.pick_branch_var()
                            .map(|v| Lit::new(v, self.saved_phase[v.index()]))
                    };
                    match next {
                        None => return SolveResult::Sat,
                        Some(lit) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, INVALID_CLAUSE);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i64) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i > 0)
    }

    fn solver_with_vars(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses() {
        let (mut s, v) = solver_with_vars(2);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (mut s, _) = solver_with_vars(1);
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1), lit(&v, -1)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        let (mut s, v) = solver_with_vars(4);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1), lit(&v, 2)]);
        s.add_clause([lit(&v, -2), lit(&v, 3)]);
        s.add_clause([lit(&v, -3), lit(&v, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for var in &v {
            assert_eq!(s.value(*var), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p_{i,h} means pigeon i sits in hole h.
        let (mut s, v) = solver_with_vars(6);
        let p = |i: usize, h: usize| i * 2 + h + 1;
        for i in 0..3 {
            s.add_clause([lit(&v, p(i, 0) as i64), lit(&v, p(i, 1) as i64)]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([lit(&v, -(p(i, h) as i64)), lit(&v, -(p(j, h) as i64))]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        let (mut s, v) = solver_with_vars(12);
        let p = |i: usize, h: usize| i * 3 + h + 1;
        for i in 0..4 {
            s.add_clause((0..3).map(|h| lit(&v, p(i, h) as i64)));
        }
        for h in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause([lit(&v, -(p(i, h) as i64)), lit(&v, -(p(j, h) as i64))]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn satisfiable_graph_coloring() {
        // Triangle with 3 colours is satisfiable.
        let (mut s, v) = solver_with_vars(9);
        let c = |node: usize, colour: usize| node * 3 + colour + 1;
        for node in 0..3 {
            s.add_clause((0..3).map(|k| lit(&v, c(node, k) as i64)));
            for k1 in 0..3 {
                for k2 in (k1 + 1)..3 {
                    s.add_clause([
                        lit(&v, -(c(node, k1) as i64)),
                        lit(&v, -(c(node, k2) as i64)),
                    ]);
                }
            }
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            for k in 0..3 {
                s.add_clause([lit(&v, -(c(a, k) as i64)), lit(&v, -(c(b, k) as i64))]);
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the colouring is proper.
        let colour_of = |s: &Solver, node: usize| {
            (0..3)
                .find(|&k| s.value(v[c(node, k) - 1]) == Some(true))
                .unwrap()
        };
        assert_ne!(colour_of(&s, 0), colour_of(&s, 1));
        assert_ne!(colour_of(&s, 1), colour_of(&s, 2));
        assert_ne!(colour_of(&s, 0), colour_of(&s, 2));
    }

    #[test]
    fn assumptions_do_not_persist() {
        let (mut s, v) = solver_with_vars(2);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -2)]), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        // Conflicting assumptions yield Unsat without poisoning the solver.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_contradicting_unit_is_unsat() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A slightly larger random-ish instance with a known satisfying shape.
        let (mut s, v) = solver_with_vars(8);
        let clauses: Vec<Vec<i64>> = vec![
            vec![1, 2, -3],
            vec![-1, 4],
            vec![3, -4, 5],
            vec![-5, 6],
            vec![-6, -2, 7],
            vec![7, 8],
            vec![-7, -8, 1],
            vec![2, 5, 8],
        ];
        for c in &clauses {
            s.add_clause(c.iter().map(|&x| lit(&v, x)));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model();
        for c in &clauses {
            assert!(c.iter().any(|&x| {
                let val = model[(x.unsigned_abs() - 1) as usize];
                if x > 0 {
                    val
                } else {
                    !val
                }
            }));
        }
    }

    #[test]
    fn stats_are_populated() {
        let (mut s, v) = solver_with_vars(6);
        let p = |i: usize, h: usize| i * 2 + h + 1;
        for i in 0..3 {
            s.add_clause([lit(&v, p(i, 0) as i64), lit(&v, p(i, 1) as i64)]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([lit(&v, -(p(i, h) as i64)), lit(&v, -(p(j, h) as i64))]);
                }
            }
        }
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions > 0 || stats.propagations > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn adding_clause_after_unsat_returns_false() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1)]);
        assert!(!s.add_clause([lit(&v, 1)]));
    }
}
