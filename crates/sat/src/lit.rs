//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index.
///
/// Variables are created by [`crate::Solver::new_var`] or
/// [`crate::CnfFormula::new_var`] and are valid only for the object that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of the variable (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a raw 0-based index.
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2 * var + negated`, the conventional encoding that
/// makes watch-list indexing cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The variable of this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (non-negated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense code of the literal (`2 * var + negated`), used for
    /// watch-list indexing.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from its dense code.
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Converts to the DIMACS convention: 1-based variable index, negative
    /// numbers for negated literals.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var().0) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Builds a literal from a DIMACS-convention integer.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal must be non-zero");
        let var = Var((value.unsigned_abs() - 1) as u32);
        Lit::new(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, true), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn dimacs_round_trips() {
        let v = Var::from_index(4);
        assert_eq!(Lit::positive(v).to_dimacs(), 5);
        assert_eq!(Lit::negative(v).to_dimacs(), -5);
        assert_eq!(Lit::from_dimacs(5), Lit::positive(v));
        assert_eq!(Lit::from_dimacs(-5), Lit::negative(v));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display() {
        let v = Var::from_index(0);
        assert_eq!(Lit::positive(v).to_string(), "v1");
        assert_eq!(Lit::negative(v).to_string(), "!v1");
    }
}
