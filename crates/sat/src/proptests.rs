//! Property-based tests of the CDCL solver.
//!
//! The central invariants:
//!
//! 1. on satisfiable instances the returned model really satisfies every
//!    clause (checked against [`CnfFormula::evaluate`]);
//! 2. the solver agrees with a brute-force enumeration on small random
//!    instances, in both the SAT and UNSAT directions;
//! 3. solving under assumptions agrees with adding the assumptions as unit
//!    clauses to a fresh solver.

use crate::{CnfFormula, Lit, SolveResult, Var};
use proptest::prelude::*;

/// Brute-force satisfiability by enumerating all assignments.
fn brute_force_sat(cnf: &CnfFormula) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force limited to 16 variables");
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        cnf.evaluate(&assignment)
    })
}

fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    let clause = proptest::collection::vec((1..=max_vars, any::<bool>()), 1..=3);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = CnfFormula::new();
        for _ in 0..max_vars {
            cnf.new_var();
        }
        for clause in clauses {
            cnf.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pos)| Lit::new(Var::from_index(v - 1), pos)),
            );
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let mut solver = cnf.to_solver();
        let result = solver.solve();
        let expected = brute_force_sat(&cnf);
        prop_assert_eq!(result == SolveResult::Sat, expected);
        if result == SolveResult::Sat {
            prop_assert!(cnf.evaluate(&solver.model()));
        }
    }

    #[test]
    fn model_is_a_real_model(cnf in arb_cnf(12, 40)) {
        let mut solver = cnf.to_solver();
        if solver.solve() == SolveResult::Sat {
            prop_assert!(cnf.evaluate(&solver.model()));
        }
    }

    #[test]
    fn assumptions_match_unit_clauses(cnf in arb_cnf(8, 20), assumption_bits in any::<u8>()) {
        // Use the low three bits to pick up to three assumption literals.
        let assumptions: Vec<Lit> = (0..3)
            .map(|i| Lit::new(Var::from_index(i), assumption_bits & (1 << i) != 0))
            .collect();

        let mut with_assumptions = cnf.to_solver();
        let r1 = with_assumptions.solve_with_assumptions(&assumptions);

        let mut with_units = cnf.clone();
        for lit in &assumptions {
            with_units.add_clause([*lit]);
        }
        let mut unit_solver = with_units.to_solver();
        let r2 = unit_solver.solve();

        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn solve_is_repeatable(cnf in arb_cnf(8, 24)) {
        let mut s1 = cnf.to_solver();
        let mut s2 = cnf.to_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
        // Re-solving the same solver gives the same answer.
        let again = s1.solve();
        prop_assert_eq!(again, s2.solve());
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability(cnf in arb_cnf(6, 16)) {
        let text = crate::write_dimacs(&cnf);
        let reparsed = crate::parse_dimacs(&text).unwrap();
        let mut s1 = cnf.to_solver();
        let mut s2 = reparsed.to_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
    }
}
