//! Property-based tests of the CDCL solver.
//!
//! The central invariants:
//!
//! 1. on satisfiable instances the returned model really satisfies every
//!    clause (checked against [`CnfFormula::evaluate`]);
//! 2. the solver agrees with a brute-force enumeration on small random
//!    instances, in both the SAT and UNSAT directions;
//! 3. solving under assumptions agrees with adding the assumptions as unit
//!    clauses to a fresh solver;
//! 4. differential checks of the CDCL core against exhaustive enumeration on
//!    instances up to 16 variables with wider clauses — sat/unsat agreement,
//!    model validity, and unsat-under-assumptions consistency — which
//!    exercise propagation (blockers), conflict analysis (minimization) and
//!    restarts on deeper search trees than the narrow 8-variable instances.

use crate::{CnfFormula, Lit, PhaseMode, RestartStrategy, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;

/// Brute-force satisfiability by enumerating all assignments.
fn brute_force_sat(cnf: &CnfFormula) -> bool {
    brute_force_model(cnf, &[]).is_some()
}

/// Brute-force search for a model satisfying the formula and every
/// assumption literal; `None` when unsatisfiable under the assumptions.
fn brute_force_model(cnf: &CnfFormula, assumptions: &[Lit]) -> Option<Vec<bool>> {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force limited to 16 variables");
    (0u32..(1 << n))
        .map(|bits| (0..n).map(|i| bits & (1 << i) != 0).collect::<Vec<bool>>())
        .find(|assignment| {
            cnf.evaluate(assignment)
                && assumptions
                    .iter()
                    .all(|lit| assignment[lit.var().index()] == lit.is_positive())
        })
}

/// Random CNF with the given clause-width range (codomain of
/// [`arb_cnf`] plus wider clauses for the differential tests).
fn arb_cnf_with_width(
    max_vars: usize,
    max_clauses: usize,
    width: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = CnfFormula> {
    let clause = proptest::collection::vec((1..=max_vars, any::<bool>()), width);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = CnfFormula::new();
        for _ in 0..max_vars {
            cnf.new_var();
        }
        for clause in clauses {
            cnf.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pos)| Lit::new(Var::from_index(v - 1), pos)),
            );
        }
        cnf
    })
}

fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    arb_cnf_with_width(max_vars, max_clauses, 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let mut solver = cnf.to_solver();
        let result = solver.solve();
        let expected = brute_force_sat(&cnf);
        prop_assert_eq!(result == SolveResult::Sat, expected);
        if result == SolveResult::Sat {
            prop_assert!(cnf.evaluate(&solver.model()));
        }
    }

    #[test]
    fn model_is_a_real_model(cnf in arb_cnf(12, 40)) {
        let mut solver = cnf.to_solver();
        if solver.solve() == SolveResult::Sat {
            prop_assert!(cnf.evaluate(&solver.model()));
        }
    }

    #[test]
    fn assumptions_match_unit_clauses(cnf in arb_cnf(8, 20), assumption_bits in any::<u8>()) {
        // Use the low three bits to pick up to three assumption literals.
        let assumptions: Vec<Lit> = (0..3)
            .map(|i| Lit::new(Var::from_index(i), assumption_bits & (1 << i) != 0))
            .collect();

        let mut with_assumptions = cnf.to_solver();
        let r1 = with_assumptions.solve_with_assumptions(&assumptions);

        let mut with_units = cnf.clone();
        for lit in &assumptions {
            with_units.add_clause([*lit]);
        }
        let mut unit_solver = with_units.to_solver();
        let r2 = unit_solver.solve();

        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn solve_is_repeatable(cnf in arb_cnf(8, 24)) {
        let mut s1 = cnf.to_solver();
        let mut s2 = cnf.to_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
        // Re-solving the same solver gives the same answer.
        let again = s1.solve();
        prop_assert_eq!(again, s2.solve());
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability(cnf in arb_cnf(6, 16)) {
        let text = crate::write_dimacs(&cnf);
        let reparsed = crate::parse_dimacs(&text).unwrap();
        let mut s1 = cnf.to_solver();
        let mut s2 = reparsed.to_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
    }
}

// Differential tests of the CDCL core against exhaustive enumeration; a
// separate block keeps the `proptest!` macro expansion within the default
// recursion limit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Differential check of the CDCL core at the brute-force ceiling:
    // 16 variables and clauses up to width 5 produce non-trivial search
    // (restarts, learnt clauses, minimization) while enumeration stays
    // exact. Verdicts must agree and models must really be models.
    #[test]
    fn cdcl_differential_vs_enumeration(cnf in arb_cnf_with_width(16, 64, 1..=5)) {
        let mut solver = cnf.to_solver();
        let result = solver.solve();
        prop_assert_eq!(result == SolveResult::Sat, brute_force_sat(&cnf));
        if result == SolveResult::Sat {
            prop_assert!(cnf.evaluate(&solver.model()));
        }
    }

    // Unsat-under-assumptions consistency: the solver's verdict under
    // assumption literals matches enumeration restricted to assignments
    // honouring the assumptions, on SAT the model honours them too, and the
    // assumptions leave no permanent constraint behind.
    #[test]
    fn assumptions_differential_vs_enumeration(
        cnf in arb_cnf_with_width(12, 48, 1..=4),
        assumption_bits in any::<u8>(),
    ) {
        let assumptions: Vec<Lit> = (0..4)
            .map(|i| Lit::new(Var::from_index(i), assumption_bits & (1 << i) != 0))
            .collect();
        let mut solver = cnf.to_solver();
        let result = solver.solve_with_assumptions(&assumptions);
        let expected = brute_force_model(&cnf, &assumptions);
        prop_assert_eq!(result == SolveResult::Sat, expected.is_some());
        if result == SolveResult::Sat {
            let model = solver.model();
            prop_assert!(cnf.evaluate(&model));
            for lit in &assumptions {
                prop_assert_eq!(model[lit.var().index()], lit.is_positive());
            }
        }
        // The assumptions are transient: an unconstrained re-solve must agree
        // with plain enumeration again.
        prop_assert_eq!(solver.solve() == SolveResult::Sat, brute_force_sat(&cnf));
    }

    // Incremental clause addition between solve calls agrees with solving
    // the combined formula from scratch.
    #[test]
    fn incremental_addition_matches_fresh_solver(
        base in arb_cnf_with_width(10, 32, 1..=4),
        extra in proptest::collection::vec(
            proptest::collection::vec((1..=10usize, any::<bool>()), 1..=4), 1..=8),
    ) {
        let mut incremental = base.to_solver();
        let _ = incremental.solve();
        let mut combined = base.clone();
        for clause in extra {
            let lits: Vec<Lit> = clause
                .into_iter()
                .map(|(v, pos)| Lit::new(Var::from_index(v - 1), pos))
                .collect();
            incremental.add_clause(lits.iter().copied());
            combined.add_clause(lits);
        }
        let r1 = incremental.solve();
        let mut fresh = combined.to_solver();
        prop_assert_eq!(r1, fresh.solve());
        prop_assert_eq!(r1 == SolveResult::Sat, brute_force_sat(&combined));
    }
}

/// The search-policy grid exercised by the config-differential properties:
/// every restart strategy, both phase modes, and non-default clause-DB
/// settings. Verdicts must be invariant across all of them.
fn config_grid() -> Vec<SolverConfig> {
    vec![
        SolverConfig::default(),
        SolverConfig {
            restart: RestartStrategy::EmaLbd,
            restart_base: 8,
            ..SolverConfig::default()
        },
        SolverConfig {
            restart: RestartStrategy::NoneBelow(u64::MAX),
            ..SolverConfig::default()
        },
        SolverConfig {
            restart: RestartStrategy::NoneBelow(32),
            restart_base: 2,
            phase_saving: PhaseMode::ResetPerQuery,
            reduce_growth_pct: 100,
            glue_threshold: 5,
        },
        SolverConfig {
            restart_base: 1,
            phase_saving: PhaseMode::ResetPerQuery,
            glue_threshold: 1,
            ..SolverConfig::default()
        },
    ]
}

/// Loads `cnf` into a solver running under `config`.
fn solver_with(cnf: &CnfFormula, config: SolverConfig) -> Solver {
    let mut solver = Solver::with_config(config);
    for _ in 0..cnf.num_vars() {
        solver.new_var();
    }
    for clause in cnf.clauses() {
        solver.add_clause(clause.iter().copied());
    }
    solver
}

// Search-policy differential: restart strategy, phase saving, and clause-DB
// tuning are heuristics — they may change how the solver searches but never
// what it concludes. Each config variant must agree with exhaustive
// enumeration (and hence with every other variant) on verdicts, produce real
// models, and honour assumptions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_search_policies_agree_with_enumeration(cnf in arb_cnf_with_width(14, 56, 1..=5)) {
        let expected = brute_force_sat(&cnf);
        for config in config_grid() {
            let mut solver = solver_with(&cnf, config);
            let result = solver.solve();
            prop_assert_eq!(result == SolveResult::Sat, expected, "config {:?}", config);
            if result == SolveResult::Sat {
                prop_assert!(cnf.evaluate(&solver.model()), "config {:?}", config);
            }
        }
    }

    #[test]
    fn all_search_policies_agree_under_assumptions(
        cnf in arb_cnf_with_width(10, 40, 1..=4),
        assumption_bits in any::<u8>(),
    ) {
        let assumptions: Vec<Lit> = (0..4)
            .map(|i| Lit::new(Var::from_index(i), assumption_bits & (1 << i) != 0))
            .collect();
        let expected = brute_force_model(&cnf, &assumptions).is_some();
        for config in config_grid() {
            let mut solver = solver_with(&cnf, config);
            let result = solver.solve_with_assumptions(&assumptions);
            prop_assert_eq!(result == SolveResult::Sat, expected, "config {:?}", config);
            if result == SolveResult::Sat {
                let model = solver.model();
                prop_assert!(cnf.evaluate(&model), "config {:?}", config);
                for lit in &assumptions {
                    prop_assert_eq!(model[lit.var().index()], lit.is_positive());
                }
            }
            // Heuristics never leak state that changes a later verdict.
            prop_assert_eq!(
                solver.solve() == SolveResult::Sat,
                brute_force_sat(&cnf),
                "config {:?}", config
            );
        }
    }
}
