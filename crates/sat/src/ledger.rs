//! Activation-literal bookkeeping for incremental sessions.
//!
//! Consumers of [`crate::IncrementalSolver`] express retractable constraints
//! through activation literals: a clause `¬act ∨ C` is added once and `C`
//! bites only in queries that assume `act`. The pattern recurs in every
//! long-lived session — per-`(formula, bound)` reachability disjunctions,
//! per-disjunct conclusion encodings, per-negative-example blockers — and
//! each use needs the same three things: a key → literal map, allocate-once
//! semantics, and counters separating first-time encodings from reuses (the
//! quantity incremental sessions exist to optimise).
//!
//! [`ActivationLedger`] packages exactly that. It does not talk to the
//! solver itself: the caller's closure allocates the literal and adds the
//! guarded clauses, so the ledger composes with any [`crate::ClauseSink`]
//! without borrowing it.

use crate::Lit;
use std::collections::HashMap;
use std::hash::Hash;

/// A key → activation-literal map with allocate-once semantics and
/// fresh/reused counters.
///
/// `K` is whatever identifies the guarded constraint — an interned
/// expression id, a `(formula, bound)` pair, a trace index. The ledger
/// never frees entries: retracting a constraint is done by *not assuming*
/// its literal, which is O(0) and leaves the solver's learnt clauses about
/// it intact.
#[derive(Debug, Clone, Default)]
pub struct ActivationLedger<K> {
    lits: HashMap<K, Lit>,
    fresh: u64,
    reused: u64,
}

impl<K: Hash + Eq> ActivationLedger<K> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ActivationLedger {
            lits: HashMap::new(),
            fresh: 0,
            reused: 0,
        }
    }

    /// The literal guarding `key`'s constraint, allocating it with `make`
    /// on first sight. `make` runs only on a miss; it typically allocates a
    /// solver variable and adds the clauses guarded by (or defining) the
    /// returned literal.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> Lit) -> Lit {
        match self.lits.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                self.reused += 1;
                *entry.get()
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.fresh += 1;
                *entry.insert(make())
            }
        }
    }

    /// Number of lookups that allocated a fresh literal.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }

    /// Number of lookups answered by an existing entry.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Number of distinct keys ledgered.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` when no key has been ledgered yet.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClauseSink, IncrementalSolver, SolveResult, Solver};

    #[test]
    fn ledger_allocates_once_and_counts() {
        let mut ledger: ActivationLedger<u32> = ActivationLedger::new();
        let mut next = 0u32;
        let mut make = || {
            next += 1;
            Lit::positive(crate::Var::from_index(next as usize))
        };
        let a = ledger.get_or_insert_with(7, &mut make);
        let b = ledger.get_or_insert_with(7, &mut make);
        let c = ledger.get_or_insert_with(8, &mut make);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ledger.fresh(), 2);
        assert_eq!(ledger.reused(), 1);
        assert_eq!(ledger.len(), 2);
        assert!(!ledger.is_empty());
    }

    #[test]
    fn ledgered_constraints_retract_by_omission() {
        // The end-to-end pattern: two guarded unit constraints over one
        // variable; assuming either literal selects its constraint, assuming
        // neither leaves the solver free, and a constraint once retracted
        // never contaminates later queries.
        fn guard(solver: &mut Solver, lit: Lit) -> Lit {
            let act = Lit::positive(ClauseSink::new_var(solver));
            ClauseSink::add_clause(solver, &[!act, lit]);
            act
        }
        let mut solver = Solver::new();
        let x = ClauseSink::new_var(&mut solver);
        let mut ledger: ActivationLedger<&'static str> = ActivationLedger::new();
        let force_true = ledger.get_or_insert_with("x", || guard(&mut solver, Lit::positive(x)));
        let force_false =
            ledger.get_or_insert_with("not-x", || guard(&mut solver, Lit::negative(x)));
        assert_eq!(
            IncrementalSolver::solve(&mut solver, &[force_true]),
            SolveResult::Sat
        );
        assert_eq!(solver.model_value(x), Some(true));
        assert_eq!(
            IncrementalSolver::solve(&mut solver, &[force_false]),
            SolveResult::Sat
        );
        assert_eq!(solver.model_value(x), Some(false));
        assert_eq!(
            IncrementalSolver::solve(&mut solver, &[force_true, force_false]),
            SolveResult::Unsat
        );
        // Both constraints retracted: the solver is free again.
        assert_eq!(IncrementalSolver::solve(&mut solver, &[]), SolveResult::Sat);
        assert_eq!(ledger.fresh(), 2);
    }
}
