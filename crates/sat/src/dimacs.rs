//! DIMACS CNF import and export.
//!
//! Only used for debugging and for golden tests of the bit-blaster; the
//! production pipeline passes [`CnfFormula`] values directly.

use crate::{CnfFormula, Lit};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error parsing a DIMACS CNF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader {
        /// The offending line.
        line: String,
    },
    /// A literal token could not be parsed as an integer.
    BadLiteral {
        /// The offending token.
        token: String,
    },
    /// A clause was not terminated by `0` before the end of input.
    UnterminatedClause,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::BadHeader { line } => write!(f, "malformed DIMACS header: `{line}`"),
            ParseDimacsError::BadLiteral { token } => {
                write!(f, "malformed DIMACS literal: `{token}`")
            }
            ParseDimacsError::UnterminatedClause => {
                write!(f, "unterminated clause at end of input")
            }
        }
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a [`CnfFormula`].
///
/// Comment lines (`c ...`) are ignored. The variable count from the header is
/// honoured as a minimum; clauses may mention higher variable indices, which
/// grow the formula.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] on malformed input.
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, ParseDimacsError> {
    let mut cnf = CnfFormula::new();
    let mut declared_vars = 0usize;
    let mut header_seen = false;
    let mut current: Vec<Lit> = Vec::new();

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            let kind = parts.next();
            let vars = parts.next().and_then(|t| t.parse::<usize>().ok());
            let clauses = parts.next().and_then(|t| t.parse::<usize>().ok());
            if kind != Some("cnf") || vars.is_none() || clauses.is_none() {
                return Err(ParseDimacsError::BadHeader {
                    line: line.to_string(),
                });
            }
            declared_vars = vars.expect("checked above");
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(ParseDimacsError::BadHeader {
                line: line.to_string(),
            });
        }
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError::BadLiteral {
                token: token.to_string(),
            })?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::UnterminatedClause);
    }
    while cnf.num_vars() < declared_vars {
        cnf.new_var();
    }
    Ok(cnf)
}

/// Serialises a [`CnfFormula`] to DIMACS CNF text.
pub fn write_dimacs(cnf: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_simple_instance() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 4 3\n1 2 0\n-1 3 0\n-3 -2 4 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let printed = write_dimacs(&cnf);
        let reparsed = parse_dimacs(&printed).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn clauses_split_across_lines() {
        let text = "p cnf 2 1\n1\n-2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_dimacs("p dnf 2 1\n1 0\n"),
            Err(ParseDimacsError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ParseDimacsError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 x 0\n"),
            Err(ParseDimacsError::BadLiteral { .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 2\n"),
            Err(ParseDimacsError::UnterminatedClause)
        ));
    }

    #[test]
    fn header_var_count_is_honoured() {
        let cnf = parse_dimacs("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 10);
    }
}
