//! Search-policy configuration of the CDCL solver.
//!
//! The active-learning pipeline is a *many-small-queries* workload:
//! thousands of incremental solve calls per run, most of them deciding in a
//! handful of conflicts against a long-lived session. The restart cadence,
//! phase-saving behaviour and clause-database policy a solver inherits from
//! one-big-instance SAT lore are not obviously right for that profile, so
//! they are configuration, not constants: [`SolverConfig`] bundles the
//! tunables, [`crate::Solver::with_config`] applies them, and the
//! `AMLE_SOLVER_*` environment knobs (parsed by [`SolverConfig::from_env`]
//! with loud-not-fatal validation) let a deployment pick a policy without
//! recompiling.
//!
//! Every setting is **verdict-neutral**: satisfiability does not depend on
//! the search order, and the consumers that extract models (the k-induction
//! checker) canonicalise them away from solver history. Only the work
//! counters — conflicts, propagations, restarts, wall time — may move, which
//! is what makes policy search safely CI-gateable against a pinned semantic
//! fingerprint.

use std::fmt;

/// When the search loop abandons its current assignment stack and restarts
/// from the assumption prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartStrategy {
    /// Luby-sequence restarts: the i-th restart fires after
    /// `restart_base * luby(i)` conflicts. The classic
    /// universally-competitive schedule and the default.
    Luby,
    /// Glucose-style EMA-LBD restarts: restart when the recent learnt-clause
    /// LBD (exponential moving average, α = 1/32) exceeds the call's running
    /// LBD mean by 25%, at most once per `restart_base` conflicts. Reacts to
    /// the solver learning badly instead of to a fixed schedule.
    EmaLbd,
    /// No restarts until the solve call has seen this many conflicts; beyond
    /// the threshold the Luby schedule takes over (counted from the start of
    /// the call). Queries that decide below the threshold — the common case
    /// in this workload — never pay restart churn at all.
    NoneBelow(u64),
}

impl fmt::Display for RestartStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartStrategy::Luby => write!(f, "luby"),
            RestartStrategy::EmaLbd => write!(f, "ema-lbd"),
            RestartStrategy::NoneBelow(n) => write!(f, "none-below-{n}"),
        }
    }
}

impl RestartStrategy {
    /// Parses a flag/environment spelling: `luby`, `ema-lbd` (alias
    /// `glucose`), `none-below-<N>`, or `never` (no restarts ever —
    /// shorthand for an unreachable threshold).
    pub fn from_name(name: &str) -> Option<RestartStrategy> {
        let name = name.trim();
        match name {
            "luby" => Some(RestartStrategy::Luby),
            "ema-lbd" | "ema_lbd" | "glucose" => Some(RestartStrategy::EmaLbd),
            "never" => Some(RestartStrategy::NoneBelow(u64::MAX)),
            _ => {
                let n = name
                    .strip_prefix("none-below-")
                    .or_else(|| name.strip_prefix("none_below_"))?;
                n.parse().ok().map(RestartStrategy::NoneBelow)
            }
        }
    }
}

/// What happens to saved phases (the polarity a variable is branched to)
/// between solve calls of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseMode {
    /// Phases persist across queries: a session that keeps answering
    /// variations of the same query re-lands on the satisfying region it
    /// found last time. The default.
    Persist,
    /// Phases are reset at the start of every solve call: assumption
    /// variables to their assumed polarity, everything else to `false`.
    /// Removes cross-query search-order coupling at the cost of re-finding
    /// known-good regions.
    ResetPerQuery,
}

impl fmt::Display for PhaseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseMode::Persist => write!(f, "persist"),
            PhaseMode::ResetPerQuery => write!(f, "reset"),
        }
    }
}

impl PhaseMode {
    /// Parses a flag/environment spelling (`persist` or `reset`).
    pub fn from_name(name: &str) -> Option<PhaseMode> {
        match name.trim() {
            "persist" => Some(PhaseMode::Persist),
            "reset" | "reset-per-query" => Some(PhaseMode::ResetPerQuery),
            _ => None,
        }
    }
}

/// The search-policy tunables of a [`crate::Solver`].
///
/// All fields are integers so the config is `Copy`/`Eq`/`Hash` and can ride
/// inside higher-level configuration structs; the growth factor is expressed
/// in percent. `Default` is the workload-tuned policy (Luby restarts with a
/// base of 50 conflicts, persistent phase saving, 10% clause-DB growth, glue
/// threshold 4): on the quick suite it cuts conflicts by ~2% and min-of-3
/// wall/solver time by ~10/15% versus the historical
/// `restart_base: 100, glue_threshold: 2` policy, which remains reachable
/// through the `AMLE_SOLVER_*` knobs. Every setting is verdict-neutral:
/// fingerprints and solve counts never depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Restart strategy of the search loop.
    pub restart: RestartStrategy,
    /// Conflict unit of the restart schedule: the Luby multiplier, and the
    /// minimum conflict spacing between EMA-LBD restarts. Clamped to ≥ 1.
    pub restart_base: u64,
    /// Phase-saving behaviour across the solve calls of a session.
    pub phase_saving: PhaseMode,
    /// Learnt-database growth per reduction, in percent: after each
    /// reduction the learnt budget becomes `budget * pct / 100`. 110 (grow
    /// 10%) is the historical default; 100 keeps the budget fixed. Clamped
    /// to ≥ 100.
    pub reduce_growth_pct: u32,
    /// LBD at or below which a learnt clause is "glue" and survives every
    /// database reduction. Clamped to ≥ 1 (LBD-1 clauses are effectively
    /// units and must never be dropped).
    pub glue_threshold: u32,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart: RestartStrategy::Luby,
            restart_base: 50,
            phase_saving: PhaseMode::Persist,
            reduce_growth_pct: 110,
            glue_threshold: 4,
        }
    }
}

impl SolverConfig {
    /// Applies the documented clamps (`restart_base ≥ 1`,
    /// `reduce_growth_pct ≥ 100`, `glue_threshold ≥ 1`) and returns the
    /// sanitised config. Construction sites that bypass
    /// [`SolverConfig::from_env`] go through this in
    /// [`crate::Solver::with_config`], so an out-of-range literal cannot
    /// produce a shrinking clause database or a zero-spaced restart loop.
    pub fn clamped(mut self) -> SolverConfig {
        self.restart_base = self.restart_base.max(1);
        self.reduce_growth_pct = self.reduce_growth_pct.max(100);
        self.glue_threshold = self.glue_threshold.max(1);
        self
    }

    /// Reads the policy from the `AMLE_SOLVER_*` environment knobs:
    ///
    /// | variable | values | default |
    /// |---|---|---|
    /// | `AMLE_SOLVER_RESTART` | `luby`, `ema-lbd`/`glucose`, `none-below-<N>`, `never` | `luby` |
    /// | `AMLE_SOLVER_RESTART_BASE` | integer ≥ 1 | `50` |
    /// | `AMLE_SOLVER_PHASE` | `persist`, `reset` | `persist` |
    /// | `AMLE_SOLVER_REDUCE_GROWTH_PCT` | integer ≥ 100 | `110` |
    /// | `AMLE_SOLVER_GLUE` | integer ≥ 1 | `4` |
    ///
    /// Unset or empty variables keep their defaults. Malformed values fall
    /// back to the default **loudly** (one warning per process, like
    /// `AMLE_WORKERS`): a typo in a CI matrix or a service unit must not
    /// silently evaporate the intended policy. Out-of-range numbers are
    /// clamped with the same one-time warning.
    pub fn from_env() -> Self {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        let get = |name: &str| std::env::var(name).ok();
        let (config, warnings) = Self::from_env_values(
            get("AMLE_SOLVER_RESTART").as_deref(),
            get("AMLE_SOLVER_RESTART_BASE").as_deref(),
            get("AMLE_SOLVER_PHASE").as_deref(),
            get("AMLE_SOLVER_REDUCE_GROWTH_PCT").as_deref(),
            get("AMLE_SOLVER_GLUE").as_deref(),
        );
        if !warnings.is_empty() {
            WARN_ONCE.call_once(|| {
                for warning in &warnings {
                    eprintln!("{warning}");
                }
            });
        }
        config
    }

    /// The pure parsing-and-clamping rule behind [`SolverConfig::from_env`],
    /// factored out so tests can pin it without mutating the process
    /// environment. Returns the effective config plus one warning line per
    /// rejected or clamped value.
    pub fn from_env_values(
        restart: Option<&str>,
        restart_base: Option<&str>,
        phase: Option<&str>,
        reduce_growth_pct: Option<&str>,
        glue: Option<&str>,
    ) -> (SolverConfig, Vec<String>) {
        let mut config = SolverConfig::default();
        let mut warnings = Vec::new();
        let mut set =
            |name: &str, raw: Option<&str>, apply: &mut dyn FnMut(&str) -> Option<String>| {
                let Some(raw) = raw else { return };
                let raw = raw.trim();
                if raw.is_empty() {
                    return;
                }
                if let Some(warning) = apply(raw) {
                    warnings.push(format!("{name}=`{raw}` {warning}"));
                }
            };
        set(
            "AMLE_SOLVER_RESTART",
            restart,
            &mut |raw| match RestartStrategy::from_name(raw) {
                Some(strategy) => {
                    config.restart = strategy;
                    None
                }
                None => Some(format!(
                    "is not a restart strategy \
                     (luby|ema-lbd|none-below-<N>|never); using {}",
                    config.restart
                )),
            },
        );
        set(
            "AMLE_SOLVER_RESTART_BASE",
            restart_base,
            &mut |raw| match raw.parse::<u64>() {
                Ok(n) if n >= 1 => {
                    config.restart_base = n;
                    None
                }
                Ok(_) => {
                    config.restart_base = 1;
                    Some("is below 1; clamping to 1".to_string())
                }
                Err(_) => Some(format!(
                    "is not a conflict count; using {}",
                    config.restart_base
                )),
            },
        );
        set(
            "AMLE_SOLVER_PHASE",
            phase,
            &mut |raw| match PhaseMode::from_name(raw) {
                Some(mode) => {
                    config.phase_saving = mode;
                    None
                }
                None => Some(format!(
                    "is not a phase-saving mode (persist|reset); using {}",
                    config.phase_saving
                )),
            },
        );
        set(
            "AMLE_SOLVER_REDUCE_GROWTH_PCT",
            reduce_growth_pct,
            &mut |raw| match raw.parse::<u32>() {
                Ok(n) if n >= 100 => {
                    config.reduce_growth_pct = n;
                    None
                }
                Ok(n) => {
                    config.reduce_growth_pct = 100;
                    Some(format!(
                        "({n}%) would shrink the learnt budget; clamping to 100"
                    ))
                }
                Err(_) => Some(format!(
                    "is not a percentage; using {}",
                    config.reduce_growth_pct
                )),
            },
        );
        set(
            "AMLE_SOLVER_GLUE",
            glue,
            &mut |raw| match raw.parse::<u32>() {
                Ok(n) if n >= 1 => {
                    config.glue_threshold = n;
                    None
                }
                Ok(_) => {
                    config.glue_threshold = 1;
                    Some("is below 1; clamping to 1".to_string())
                }
                Err(_) => Some(format!(
                    "is not an LBD threshold; using {}",
                    config.glue_threshold
                )),
            },
        );
        (config, warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_workload_tuned_policy() {
        let config = SolverConfig::default();
        assert_eq!(config.restart, RestartStrategy::Luby);
        assert_eq!(config.restart_base, 50);
        assert_eq!(config.phase_saving, PhaseMode::Persist);
        assert_eq!(config.reduce_growth_pct, 110);
        assert_eq!(config.glue_threshold, 4);
        assert_eq!(config.clamped(), config, "default needs no clamping");
    }

    #[test]
    fn restart_strategy_names_round_trip() {
        for strategy in [
            RestartStrategy::Luby,
            RestartStrategy::EmaLbd,
            RestartStrategy::NoneBelow(5000),
        ] {
            assert_eq!(
                RestartStrategy::from_name(&strategy.to_string()),
                Some(strategy)
            );
        }
        assert_eq!(
            RestartStrategy::from_name("glucose"),
            Some(RestartStrategy::EmaLbd)
        );
        assert_eq!(
            RestartStrategy::from_name("never"),
            Some(RestartStrategy::NoneBelow(u64::MAX))
        );
        assert_eq!(RestartStrategy::from_name("none-below-"), None);
        assert_eq!(RestartStrategy::from_name("none-below-x"), None);
        assert_eq!(RestartStrategy::from_name("nonsense"), None);
    }

    #[test]
    fn phase_mode_names_round_trip() {
        for mode in [PhaseMode::Persist, PhaseMode::ResetPerQuery] {
            assert_eq!(PhaseMode::from_name(&mode.to_string()), Some(mode));
        }
        assert_eq!(PhaseMode::from_name("nonsense"), None);
    }

    #[test]
    fn env_values_parse_and_default() {
        let (config, warnings) = SolverConfig::from_env_values(None, None, None, None, None);
        assert_eq!(config, SolverConfig::default());
        assert!(warnings.is_empty());

        let (config, warnings) = SolverConfig::from_env_values(
            Some(" none-below-4096 "),
            Some("50"),
            Some("reset"),
            Some("125"),
            Some("3"),
        );
        assert!(warnings.is_empty());
        assert_eq!(config.restart, RestartStrategy::NoneBelow(4096));
        assert_eq!(config.restart_base, 50);
        assert_eq!(config.phase_saving, PhaseMode::ResetPerQuery);
        assert_eq!(config.reduce_growth_pct, 125);
        assert_eq!(config.glue_threshold, 3);
    }

    #[test]
    fn empty_values_keep_defaults_silently() {
        let (config, warnings) =
            SolverConfig::from_env_values(Some(""), Some("  "), Some(""), Some(""), Some(""));
        assert_eq!(config, SolverConfig::default());
        assert!(warnings.is_empty());
    }

    #[test]
    fn malformed_values_warn_and_fall_back() {
        let (config, warnings) = SolverConfig::from_env_values(
            Some("chaotic"),
            Some("-5"),
            Some("sometimes"),
            Some("ten"),
            Some("0x2"),
        );
        assert_eq!(config, SolverConfig::default(), "bad values must not stick");
        assert_eq!(warnings.len(), 5, "every bad value warns: {warnings:?}");
        assert!(warnings[0].contains("AMLE_SOLVER_RESTART"));
        assert!(warnings[1].contains("AMLE_SOLVER_RESTART_BASE"));
        assert!(warnings[2].contains("AMLE_SOLVER_PHASE"));
        assert!(warnings[3].contains("AMLE_SOLVER_REDUCE_GROWTH_PCT"));
        assert!(warnings[4].contains("AMLE_SOLVER_GLUE"));
    }

    #[test]
    fn out_of_range_values_clamp_with_a_warning() {
        let (config, warnings) =
            SolverConfig::from_env_values(None, Some("0"), None, Some("90"), Some("0"));
        assert_eq!(config.restart_base, 1);
        assert_eq!(config.reduce_growth_pct, 100);
        assert_eq!(config.glue_threshold, 1);
        assert_eq!(warnings.len(), 3);
    }

    #[test]
    fn clamped_repairs_out_of_range_literals() {
        let config = SolverConfig {
            restart_base: 0,
            reduce_growth_pct: 5,
            glue_threshold: 0,
            ..SolverConfig::default()
        }
        .clamped();
        assert_eq!(config.restart_base, 1);
        assert_eq!(config.reduce_growth_pct, 100);
        assert_eq!(config.glue_threshold, 1);
    }

    #[test]
    fn from_env_honours_the_process_environment() {
        // Without mutating the environment: whatever the harness set must
        // flow through the same pure rule.
        let expected = SolverConfig::from_env_values(
            std::env::var("AMLE_SOLVER_RESTART").ok().as_deref(),
            std::env::var("AMLE_SOLVER_RESTART_BASE").ok().as_deref(),
            std::env::var("AMLE_SOLVER_PHASE").ok().as_deref(),
            std::env::var("AMLE_SOLVER_REDUCE_GROWTH_PCT")
                .ok()
                .as_deref(),
            std::env::var("AMLE_SOLVER_GLUE").ok().as_deref(),
        )
        .0;
        assert_eq!(SolverConfig::from_env(), expected);
    }
}
