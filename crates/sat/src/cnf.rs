//! A plain CNF container, independent of any solver state.

use crate::{Lit, Solver, Var};

/// A formula in conjunctive normal form: a variable counter plus a clause
/// list.
///
/// `CnfFormula` is the hand-off format between the bit-blaster (which builds
/// formulas) and the solver (which decides them). It can also be loaded from
/// and saved to DIMACS for debugging.
///
/// # Example
///
/// ```
/// use amle_sat::{CnfFormula, Lit, SolveResult};
///
/// let mut cnf = CnfFormula::new();
/// let x = cnf.new_var();
/// let y = cnf.new_var();
/// cnf.add_clause([Lit::positive(x), Lit::positive(y)]);
/// cnf.add_clause([Lit::negative(x)]);
/// let mut solver = cnf.to_solver();
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables and no clauses.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Clauses over variables that have not been allocated yet grow the
    /// variable counter automatically, so formulas built from multiple
    /// encoders stay consistent.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            if lit.var().index() >= self.num_vars {
                self.num_vars = lit.var().index() + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Builds a fresh [`Solver`] loaded with this formula.
    pub fn to_solver(&self) -> Solver {
        let mut solver = Solver::new();
        solver.ensure_vars(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Evaluates the formula under a total assignment (indexed by variable).
    ///
    /// Used by property tests to cross-check solver models.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the number of variables.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars,
            "assignment covers {} variables but formula has {}",
            assignment.len(),
            self.num_vars
        );
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] == lit.is_positive())
        })
    }
}

impl Extend<Vec<Lit>> for CnfFormula {
    fn extend<T: IntoIterator<Item = Vec<Lit>>>(&mut self, iter: T) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn build_and_query() {
        let mut cnf = CnfFormula::new();
        let x = cnf.new_var();
        let y = cnf.new_var();
        cnf.add_clause([Lit::positive(x)]);
        cnf.add_clause([Lit::negative(x), Lit::positive(y)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(cnf.evaluate(&[true, true]));
        assert!(!cnf.evaluate(&[true, false]));
        assert!(!cnf.evaluate(&[false, true]));
    }

    #[test]
    fn clause_grows_var_counter() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([Lit::positive(Var::from_index(4))]);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn to_solver_solves() {
        let mut cnf = CnfFormula::new();
        let x = cnf.new_var();
        let y = cnf.new_var();
        cnf.add_clause([Lit::positive(x), Lit::positive(y)]);
        cnf.add_clause([Lit::negative(x), Lit::positive(y)]);
        cnf.add_clause([Lit::negative(y), Lit::positive(x)]);
        let mut solver = cnf.to_solver();
        assert_eq!(solver.solve(), SolveResult::Sat);
        let model: Vec<bool> = (0..cnf.num_vars())
            .map(|i| solver.value(Var::from_index(i)).unwrap())
            .collect();
        assert!(cnf.evaluate(&model));
    }

    #[test]
    fn extend_with_clauses() {
        let mut cnf = CnfFormula::new();
        let x = cnf.new_var();
        cnf.extend(vec![vec![Lit::positive(x)], vec![Lit::negative(x)]]);
        assert_eq!(cnf.num_clauses(), 2);
        let mut solver = cnf.to_solver();
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn new_vars_bulk() {
        let mut cnf = CnfFormula::new();
        let vars = cnf.new_vars(5);
        assert_eq!(vars.len(), 5);
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(vars[4].index(), 4);
    }
}
