//! # amle-sat
//!
//! A from-scratch CDCL (conflict-driven clause learning) SAT solver used as
//! the reasoning engine behind the bit-blasted bounded model checker and the
//! SAT-based automaton identification in the model learner. Every
//! condition-check and spurious-counterexample query of the paper (Fig. 3a
//! and 3b, Section III-B) bottoms out in [`Solver::solve`] calls issued
//! through the incremental backend seam.
//!
//! Features:
//!
//! * two-watched-literal propagation,
//! * first-UIP conflict analysis with clause learning,
//! * VSIDS-style variable activities with phase saving,
//! * a configurable search policy ([`SolverConfig`]: Luby / EMA-LBD /
//!   conflict-gated restarts, phase-saving modes, clause-DB reduction
//!   growth and glue threshold — all verdict-neutral),
//! * learnt-clause database reduction,
//! * solving under assumptions (incremental use),
//! * a pluggable backend seam ([`IncrementalSolver`] / [`ClauseSink`]) so the
//!   checker and learner can keep one solver session alive across queries,
//! * a plain [`CnfFormula`] container and DIMACS import/export for testing.
//!
//! The solver is deliberately dependency-free and single-threaded: the CNF
//! instances produced by the pipeline (condition checks with one or two
//! unrollings of a controller transition relation, automaton identification
//! for a few dozen states) are small, and determinism matters more than raw
//! throughput for reproducing the paper's tables.
//!
//! ## Example
//!
//! ```
//! use amle_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cnf;
mod config;
mod dimacs;
mod incremental;
mod ledger;
mod lit;
mod solver;

pub use cnf::CnfFormula;
pub use config::{PhaseMode, RestartStrategy, SolverConfig};
pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use incremental::{cdcl_backend, cdcl_backend_with, ClauseSink, IncrementalSolver};
pub use ledger::ActivationLedger;
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};

#[cfg(test)]
mod proptests;
