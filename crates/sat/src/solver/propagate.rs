//! Two-watched-literal propagation with blocker literals.
//!
//! Each watcher pairs the clause reference with a *blocker*: some literal of
//! the clause (initially the other watched literal). If the blocker is
//! already true the clause is satisfied and the watcher is skipped without
//! dereferencing the clause at all — on typical incremental BMC workloads
//! the majority of watcher visits end here, touching only the watcher list
//! and the dense lbool array, both contiguous in memory.
//!
//! Invariants maintained by the loop:
//!
//! * the watched literals of a clause are always its first two slots;
//! * a reason clause keeps its implied literal in slot 0 for as long as the
//!   implication stands (propagation only reorders slot 0 when that literal
//!   is being falsified, which cannot happen to a standing reason) — conflict
//!   analysis and the O(1) lock check rely on this;
//! * a blocker is always a literal of its clause, so "blocker true" soundly
//!   implies "clause satisfied".

use super::clause_db::ClauseRef;
use super::{Solver, LFALSE, LTRUE};
use crate::Lit;

/// A watch-list entry: the clause to revisit plus a cached literal whose
/// truth proves the clause satisfied without dereferencing it.
#[derive(Debug, Clone, Copy)]
pub(super) struct Watcher {
    pub(super) cref: ClauseRef,
    pub(super) blocker: Lit,
}

impl Solver {
    /// Propagates all enqueued assignments to fixpoint. Returns the
    /// conflicting clause, if any.
    pub(super) fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;

            // The list is detached while traversed: watcher migrations push
            // onto *other* lists, and a clause newly watching `p` can only
            // appear here through such a migration, which implies its other
            // watch was just falsified — it will be revisited anyway.
            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            'watchers: while i < watch_list.len() {
                let blocker = watch_list[i].blocker;
                if self.value[blocker.code()] == LTRUE {
                    i += 1;
                    continue;
                }
                let cref = watch_list[i].cref;
                // Normalise the falsified literal to slot 1.
                if self.db.lit(cref, 0) == false_lit {
                    self.db.swap_lits(cref, 0, 1);
                }
                let first = self.db.lit(cref, 0);
                // The other watched literal may satisfy the clause even when
                // the cached blocker is stale; refresh the cache and move on.
                if first != blocker && self.value[first.code()] == LTRUE {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a non-false literal to watch instead.
                let len = self.db.len(cref);
                for k in 2..len {
                    let cand = self.db.lit(cref, k);
                    if self.value[cand.code()] != LFALSE {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!cand).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                watch_list[i].blocker = first;
                if self.value[first.code()] == LFALSE {
                    // Conflict: restore the remaining watchers and report.
                    self.watches[p.code()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, cref);
                i += 1;
            }
            self.watches[p.code()] = watch_list;
        }
        None
    }
}
