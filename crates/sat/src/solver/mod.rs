//! The CDCL solver.
//!
//! The search core is split across focused submodules:
//!
//! * [`clause_db`] — the flat `u32` clause arena ([`clause_db::ClauseRef`],
//!   per-clause LBD and activity, tombstone-and-compact garbage collection);
//! * [`propagate`] — two-watched-literal propagation with blocker literals
//!   and the dense lbool assignment array;
//! * [`decision`] — the indexed VSIDS max-heap behind branching decisions;
//! * [`analyze`] — first-UIP conflict analysis with recursive learnt-clause
//!   minimization and learn-time LBD computation.
//!
//! This module owns the [`Solver`] state, the public API and the top-level
//! search loop (assumption handling, Luby restarts, clause-database
//! reduction).

mod analyze;
mod clause_db;
mod decision;
mod propagate;

use crate::config::{PhaseMode, RestartStrategy, SolverConfig};
use crate::{Lit, Var};
use clause_db::{ClauseDb, ClauseRef};
use decision::VsidsHeap;
use propagate::Watcher;
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::{Duration, Instant};

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// The formula (under the given assumptions) is satisfiable; a model is
    /// available through [`Solver::value`] / [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Aggregate statistics of a solver instance, useful for benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database. This is a
    /// point-in-time **gauge**, not a counter: aggregating statistics from
    /// several solver sessions (`+`/`+=`) takes the maximum of the
    /// per-session snapshots (summing gauges would overstate the live count),
    /// and [`SolverStats::since`] passes the current gauge value through
    /// unchanged rather than differencing it.
    pub learnt_clauses: u64,
    /// Number of `solve` / `solve_with_assumptions` calls.
    pub solve_calls: u64,
    /// Cumulative wall-clock time spent inside `solve`.
    pub solve_time: Duration,
    /// Literals removed from learnt clauses by recursive (MiniSat-style)
    /// conflict-clause minimization before attachment.
    pub minimized_lits: u64,
    /// Sum of the LBD ("glue") values of all stored learnt clauses, as
    /// computed at learn time. Divide by [`SolverStats::lbd_clauses`] (or
    /// call [`SolverStats::mean_lbd`]) for the mean glue — low means the
    /// solver is learning reusable clauses.
    pub lbd_sum: u64,
    /// Number of learnt clauses that contributed to
    /// [`SolverStats::lbd_sum`] (unit learnts are asserted on the trail, not
    /// stored, and carry no LBD).
    pub lbd_clauses: u64,
}

impl AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        // Gauge, not counter: the aggregate of per-session snapshots is the
        // largest live database, not their sum.
        self.learnt_clauses = self.learnt_clauses.max(rhs.learnt_clauses);
        self.solve_calls += rhs.solve_calls;
        self.solve_time += rhs.solve_time;
        self.minimized_lits += rhs.minimized_lits;
        self.lbd_sum += rhs.lbd_sum;
        self.lbd_clauses += rhs.lbd_clauses;
    }
}

impl Add for SolverStats {
    type Output = SolverStats;

    fn add(mut self, rhs: SolverStats) -> SolverStats {
        self += rhs;
        self
    }
}

impl SolverStats {
    /// The work done since an earlier snapshot of the same (accumulating)
    /// statistics: componentwise saturating subtraction for the counters.
    /// `learnt_clauses` is a gauge, so the *current* value passes through
    /// unchanged — a difference of snapshots of a quantity that also shrinks
    /// (database reduction) would be meaningless.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
            solve_calls: self.solve_calls.saturating_sub(earlier.solve_calls),
            solve_time: self.solve_time.saturating_sub(earlier.solve_time),
            minimized_lits: self.minimized_lits.saturating_sub(earlier.minimized_lits),
            lbd_sum: self.lbd_sum.saturating_sub(earlier.lbd_sum),
            lbd_clauses: self.lbd_clauses.saturating_sub(earlier.lbd_clauses),
        }
    }

    /// Mean LBD (glue) of the learnt clauses recorded in these statistics,
    /// or 0 when none were stored.
    pub fn mean_lbd(&self) -> f64 {
        if self.lbd_clauses == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.lbd_clauses as f64
        }
    }
}

// Dense lbool encoding of the assignment, indexed by **literal code**: a
// literal and its negation occupy adjacent slots, so reading a literal's
// truth value is one unconditional array probe — no `Option<bool>` branch,
// no sign fix-up — which is what the propagation inner loop wants.
const LTRUE: u8 = 0;
const LFALSE: u8 = 1;
const LUNDEF: u8 = 2;

/// A CDCL SAT solver.
///
/// See the [crate documentation](crate) for the feature list and an example.
/// Typical use: allocate variables with [`Solver::new_var`], add clauses with
/// [`Solver::add_clause`], call [`Solver::solve`] (or
/// [`Solver::solve_with_assumptions`]) and read the model back with
/// [`Solver::value`].
pub struct Solver {
    /// The flat clause arena (originals + learnts) and learnt index.
    db: ClauseDb,
    /// Watcher lists indexed by literal code: watchers of `p` are the
    /// clauses to revisit when `p` becomes **false**.
    watches: Vec<Vec<Watcher>>,
    /// lbool per literal code (see [`LTRUE`]/[`LFALSE`]/[`LUNDEF`]).
    value: Vec<u8>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    /// VSIDS decision order (owns the activities).
    order: VsidsHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    model_valid: bool,
    seen: Vec<bool>,
    /// Scratch for conflict analysis: literals whose `seen` flag must be
    /// cleared, and the DFS stack of the recursive minimization.
    analyze_toclear: Vec<Lit>,
    analyze_stack: Vec<Lit>,
    /// Level-stamping scratch for O(clause) LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_marker: u64,
    stats: SolverStats,
    max_learnts: f64,
    /// The search policy (restarts, phase saving, clause-DB reduction).
    config: SolverConfig,
    /// Test hook: forces a tiny learnt-clause budget so database reduction
    /// and arena GC run on small instances.
    #[cfg(test)]
    max_learnts_override: Option<f64>,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.num_clauses())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default search policy.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with an explicit search policy. Out-of-range
    /// values are repaired via [`SolverConfig::clamped`].
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config: config.clamped(),
            db: ClauseDb::new(),
            watches: Vec::new(),
            value: Vec::new(),
            saved_phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            order: VsidsHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            model_valid: false,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            analyze_stack: Vec::new(),
            lbd_stamp: vec![0],
            lbd_marker: 0,
            stats: SolverStats::default(),
            max_learnts: 0.0,
            #[cfg(test)]
            max_learnts_override: None,
        }
    }

    /// The search policy in effect.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Replaces the search policy (clamped). All restart/EMA state is
    /// per-solve-call, so the new policy simply governs subsequent calls;
    /// the clause database and learnt clauses are untouched.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config.clamped();
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.level.len());
        self.value.push(LUNDEF);
        self.value.push(LUNDEF);
        self.saved_phase.push(false);
        self.level.push(0);
        self.reason.push(ClauseRef::INVALID);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_var();
        self.lbd_stamp.push(0);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.level.len()
    }

    /// Number of clauses (original plus currently retained learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.db.num_clauses()
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause to the solver.
    ///
    /// Clauses may be added between solve calls (incremental use); doing so
    /// discards the current model, so read any model values you need before
    /// growing the formula.
    ///
    /// Returns `false` if the solver is already known to be unsatisfiable
    /// (either previously, or because this clause is empty after
    /// simplification against the top-level assignment).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        // Clause simplification and unit enqueueing are only sound against
        // the top-level assignment; backtracking discards any model.
        self.model_valid = false;
        self.backtrack(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology / satisfied / falsified literal handling at level 0.
        let mut simplified = Vec::with_capacity(clause.len());
        let mut i = 0;
        while i < clause.len() {
            let lit = clause[i];
            if i + 1 < clause.len() && clause[i + 1] == !lit {
                return true; // tautology: p and !p both present
            }
            match self.lit_value(lit) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => simplified.push(lit),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], ClauseRef::INVALID);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(&simplified, false);
                true
            }
        }
    }

    /// Allocates the clause in the arena and installs both watchers, each
    /// carrying the *other* watched literal as its blocker.
    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.db.alloc(lits, learnt);
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.stats.learnt_clauses = self.db.learnts().len() as u64;
        }
        cref
    }

    /// lbool of a literal as an `Option<bool>` (API-level probes; the
    /// propagation loop reads the raw array instead).
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        match self.value[lit.code()] {
            LTRUE => Some(true),
            LFALSE => Some(false),
            _ => None,
        }
    }

    /// The value of a variable in the most recent satisfying model.
    ///
    /// Returns `None` for variables that were never assigned (possible only
    /// before the first successful [`Solver::solve`] call, or for variables
    /// added afterwards).
    ///
    /// Only meaningful while [`Solver::has_model`] is true: an Unsat solve or
    /// an incremental [`Solver::add_clause`] discards the model, after which
    /// this returns the residual top-level assignment, not model values. The
    /// [`crate::IncrementalSolver`] trait methods perform this check.
    pub fn value(&self, var: Var) -> Option<bool> {
        if var.index() >= self.num_vars() {
            return None;
        }
        self.lit_value(Lit::positive(var))
    }

    /// Whether a satisfying model is currently available: the last solve
    /// returned [`SolveResult::Sat`] and no clause has been added since.
    pub fn has_model(&self) -> bool {
        self.model_valid
    }

    /// The most recent satisfying model as a dense vector indexed by
    /// variable. Unassigned variables default to `false`.
    ///
    /// As with [`Solver::value`], only meaningful while [`Solver::has_model`]
    /// is true; read the model before growing the formula.
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.value(Var::from_index(i)).unwrap_or(false))
            .collect()
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Assigns `lit` true with the given reason clause, or reports whether
    /// it already had a consistent value.
    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) -> bool {
        match self.value[lit.code()] {
            LTRUE => true,
            LFALSE => false,
            _ => {
                let v = lit.var().index();
                self.value[lit.code()] = LTRUE;
                self.value[(!lit).code()] = LFALSE;
                self.saved_phase[v] = lit.is_positive();
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn backtrack(&mut self, target_level: usize) {
        while self.decision_level() > target_level {
            let lim = self.trail_lim.pop().expect("non-root decision level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var().index();
                self.saved_phase[v] = lit.is_positive();
                self.value[lit.code()] = LUNDEF;
                self.value[(!lit).code()] = LUNDEF;
                self.reason[v] = ClauseRef::INVALID;
                self.order.insert(v as u32);
            }
        }
        self.qhead = self.trail.len();
    }

    /// The next branching variable: the unassigned variable with maximal
    /// VSIDS activity, popped from the decision heap in O(log n). Variables
    /// that were assigned while enqueued are discarded lazily; backtracking
    /// reinserts whatever it unassigns.
    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max() {
            if self.value[Lit::positive(Var::from_index(v as usize)).code()] == LUNDEF {
                return Some(Var::from_index(v as usize));
            }
        }
        None
    }

    /// Whether the clause is the reason of a current assignment (reason
    /// clauses keep their implied literal at slot 0, so this is O(1)).
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lit(cref, 0);
        self.value[first.code()] == LTRUE && self.reason[first.var().index()] == cref
    }

    /// Glue/activity-tiered learnt-database reduction: clauses with LBD at
    /// or below the configured glue threshold and reason clauses are always
    /// kept; of the rest, the half with the worst (highest-LBD, then
    /// least-active) scores is tombstoned and the arena compacted in place,
    /// relocating watcher lists and reasons instead of rebuilding them.
    fn reduce_learnts(&mut self) {
        let glue = self.config.glue_threshold;
        let mut candidates: Vec<ClauseRef> = self
            .db
            .learnts()
            .iter()
            .copied()
            .filter(|&c| self.db.lbd(c) > glue && !self.is_locked(c))
            .collect();
        if candidates.len() < 2 {
            return;
        }
        // Worst first: highest LBD, then lowest activity; the clause
        // reference breaks exact ties deterministically (older first).
        candidates.sort_by(|&a, &b| {
            self.db
                .lbd(b)
                .cmp(&self.db.lbd(a))
                .then_with(|| {
                    self.db
                        .activity(a)
                        .partial_cmp(&self.db.activity(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        for &cref in &candidates[..candidates.len() / 2] {
            self.db.delete(cref);
        }
        self.collect_garbage();
        self.stats.learnt_clauses = self.db.learnts().len() as u64;
    }

    /// Compacts the clause arena and relocates every watcher and reason
    /// reference through the returned forwarding map. Watchers of dropped
    /// clauses are filtered out in place; list order (and blockers) of the
    /// survivors is preserved, so propagation visits clauses in the same
    /// order as before the collection.
    fn collect_garbage(&mut self) {
        let map = self.db.collect_garbage();
        for list in &mut self.watches {
            list.retain_mut(|w| match map.translate(w.cref) {
                Some(cref) => {
                    w.cref = cref;
                    true
                }
                None => false,
            });
        }
        for r in &mut self.reason {
            if r.is_valid() {
                *r = map.translate(*r).expect("reason clauses are never deleted");
            }
        }
    }

    fn luby(i: u64) -> u64 {
        // Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        // `i` is the 0-based restart count.
        let mut i = i + 1;
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// Assumptions are treated as forced decisions at the lowest decision
    /// levels; they do not permanently constrain the solver, so repeated calls
    /// with different assumptions are supported.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let started = Instant::now();
        let result = self.solve_with_assumptions_inner(assumptions);
        self.model_valid = result == SolveResult::Sat;
        self.stats.solve_calls += 1;
        self.stats.solve_time += started.elapsed();
        result
    }

    fn initial_max_learnts(&self) -> f64 {
        #[cfg(test)]
        if let Some(forced) = self.max_learnts_override {
            return forced;
        }
        (self.db.num_clauses() as f64 * 0.5).max(100.0)
    }

    fn solve_with_assumptions_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            self.ensure_vars(lit.var().index() + 1);
        }
        self.backtrack(0);
        if self.config.phase_saving == PhaseMode::ResetPerQuery {
            // Forget cross-query polarity history: assumption variables
            // start at their assumed polarity, everything else at false.
            // (Level-0 propagation below may still overwrite forced
            // variables — deterministically.)
            self.saved_phase.fill(false);
            for lit in assumptions {
                self.saved_phase[lit.var().index()] = lit.is_positive();
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        self.max_learnts = self.initial_max_learnts();

        let restart_base = self.config.restart_base;
        let mut restart_count: u64 = 0;
        let mut conflicts_until_restart = restart_base * Self::luby(restart_count);
        let mut conflicts_in_round: u64 = 0;
        let mut conflicts_this_call: u64 = 0;
        // EMA-LBD restart state, local to the call so repeated queries stay
        // independent: a fast EMA (α = 1/32) of recent learnt LBDs against
        // the call's running mean.
        let mut lbd_ema_fast: f64 = 0.0;
        let mut lbd_call_sum: u64 = 0;
        let mut lbd_call_count: u64 = 0;

        loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    conflicts_in_round += 1;
                    conflicts_this_call += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let (learnt, backtrack_level) = self.analyze(confl);
                    self.backtrack(backtrack_level);
                    let assert_lit = learnt[0];
                    // Unit learnts carry no stored LBD; they enter the
                    // restart signal as glue of 1.
                    let mut lbd_learnt: u32 = 1;
                    if learnt.len() == 1 {
                        if !self.enqueue(assert_lit, ClauseRef::INVALID) {
                            self.ok = false;
                            return SolveResult::Unsat;
                        }
                    } else {
                        let lbd = self.compute_lbd(&learnt);
                        lbd_learnt = lbd;
                        let cref = self.attach_clause(&learnt, true);
                        self.db.set_lbd(cref, lbd);
                        self.stats.lbd_sum += u64::from(lbd);
                        self.stats.lbd_clauses += 1;
                        self.db.bump_activity(cref);
                        self.enqueue(assert_lit, cref);
                    }
                    if self.config.restart == RestartStrategy::EmaLbd {
                        lbd_call_sum += u64::from(lbd_learnt);
                        lbd_call_count += 1;
                        lbd_ema_fast = if lbd_call_count == 1 {
                            f64::from(lbd_learnt)
                        } else {
                            lbd_ema_fast + (f64::from(lbd_learnt) - lbd_ema_fast) / 32.0
                        };
                    }
                    self.order.decay();
                    self.db.decay_activity();
                }
                None => {
                    let restart_now = match self.config.restart {
                        RestartStrategy::Luby => conflicts_in_round >= conflicts_until_restart,
                        RestartStrategy::EmaLbd => {
                            // Restart when recent glue runs 25% above the
                            // call's mean — the solver is learning worse
                            // clauses than it used to — at most once per
                            // `restart_base` conflicts.
                            conflicts_in_round >= restart_base
                                && lbd_call_count > 0
                                && lbd_ema_fast * (lbd_call_count as f64)
                                    > 1.25 * lbd_call_sum as f64
                        }
                        RestartStrategy::NoneBelow(threshold) => {
                            conflicts_this_call >= threshold
                                && conflicts_in_round >= conflicts_until_restart
                        }
                    };
                    if restart_now {
                        conflicts_in_round = 0;
                        restart_count += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart = restart_base * Self::luby(restart_count);
                        self.backtrack(assumptions.len().min(self.decision_level()));
                    }
                    if self.stats.learnt_clauses as f64 > self.max_learnts {
                        self.reduce_learnts();
                        self.max_learnts *= f64::from(self.config.reduce_growth_pct) / 100.0;
                    }
                    // Assumption decisions first, then free decisions.
                    let next = if self.decision_level() < assumptions.len() {
                        let a = assumptions[self.decision_level()];
                        match self.lit_value(a) {
                            Some(true) => {
                                // Already implied: introduce an empty decision level
                                // to keep the level/assumption correspondence.
                                self.trail_lim.push(self.trail.len());
                                continue;
                            }
                            Some(false) => {
                                self.backtrack(0);
                                return SolveResult::Unsat;
                            }
                            None => Some(a),
                        }
                    } else {
                        self.pick_branch_var()
                            .map(|v| Lit::new(v, self.saved_phase[v.index()]))
                    };
                    match next {
                        None => return SolveResult::Sat,
                        Some(lit) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, ClauseRef::INVALID);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i64) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i > 0)
    }

    fn solver_with_vars(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    fn add_pigeonhole(s: &mut Solver, v: &[Var], pigeons: usize, holes: usize) {
        let p = |i: usize, h: usize| (i * holes + h + 1) as i64;
        for i in 0..pigeons {
            s.add_clause((0..holes).map(|h| lit(v, p(i, h))));
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause([lit(v, -p(i, h)), lit(v, -p(j, h))]);
                }
            }
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses() {
        let (mut s, v) = solver_with_vars(2);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (mut s, _) = solver_with_vars(1);
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1), lit(&v, -1)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        let (mut s, v) = solver_with_vars(4);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1), lit(&v, 2)]);
        s.add_clause([lit(&v, -2), lit(&v, 3)]);
        s.add_clause([lit(&v, -3), lit(&v, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for var in &v {
            assert_eq!(s.value(*var), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        let (mut s, v) = solver_with_vars(6);
        add_pigeonhole(&mut s, &v, 3, 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        let (mut s, v) = solver_with_vars(12);
        add_pigeonhole(&mut s, &v, 4, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn satisfiable_graph_coloring() {
        // Triangle with 3 colours is satisfiable.
        let (mut s, v) = solver_with_vars(9);
        let c = |node: usize, colour: usize| node * 3 + colour + 1;
        for node in 0..3 {
            s.add_clause((0..3).map(|k| lit(&v, c(node, k) as i64)));
            for k1 in 0..3 {
                for k2 in (k1 + 1)..3 {
                    s.add_clause([
                        lit(&v, -(c(node, k1) as i64)),
                        lit(&v, -(c(node, k2) as i64)),
                    ]);
                }
            }
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            for k in 0..3 {
                s.add_clause([lit(&v, -(c(a, k) as i64)), lit(&v, -(c(b, k) as i64))]);
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the colouring is proper.
        let colour_of = |s: &Solver, node: usize| {
            (0..3)
                .find(|&k| s.value(v[c(node, k) - 1]) == Some(true))
                .unwrap()
        };
        assert_ne!(colour_of(&s, 0), colour_of(&s, 1));
        assert_ne!(colour_of(&s, 1), colour_of(&s, 2));
        assert_ne!(colour_of(&s, 0), colour_of(&s, 2));
    }

    #[test]
    fn assumptions_do_not_persist() {
        let (mut s, v) = solver_with_vars(2);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -2)]), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        // Conflicting assumptions yield Unsat without poisoning the solver.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_contradicting_unit_is_unsat() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A slightly larger random-ish instance with a known satisfying shape.
        let (mut s, v) = solver_with_vars(8);
        let clauses: Vec<Vec<i64>> = vec![
            vec![1, 2, -3],
            vec![-1, 4],
            vec![3, -4, 5],
            vec![-5, 6],
            vec![-6, -2, 7],
            vec![7, 8],
            vec![-7, -8, 1],
            vec![2, 5, 8],
        ];
        for c in &clauses {
            s.add_clause(c.iter().map(|&x| lit(&v, x)));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model();
        for c in &clauses {
            assert!(c.iter().any(|&x| {
                let val = model[(x.unsigned_abs() - 1) as usize];
                if x > 0 {
                    val
                } else {
                    !val
                }
            }));
        }
    }

    #[test]
    fn stats_are_populated() {
        let (mut s, v) = solver_with_vars(6);
        add_pigeonhole(&mut s, &v, 3, 2);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions > 0 || stats.propagations > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    /// Every restart/phase/clause-DB policy must agree with the default on
    /// verdicts — the invariant that makes policy tuning safely gateable.
    /// The pigeonhole instances force real search (conflicts, learnt
    /// clauses, restarts under small bases).
    #[test]
    fn search_policies_are_verdict_neutral() {
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                restart: RestartStrategy::EmaLbd,
                restart_base: 8,
                ..SolverConfig::default()
            },
            SolverConfig {
                restart: RestartStrategy::NoneBelow(u64::MAX),
                ..SolverConfig::default()
            },
            SolverConfig {
                restart: RestartStrategy::NoneBelow(16),
                restart_base: 4,
                phase_saving: PhaseMode::ResetPerQuery,
                ..SolverConfig::default()
            },
            SolverConfig {
                restart: RestartStrategy::Luby,
                restart_base: 1,
                reduce_growth_pct: 100,
                glue_threshold: 4,
                ..SolverConfig::default()
            },
        ];
        for config in configs {
            // Unsat: 4 pigeons into 3 holes.
            let mut s = Solver::with_config(config);
            let v: Vec<Var> = (0..12).map(|_| s.new_var()).collect();
            add_pigeonhole(&mut s, &v, 4, 3);
            assert_eq!(s.solve(), SolveResult::Unsat, "{config:?}");
            // Sat: 4 pigeons into 4 holes; the model must be a real model.
            let mut s = Solver::with_config(config);
            let v: Vec<Var> = (0..16).map(|_| s.new_var()).collect();
            let p = |i: usize, h: usize| (i * 4 + h + 1) as i64;
            for i in 0..4 {
                s.add_clause((0..4).map(|h| lit(&v, p(i, h))));
            }
            for h in 0..4 {
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        s.add_clause([lit(&v, -p(i, h)), lit(&v, -p(j, h))]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Sat, "{config:?}");
            let model = s.model();
            for i in 0..4 {
                assert!(
                    (0..4).any(|h| model[(p(i, h) - 1) as usize]),
                    "{config:?}: pigeon {i} unplaced"
                );
            }
            // Assumptions still work under phase reset.
            let first = Lit::positive(v[0]);
            assert_eq!(s.solve_with_assumptions(&[!first]), SolveResult::Sat);
            assert_eq!(s.value(v[0]), Some(false));
        }
    }

    #[test]
    fn restart_gating_suppresses_restarts_below_the_threshold() {
        // The same unsat instance under never-restart must finish with zero
        // restarts, while a tiny Luby base forces many.
        let mut gated = Solver::with_config(SolverConfig {
            restart: RestartStrategy::NoneBelow(u64::MAX),
            ..SolverConfig::default()
        });
        let v: Vec<Var> = (0..12).map(|_| gated.new_var()).collect();
        add_pigeonhole(&mut gated, &v, 4, 3);
        assert_eq!(gated.solve(), SolveResult::Unsat);
        assert_eq!(gated.stats().restarts, 0);

        let mut eager = Solver::with_config(SolverConfig {
            restart_base: 1,
            ..SolverConfig::default()
        });
        let v: Vec<Var> = (0..12).map(|_| eager.new_var()).collect();
        add_pigeonhole(&mut eager, &v, 4, 3);
        assert_eq!(eager.solve(), SolveResult::Unsat);
        assert!(eager.stats().restarts > 0);
    }

    #[test]
    fn config_is_clamped_and_replaceable() {
        let mut s = Solver::with_config(SolverConfig {
            restart_base: 0,
            reduce_growth_pct: 10,
            glue_threshold: 0,
            ..SolverConfig::default()
        });
        assert_eq!(s.config().restart_base, 1);
        assert_eq!(s.config().reduce_growth_pct, 100);
        assert_eq!(s.config().glue_threshold, 1);
        s.set_config(SolverConfig::default());
        assert_eq!(s.config(), SolverConfig::default());
    }

    #[test]
    fn adding_clause_after_unsat_returns_false() {
        let (mut s, v) = solver_with_vars(1);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1)]);
        assert!(!s.add_clause([lit(&v, 1)]));
    }

    /// Forcing a one-clause learnt budget makes every round of the search
    /// run the glue/activity-tiered reduction and the arena GC; the solver
    /// must still decide the pigeonhole instance correctly, and the learnt
    /// gauge must reflect the reduced database, not the learn counter.
    #[test]
    fn database_reduction_and_gc_preserve_unsatisfiability() {
        let (mut s, v) = solver_with_vars(20);
        add_pigeonhole(&mut s, &v, 5, 4);
        s.max_learnts_override = Some(1.0);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.conflicts > 2, "instance must be non-trivial");
        assert!(
            stats.learnt_clauses <= stats.conflicts,
            "gauge exceeds everything ever learnt"
        );
    }

    #[test]
    fn database_reduction_preserves_satisfiability_and_models() {
        let (mut s, v) = solver_with_vars(16);
        // Satisfiable near-pigeonhole: 4 pigeons, 4 holes.
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        let p = |i: usize, h: usize| (i * 4 + h + 1) as i64;
        for i in 0..4 {
            clauses.push((0..4).map(|h| p(i, h)).collect());
        }
        for h in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    clauses.push(vec![-p(i, h), -p(j, h)]);
                }
            }
        }
        for c in &clauses {
            s.add_clause(c.iter().map(|&x| lit(&v, x)));
        }
        s.max_learnts_override = Some(1.0);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model();
        for c in &clauses {
            assert!(c.iter().any(|&x| {
                let val = model[(x.unsigned_abs() - 1) as usize];
                if x > 0 {
                    val
                } else {
                    !val
                }
            }));
        }
    }

    /// Conflict-clause minimization must actually fire on instances with
    /// implication structure, and the LBD accounting must cover every stored
    /// learnt clause.
    #[test]
    fn minimization_and_lbd_statistics_accumulate() {
        let (mut s, v) = solver_with_vars(20);
        add_pigeonhole(&mut s, &v, 5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.lbd_clauses > 0, "no learnt clause recorded an LBD");
        assert!(stats.lbd_sum >= stats.lbd_clauses, "LBD is at least 1");
        assert!(stats.mean_lbd() >= 1.0);
        assert!(
            stats.minimized_lits > 0,
            "recursive minimization never removed a literal"
        );
    }

    #[test]
    fn learnt_gauge_aggregates_as_max_and_counters_as_sums() {
        let a = SolverStats {
            learnt_clauses: 10,
            decisions: 3,
            minimized_lits: 2,
            lbd_sum: 8,
            lbd_clauses: 4,
            ..SolverStats::default()
        };
        let b = SolverStats {
            learnt_clauses: 7,
            decisions: 5,
            minimized_lits: 1,
            lbd_sum: 4,
            lbd_clauses: 2,
            ..SolverStats::default()
        };
        let sum = a + b;
        assert_eq!(sum.learnt_clauses, 10, "gauge: max, not sum");
        assert_eq!(sum.decisions, 8);
        assert_eq!(sum.minimized_lits, 3);
        assert_eq!(sum.lbd_sum, 12);
        assert_eq!(sum.lbd_clauses, 6);
        assert!((sum.mean_lbd() - 2.0).abs() < 1e-12);
        // `since` diffs counters but passes the gauge through.
        let diff = sum.since(&b);
        assert_eq!(diff.learnt_clauses, 10);
        assert_eq!(diff.decisions, 3);
        assert_eq!(diff.lbd_sum, 8);
    }
}
