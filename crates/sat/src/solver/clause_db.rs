//! The flat clause arena.
//!
//! All clauses — original and learnt — live in one contiguous `Vec<u32>`.
//! A [`ClauseRef`] is the word offset of a clause header inside that arena;
//! it is stable until the next garbage collection, at which point the
//! [`GcMap`] returned by [`ClauseDb::collect_garbage`] translates old
//! references to their relocated addresses (watcher lists and the reason
//! array are updated in place, never rebuilt from the clause literals).
//!
//! Clause layout, in arena words:
//!
//! ```text
//! [ len | flags/lbd | activity(f32 bits) | lit0 | lit1 | ... ]
//! ```
//!
//! The header keeps the learnt flag, a deletion tombstone and the clause's
//! LBD ("literal blocks distance" — the number of distinct decision levels
//! among its literals at learn time, the glue metric driving database
//! reduction) packed into one word, and the clause activity as raw `f32`
//! bits in another, so every clause costs exactly `3 + len` words.

use crate::Lit;

/// Header words preceding the literals of every clause.
const HEADER_WORDS: usize = 3;
/// `flags` bit marking a learnt clause.
const FLAG_LEARNT: u32 = 1 << 31;
/// `flags` bit marking a deleted (tombstoned) clause awaiting collection.
const FLAG_DELETED: u32 = 1 << 30;
/// Low bits of the flags word holding the clamped LBD.
const LBD_MASK: u32 = (1 << 16) - 1;

/// A stable reference to a clause in the arena: the word offset of its
/// header. Stable across clause additions; translated through a [`GcMap`]
/// across garbage collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(super) struct ClauseRef(u32);

impl ClauseRef {
    /// Sentinel for "no clause" (decision variables, retired reasons).
    pub(super) const INVALID: ClauseRef = ClauseRef(u32::MAX);

    /// Whether this reference points at an actual clause.
    pub(super) fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

/// The flat `u32` clause arena plus the learnt-clause index.
#[derive(Debug, Default)]
pub(super) struct ClauseDb {
    data: Vec<u32>,
    /// References of all live learnt clauses, in attachment order.
    learnts: Vec<ClauseRef>,
    /// Number of live original (problem) clauses.
    originals: usize,
    /// Arena words occupied by tombstoned clauses (triggers collection).
    wasted: usize,
    /// Clause-activity bump amount (rescaled alongside the activities).
    act_inc: f32,
}

impl ClauseDb {
    pub(super) fn new() -> Self {
        ClauseDb {
            data: Vec::new(),
            learnts: Vec::new(),
            originals: 0,
            wasted: 0,
            act_inc: 1.0,
        }
    }

    /// Allocates a clause and returns its reference.
    pub(super) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit clauses live on the trail");
        let cref = ClauseRef(self.data.len() as u32);
        self.data.push(lits.len() as u32);
        self.data
            .push(if learnt { FLAG_LEARNT } else { 0 } | LBD_MASK.min(lits.len() as u32));
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.0));
        if learnt {
            self.learnts.push(cref);
        } else {
            self.originals += 1;
        }
        cref
    }

    pub(super) fn len(&self, cref: ClauseRef) -> usize {
        self.data[cref.0 as usize] as usize
    }

    pub(super) fn lit(&self, cref: ClauseRef, index: usize) -> Lit {
        Lit(self.data[cref.0 as usize + HEADER_WORDS + index])
    }

    pub(super) fn swap_lits(&mut self, cref: ClauseRef, a: usize, b: usize) {
        let base = cref.0 as usize + HEADER_WORDS;
        self.data.swap(base + a, base + b);
    }

    /// The literals of a clause as a slice of raw codes.
    #[cfg(test)]
    fn lits(&self, cref: ClauseRef) -> impl Iterator<Item = Lit> + '_ {
        let base = cref.0 as usize + HEADER_WORDS;
        let len = self.len(cref);
        self.data[base..base + len].iter().map(|&code| Lit(code))
    }

    pub(super) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref.0 as usize + 1] & FLAG_LEARNT != 0
    }

    pub(super) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.data[cref.0 as usize + 1] & FLAG_DELETED != 0
    }

    /// The clause's LBD (glue) as recorded at learn/update time.
    pub(super) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[cref.0 as usize + 1] & LBD_MASK
    }

    pub(super) fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let word = &mut self.data[cref.0 as usize + 1];
        *word = (*word & !LBD_MASK) | lbd.min(LBD_MASK);
    }

    pub(super) fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[cref.0 as usize + 2])
    }

    fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.data[cref.0 as usize + 2] = activity.to_bits();
    }

    /// Bumps the clause's activity, rescaling every stored activity when the
    /// counter threatens to overflow.
    pub(super) fn bump_activity(&mut self, cref: ClauseRef) {
        let bumped = self.activity(cref) + self.act_inc;
        self.set_activity(cref, bumped);
        if bumped > 1e20 {
            for i in 0..self.learnts.len() {
                let c = self.learnts[i];
                let rescaled = self.activity(c) * 1e-20;
                self.set_activity(c, rescaled);
            }
            self.act_inc *= 1e-20;
        }
    }

    /// Decays clause activities by inflating the bump amount.
    pub(super) fn decay_activity(&mut self) {
        self.act_inc /= 0.999;
    }

    /// Tombstones a clause. The arena space is reclaimed by the next
    /// [`ClauseDb::collect_garbage`]; until then the clause still parses but
    /// reports [`ClauseDb::is_deleted`].
    pub(super) fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        self.data[cref.0 as usize + 1] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.len(cref);
        if !self.is_learnt(cref) {
            self.originals -= 1;
        }
    }

    /// Live clause count (originals plus retained learnts).
    pub(super) fn num_clauses(&self) -> usize {
        self.originals + self.learnts.len()
    }

    /// Live learnt clauses, in attachment order.
    pub(super) fn learnts(&self) -> &[ClauseRef] {
        &self.learnts
    }

    /// Compacts the arena: copies live clauses (in arena order) into a fresh
    /// buffer and returns a [`GcMap`] that translates pre-collection
    /// references. The learnt index is relocated here; watcher lists and the
    /// reason array are the caller's to relocate (it owns them).
    pub(super) fn collect_garbage(&mut self) -> GcMap {
        let mut new_data = Vec::with_capacity(self.data.len() - self.wasted);
        let mut cursor = 0usize;
        while cursor < self.data.len() {
            let len = self.data[cursor] as usize;
            let total = HEADER_WORDS + len;
            if self.data[cursor + 1] & FLAG_DELETED == 0 {
                let relocated = new_data.len() as u32;
                new_data.extend_from_slice(&self.data[cursor..cursor + total]);
                // Reuse the old length slot as a forwarding pointer; the
                // deleted bit in the old flags word (still clear here)
                // distinguishes forwarded clauses from dropped ones.
                self.data[cursor] = relocated;
            }
            cursor += total;
        }
        let map = GcMap {
            old: std::mem::replace(&mut self.data, new_data),
        };
        self.wasted = 0;
        let mut learnts = std::mem::take(&mut self.learnts);
        learnts.retain_mut(|cref| match map.translate(*cref) {
            Some(new_cref) => {
                *cref = new_cref;
                true
            }
            None => false,
        });
        self.learnts = learnts;
        map
    }
}

/// Translation table from pre-collection to post-collection clause
/// references, built from the abandoned arena buffer (each live clause's old
/// header slot holds its forwarding address).
pub(super) struct GcMap {
    old: Vec<u32>,
}

impl GcMap {
    /// The post-collection address of `cref`, or `None` if the clause was
    /// tombstoned and has been dropped.
    pub(super) fn translate(&self, cref: ClauseRef) -> Option<ClauseRef> {
        if self.old[cref.0 as usize + 1] & FLAG_DELETED != 0 {
            None
        } else {
            Some(ClauseRef(self.old[cref.0 as usize]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 2, 5]), false);
        let b = db.alloc(&lits(&[1, 3]), true);
        assert_eq!(db.len(a), 3);
        assert_eq!(db.len(b), 2);
        assert_eq!(db.lit(a, 2), Lit::from_code(5));
        assert!(!db.is_learnt(a));
        assert!(db.is_learnt(b));
        assert_eq!(db.num_clauses(), 2);
        assert_eq!(db.learnts(), &[b]);
        let collected: Vec<Lit> = db.lits(a).collect();
        assert_eq!(collected, lits(&[0, 2, 5]));
    }

    #[test]
    fn lbd_round_trips_and_clamps() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[0, 2]), true);
        db.set_lbd(c, 7);
        assert_eq!(db.lbd(c), 7);
        db.set_lbd(c, u32::MAX);
        assert_eq!(db.lbd(c), LBD_MASK);
        assert!(db.is_learnt(c), "lbd writes must not clobber flags");
    }

    #[test]
    fn swapping_literals_is_in_place() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[0, 2, 4]), false);
        db.swap_lits(c, 0, 2);
        assert_eq!(db.lit(c, 0), Lit::from_code(4));
        assert_eq!(db.lit(c, 2), Lit::from_code(0));
    }

    #[test]
    fn garbage_collection_relocates_survivors() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 2, 4]), false);
        let b = db.alloc(&lits(&[1, 3]), true);
        let c = db.alloc(&lits(&[5, 7, 9, 11]), true);
        db.delete(b);
        let map = db.collect_garbage();
        assert_eq!(map.translate(b), None);
        let a2 = map.translate(a).unwrap();
        let c2 = map.translate(c).unwrap();
        assert_eq!(a2, a, "first clause does not move");
        assert!(c2.0 < c.0, "later clauses slide down");
        let moved: Vec<Lit> = db.lits(c2).collect();
        assert_eq!(moved, lits(&[5, 7, 9, 11]));
        assert_eq!(db.learnts(), &[c2]);
        assert_eq!(db.num_clauses(), 2);
    }

    #[test]
    fn activity_bump_rescales_before_overflow() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[0, 2]), true);
        let b = db.alloc(&lits(&[1, 3]), true);
        db.set_activity(a, 1.05e20);
        db.bump_activity(a);
        assert!(db.activity(a) <= 1.1, "activities rescaled");
        assert!(db.activity(b) <= 1.0);
        // The bump amount shrank with the rescale: bumping still works.
        db.bump_activity(b);
        assert!(db.activity(b) > 0.0);
    }

    #[test]
    fn variable_sized_clauses_pack_densely() {
        let mut db = ClauseDb::new();
        let mut refs = Vec::new();
        for width in 2..10usize {
            refs.push((
                width,
                db.alloc(&lits(&(0..width * 2).step_by(2).collect::<Vec<_>>()), false),
            ));
        }
        for (width, cref) in refs {
            assert_eq!(db.len(cref), width);
            for i in 0..width {
                assert_eq!(db.lit(cref, i), Lit::from_code(i * 2));
            }
        }
    }
}
