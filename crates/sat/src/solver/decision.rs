//! VSIDS decision ordering: an indexed binary max-heap over variable
//! activities.
//!
//! The heap replaces the seed solver's O(num_vars) linear scan per decision
//! with an O(log n) `pop_max`. It is *indexed*: `position[v]` records where
//! variable `v` sits in the heap array (or [`NOT_IN_HEAP`]), so an activity
//! bump of an enqueued variable restores the heap property with a single
//! sift-up instead of a rebuild, and membership tests are O(1).
//!
//! Ordering: strictly by activity; equal activities never swap. The
//! non-strict tie handling is load-bearing for performance: conflict-light
//! incremental queries leave most activities at zero, and with equal keys
//! every sift exits on its first comparison, so the heavy churn of
//! backtracking (which reinserts the whole trail suffix) costs O(1) per
//! variable instead of a full-depth sift. (An index tiebreak was tried and
//! measured 2× slower end-to-end on the suite for exactly this reason.)
//! Determinism: activities and bump order are pure functions of the query
//! sequence and sift paths are fixed by the array layout, so decisions are
//! reproducible run-to-run, which the fingerprint-differential suite
//! relies on.

/// `position` sentinel for variables currently outside the heap.
const NOT_IN_HEAP: u32 = u32::MAX;

/// Indexed binary max-heap over VSIDS activities.
#[derive(Debug, Default)]
pub(super) struct VsidsHeap {
    /// Heap array of variable indices; `activity[heap[0]]` is maximal.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or [`NOT_IN_HEAP`].
    position: Vec<u32>,
    /// Per-variable VSIDS activity.
    activity: Vec<f64>,
    /// Current bump amount (grows by 1/decay per conflict; rescaled together
    /// with the activities when it threatens to overflow).
    inc: f64,
}

impl VsidsHeap {
    pub(super) fn new() -> Self {
        VsidsHeap {
            heap: Vec::new(),
            position: Vec::new(),
            activity: Vec::new(),
            inc: 1.0,
        }
    }

    /// Registers a fresh variable (activity 0) and inserts it into the heap.
    pub(super) fn push_var(&mut self) {
        let v = self.position.len() as u32;
        self.position.push(NOT_IN_HEAP);
        self.activity.push(0.0);
        self.insert(v);
    }

    #[cfg(test)]
    fn activity_of(&self, v: u32) -> f64 {
        self.activity[v as usize]
    }

    fn in_heap(&self, v: u32) -> bool {
        self.position[v as usize] != NOT_IN_HEAP
    }

    /// Inserts `v` if absent; used when backtracking unassigns variables.
    pub(super) fn insert(&mut self, v: u32) {
        if self.in_heap(v) {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v);
        self.position[v as usize] = slot as u32;
        self.sift_up(slot);
    }

    /// Removes and returns the variable with maximal activity.
    pub(super) fn pop_max(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.position[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Bumps `v`'s activity, rescaling all activities when the counter
    /// threatens `f64` overflow, and restores the heap property locally.
    pub(super) fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.inc *= 1e-100;
        }
        if self.in_heap(v) {
            let slot = self.position[v as usize] as usize;
            self.sift_up(slot);
        }
    }

    /// Decays every activity by inflating the bump amount (MiniSat's
    /// implicit-decay trick: no per-variable work).
    pub(super) fn decay(&mut self) {
        self.inc /= 0.95;
    }

    /// The heap order: strictly higher activity outranks; ties never swap
    /// (see the module docs for why the early exit on ties is load-bearing).
    fn outranks(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if !self.outranks(self.heap[slot], self.heap[parent]) {
                break;
            }
            self.swap_slots(slot, parent);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let left = 2 * slot + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len() && self.outranks(self.heap[right], self.heap[left]) {
                best = right;
            }
            if !self.outranks(self.heap[best], self.heap[slot]) {
                break;
            }
            self.swap_slots(slot, best);
            slot = best;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as u32;
        self.position[self.heap[b] as usize] = b as u32;
    }

    /// Checks the two structural invariants: every parent's activity is ≥
    /// its children's, and `position` is the exact inverse of `heap`.
    /// Test-only; the operations maintain these incrementally.
    #[cfg(test)]
    fn check_invariants(&self) {
        for (slot, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.position[v as usize], slot as u32, "position inverse");
            if slot > 0 {
                let parent = self.heap[(slot - 1) / 2];
                assert!(
                    self.activity[parent as usize] >= self.activity[v as usize],
                    "heap property violated at slot {slot}"
                );
            }
        }
        let in_heap = self.position.iter().filter(|&&p| p != NOT_IN_HEAP).count();
        assert_eq!(in_heap, self.heap.len(), "stale positions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_vars(n: u32) -> VsidsHeap {
        let mut h = VsidsHeap::new();
        for _ in 0..n {
            h.push_var();
        }
        h
    }

    #[test]
    fn pops_follow_activity_order() {
        let mut h = heap_with_vars(5);
        for (v, bumps) in [(3u32, 3), (1, 2), (4, 1)] {
            for _ in 0..bumps {
                h.bump(v);
            }
        }
        h.check_invariants();
        assert_eq!(h.pop_max(), Some(3));
        assert_eq!(h.pop_max(), Some(1));
        assert_eq!(h.pop_max(), Some(4));
        h.check_invariants();
    }

    #[test]
    fn reinsert_after_pop_restores_membership() {
        let mut h = heap_with_vars(3);
        h.bump(2);
        assert_eq!(h.pop_max(), Some(2));
        h.insert(2);
        h.check_invariants();
        assert_eq!(h.pop_max(), Some(2), "reinserted var keeps its activity");
        // Double insert is a no-op.
        h.insert(0);
        h.insert(0);
        h.check_invariants();
        let mut drained = Vec::new();
        while let Some(v) = h.pop_max() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1]);
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn bumping_inside_the_heap_sifts_up() {
        let mut h = heap_with_vars(8);
        for v in 0..8 {
            for _ in 0..v {
                h.bump(v);
            }
            h.check_invariants();
        }
        assert_eq!(h.pop_max(), Some(7));
        // Bump a mid-activity variable past the rest while it is enqueued.
        for _ in 0..20 {
            h.bump(2);
        }
        h.check_invariants();
        assert_eq!(h.pop_max(), Some(2));
    }

    #[test]
    fn rescale_preserves_relative_order() {
        let mut h = heap_with_vars(3);
        h.bump(1);
        // Force many decays so the bump amount explodes, then bump var 2
        // hard enough to trigger the 1e100 rescale.
        for _ in 0..4600 {
            h.decay();
        }
        h.bump(2);
        h.check_invariants();
        assert!(h.activity_of(2) <= 1e100);
        assert_eq!(h.pop_max(), Some(2));
        assert_eq!(h.pop_max(), Some(1));
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn randomised_operations_keep_invariants() {
        // Deterministic splitmix64 stream; no external RNG dependency.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut h = heap_with_vars(32);
        let mut popped = Vec::new();
        for step in 0..2000 {
            match next() % 4 {
                0 => {
                    if let Some(v) = h.pop_max() {
                        popped.push(v);
                    }
                }
                1 => {
                    if let Some(&v) = popped.last() {
                        h.insert(v);
                        popped.pop();
                    }
                }
                _ => h.bump((next() % 32) as u32),
            }
            if step % 64 == 0 {
                h.check_invariants();
            }
        }
        h.check_invariants();
    }
}
