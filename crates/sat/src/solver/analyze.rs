//! First-UIP conflict analysis with recursive learnt-clause minimization.
//!
//! The resolution loop walks the trail backwards from the conflict,
//! resolving on current-level literals until a single one — the first unique
//! implication point — remains. Before the learnt clause is attached it is
//! *minimized*: a literal is dropped when it is implied by the rest of the
//! clause, which holds exactly when every literal of its reason clause is
//! already in the learnt clause or (recursively) redundant itself. The
//! recursion is MiniSat's `litRedundant` made iterative, with the
//! `abstract_levels` bitmask pruning branches whose decision level cannot
//! appear in the clause.
//!
//! The same pass computes the clause's LBD (number of distinct decision
//! levels among its literals) via a stamping array, so database reduction
//! can tier clauses by glue without re-deriving it.

use super::clause_db::ClauseRef;
use super::Solver;
use crate::Lit;

impl Solver {
    /// First-UIP conflict analysis. Returns the minimized learnt clause
    /// (asserting literal first, a highest-remaining-level literal second)
    /// and the backtrack level.
    pub(super) fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            debug_assert!(confl.is_valid());
            self.db.bump_activity(confl);
            // Skip slot 0 of reason clauses: it holds the literal being
            // resolved on.
            let start = usize::from(p.is_some());
            for k in start..self.db.len(confl) {
                let q = self.db.lit(confl, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.order.bump(v as u32);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()];
        }
        learnt[0] = !p.expect("conflict analysis found an asserting literal");

        self.minimize(&mut learnt);

        // Determine backtrack level (second-highest level in the clause).
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };

        (learnt, backtrack_level)
    }

    /// Recursive clause minimization: removes every literal of
    /// `learnt[1..]` whose reason-side implication graph bottoms out inside
    /// the clause itself. Clears all `seen` flags set by analysis and by the
    /// redundancy search on the way out.
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        // At this point `seen` is set exactly for the variables of
        // `learnt[1..]`; the redundancy walk relies on that to recognise
        // literals already covered by the clause.
        self.analyze_toclear.clear();
        self.analyze_toclear.extend_from_slice(learnt);
        let mut abstract_levels: u64 = 0;
        for lit in learnt.iter().skip(1) {
            abstract_levels |= self.abstract_level(lit.var().index());
        }
        let before = learnt.len();
        let mut j = 1;
        for i in 1..learnt.len() {
            let lit = learnt[i];
            if !self.reason[lit.var().index()].is_valid()
                || !self.lit_redundant(lit, abstract_levels)
            {
                learnt[j] = lit;
                j += 1;
            }
        }
        learnt.truncate(j);
        self.stats.minimized_lits += (before - j) as u64;
        for i in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[i].var().index();
            self.seen[v] = false;
        }
    }

    /// A compact fingerprint of a variable's decision level; the union over
    /// the learnt clause prunes redundancy searches that reach a level
    /// certain to be outside the clause.
    fn abstract_level(&self, var: usize) -> u64 {
        1u64 << (self.level[var] & 63)
    }

    /// Whether `lit`'s assignment is implied by literals already in the
    /// learnt clause (transitively through reason clauses). Newly visited
    /// variables are marked `seen` and logged in `analyze_toclear` so a
    /// successful search memoises its sub-results for later literals; a
    /// failed search rolls its marks back.
    fn lit_redundant(&mut self, lit: Lit, abstract_levels: u64) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(lit);
        let top = self.analyze_toclear.len();
        while let Some(q) = self.analyze_stack.pop() {
            let reason = self.reason[q.var().index()];
            debug_assert!(reason.is_valid(), "only implied literals are explored");
            // Slot 0 is the implied literal (!q); examine the antecedents.
            for k in 1..self.db.len(reason) {
                let l = self.db.lit(reason, k);
                let v = l.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    if self.reason[v].is_valid() && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v] = true;
                        self.analyze_stack.push(l);
                        self.analyze_toclear.push(l);
                    } else {
                        // A decision (or out-of-clause-level) antecedent:
                        // `lit` is not redundant. Undo this search's marks.
                        for idx in top..self.analyze_toclear.len() {
                            let u = self.analyze_toclear[idx].var().index();
                            self.seen[u] = false;
                        }
                        self.analyze_toclear.truncate(top);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The LBD ("glue") of a clause: the number of distinct decision levels
    /// among its literals, computed with a stamping array in O(len).
    pub(super) fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_marker += 1;
        let marker = self.lbd_marker;
        let mut lbd = 0u32;
        for lit in lits {
            let level = self.level[lit.var().index()] as usize;
            if self.lbd_stamp[level] != marker {
                self.lbd_stamp[level] = marker;
                lbd += 1;
            }
        }
        lbd
    }
}
