//! The pluggable incremental-backend seam.
//!
//! The active-learning pipeline issues long sequences of closely related SAT
//! queries: the k-induction checker re-solves the same transition-relation
//! unrolling under different state constraints, and the SAT-based DFA learner
//! re-solves the same folding skeleton at growing automaton sizes. Rebuilding
//! a solver from a CNF blob per query throws away learnt clauses, variable
//! activities and saved phases; the [`IncrementalSolver`] trait lets those
//! consumers keep one solver alive and select per-query constraints with
//! assumption literals instead.
//!
//! [`ClauseSink`] is the write-only half — "something clauses can be encoded
//! into" — implemented both by the plain [`CnfFormula`] container and by
//! solvers, so the bit-blaster can target either without caring which.

use crate::{CnfFormula, Lit, SolveResult, Solver, SolverConfig, SolverStats, Var};

/// A consumer of freshly encoded CNF: allocates variables and accepts
/// clauses.
///
/// Implemented by [`CnfFormula`] (pure container) and by every
/// [`IncrementalSolver`]; the bit-blasting encoder is generic over this
/// trait.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the receiver can already prove the formula
    /// unsatisfiable; containers that cannot reason always return `true`.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Number of allocated variables.
    fn num_vars(&self) -> usize;

    /// Number of clauses currently held.
    fn num_clauses(&self) -> usize;
}

/// An incremental SAT solver: a [`ClauseSink`] that can also decide
/// satisfiability under assumptions and expose a model.
///
/// Clause additions are permanent; per-query constraints must be expressed
/// through `assumptions` (typically via activation literals), which hold only
/// for the duration of one [`IncrementalSolver::solve`] call.
pub trait IncrementalSolver: ClauseSink {
    /// Decides satisfiability of the accumulated clauses under the given
    /// assumption literals.
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult;

    /// The value of `var` in the most recent satisfying model, or `None` if
    /// the variable was unconstrained or no model is available.
    fn model_value(&self, var: Var) -> Option<bool>;

    /// The most recent satisfying model as a dense vector indexed by
    /// variable; unassigned variables default to `false`.
    fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.model_value(Var::from_index(i)).unwrap_or(false))
            .collect()
    }

    /// Statistics accumulated over the lifetime of this solver.
    fn stats(&self) -> SolverStats;

    /// A short identifier of the backing implementation, for reports.
    fn backend_name(&self) -> &'static str;

    /// Applies a search-policy configuration. Every [`SolverConfig`] setting
    /// is verdict-neutral, so consumers may call this at any point between
    /// solve calls; backends without tunable search ignore it (the default).
    fn configure(&mut self, config: &SolverConfig) {
        let _ = config;
    }
}

impl ClauseSink for CnfFormula {
    fn new_var(&mut self) -> Var {
        CnfFormula::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        CnfFormula::add_clause(self, lits.iter().copied());
        true
    }

    fn num_vars(&self) -> usize {
        CnfFormula::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        CnfFormula::num_clauses(self)
    }
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }
}

impl IncrementalSolver for Solver {
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with_assumptions(assumptions)
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        if self.has_model() {
            self.value(var)
        } else {
            None
        }
    }

    fn model(&self) -> Vec<bool> {
        if self.has_model() {
            Solver::model(self)
        } else {
            vec![false; ClauseSink::num_vars(self)]
        }
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }

    fn backend_name(&self) -> &'static str {
        "cdcl"
    }

    fn configure(&mut self, config: &SolverConfig) {
        self.set_config(*config);
    }
}

impl<T: ClauseSink + ?Sized> ClauseSink for Box<T> {
    fn new_var(&mut self) -> Var {
        (**self).new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        (**self).add_clause(lits)
    }

    fn num_vars(&self) -> usize {
        (**self).num_vars()
    }

    fn num_clauses(&self) -> usize {
        (**self).num_clauses()
    }
}

impl<T: IncrementalSolver + ?Sized> IncrementalSolver for Box<T> {
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        (**self).solve(assumptions)
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        (**self).model_value(var)
    }

    fn model(&self) -> Vec<bool> {
        (**self).model()
    }

    fn stats(&self) -> SolverStats {
        (**self).stats()
    }

    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }

    fn configure(&mut self, config: &SolverConfig) {
        (**self).configure(config)
    }
}

/// The default backend: a fresh dependency-free CDCL [`Solver`].
///
/// The trait object is `Send` so that consumers (notably the parallel
/// condition-checking engine) can move solver sessions into worker threads.
pub fn cdcl_backend() -> Box<dyn IncrementalSolver + Send> {
    Box::new(Solver::new())
}

/// [`cdcl_backend`] with an explicit search policy.
pub fn cdcl_backend_with(config: SolverConfig) -> Box<dyn IncrementalSolver + Send> {
    Box::new(Solver::with_config(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a backend generically through the trait.
    fn exercise<S: IncrementalSolver>(mut solver: S) {
        let a = solver.new_var();
        let b = solver.new_var();
        assert!(solver.add_clause(&[Lit::positive(a), Lit::positive(b)]));

        // Activation-literal pattern: a clause that only bites under its
        // activation assumption.
        let act = solver.new_var();
        assert!(solver.add_clause(&[Lit::negative(act), Lit::negative(a)]));

        assert_eq!(solver.solve(&[Lit::positive(act)]), SolveResult::Sat);
        assert_eq!(solver.model_value(a), Some(false));
        assert_eq!(solver.model_value(b), Some(true));

        // Without the activation the solver is free again.
        assert_eq!(
            solver.solve(&[Lit::positive(a), Lit::negative(b)]),
            SolveResult::Sat
        );
        assert!(solver.model()[a.index()]);

        // Conflicting assumptions are transient.
        assert_eq!(
            solver.solve(&[Lit::positive(act), Lit::positive(a)]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(&[]), SolveResult::Sat);

        let stats = solver.stats();
        assert_eq!(stats.solve_calls, 4);
    }

    #[test]
    fn cdcl_solver_through_the_trait() {
        exercise(Solver::new());
        assert_eq!(Solver::new().backend_name(), "cdcl");
    }

    #[test]
    fn boxed_backend_through_the_trait() {
        exercise(cdcl_backend());
    }

    #[test]
    fn clauses_can_be_added_after_solving() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        assert!(ClauseSink::add_clause(
            &mut solver,
            &[Lit::positive(a), Lit::positive(b)]
        ));
        assert_eq!(IncrementalSolver::solve(&mut solver, &[]), SolveResult::Sat);
        // Growing the formula after a solve must not trip level-0 invariants.
        assert!(ClauseSink::add_clause(&mut solver, &[Lit::negative(a)]));
        // ¬a forces b through (a ∨ b), so ¬b empties out under top-level
        // simplification and the solver reports unsatisfiability eagerly.
        assert!(!ClauseSink::add_clause(&mut solver, &[Lit::negative(b)]));
        assert_eq!(
            IncrementalSolver::solve(&mut solver, &[]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn cnf_formula_is_a_clause_sink() {
        let mut cnf = CnfFormula::new();
        let x = ClauseSink::new_var(&mut cnf);
        assert!(ClauseSink::add_clause(&mut cnf, &[Lit::positive(x)]));
        assert_eq!(ClauseSink::num_vars(&cnf), 1);
        assert_eq!(ClauseSink::num_clauses(&cnf), 1);
    }
}
