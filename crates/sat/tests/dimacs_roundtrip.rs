//! DIMACS round-trip regression tests, driven entirely through the public
//! API: parse → solve → serialize → reparse must yield an equisatisfiable
//! instance with identical structure.

use amle_sat::{parse_dimacs, write_dimacs, CnfFormula, Lit, SolveResult, Var};

/// A deterministic pseudo-random CNF generator (SplitMix64) so the
/// regression covers many instance shapes without a fuzzing dependency.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

fn random_cnf(gen: &mut Gen, num_vars: usize, num_clauses: usize) -> CnfFormula {
    let mut cnf = CnfFormula::new();
    for _ in 0..num_vars {
        cnf.new_var();
    }
    for _ in 0..num_clauses {
        let len = 1 + gen.below(3) as usize;
        let clause: Vec<Lit> = (0..len)
            .map(|_| {
                let var = Var::from_index(gen.below(num_vars as u64) as usize);
                Lit::new(var, gen.next() & 1 == 0)
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// Solves a copy of the formula and, when satisfiable, cross-checks the
/// model against `CnfFormula::evaluate`.
fn solve_and_verify(cnf: &CnfFormula) -> SolveResult {
    let mut solver = cnf.to_solver();
    let result = solver.solve();
    if result == SolveResult::Sat {
        assert!(
            cnf.evaluate(&solver.model()),
            "solver model does not satisfy the formula"
        );
    }
    result
}

#[test]
fn write_parse_round_trip_preserves_structure_and_satisfiability() {
    let mut gen = Gen(0xD1_AC5);
    for case in 0..50 {
        let num_vars = 1 + gen.below(10) as usize;
        let num_clauses = gen.below(30) as usize;
        let original = random_cnf(&mut gen, num_vars, num_clauses);

        let text = write_dimacs(&original);
        let reparsed = parse_dimacs(&text).unwrap_or_else(|e| {
            panic!("case {case}: failed to reparse serialized DIMACS: {e}\n{text}")
        });

        // Structure survives the round trip...
        assert_eq!(reparsed.num_vars(), original.num_vars(), "case {case}");
        assert_eq!(
            reparsed.num_clauses(),
            original.num_clauses(),
            "case {case}"
        );

        // ...and so does satisfiability, in both directions of the trip.
        let original_verdict = solve_and_verify(&original);
        assert_eq!(solve_and_verify(&reparsed), original_verdict, "case {case}");

        // A second serialize → parse leg is a fixpoint.
        let text_again = write_dimacs(&reparsed);
        assert_eq!(text_again, text, "case {case}: DIMACS text not stable");
    }
}

#[test]
fn parse_accepts_comments_and_solves_the_instance() {
    let text = "c a tiny instance\np cnf 2 2\nc body comment\n1 2 0\n-1 0\n";
    let cnf = parse_dimacs(text).expect("well-formed DIMACS");
    assert_eq!(cnf.num_vars(), 2);
    assert_eq!(cnf.num_clauses(), 2);
    let mut solver = cnf.to_solver();
    assert_eq!(solver.solve(), SolveResult::Sat);
    assert_eq!(solver.value(Var::from_index(1)), Some(true));

    // Round-trip the parsed instance once more through the writer.
    let reparsed = parse_dimacs(&write_dimacs(&cnf)).unwrap();
    let mut solver = reparsed.to_solver();
    assert_eq!(solver.solve(), SolveResult::Sat);
}

#[test]
fn unsatisfiable_instances_stay_unsatisfiable_through_the_round_trip() {
    // The full assignment square over two variables.
    let text = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
    let cnf = parse_dimacs(text).expect("well-formed DIMACS");
    assert_eq!(solve_and_verify(&cnf), SolveResult::Unsat);
    let reparsed = parse_dimacs(&write_dimacs(&cnf)).unwrap();
    assert_eq!(solve_and_verify(&reparsed), SolveResult::Unsat);
}
