//! # amle-bench
//!
//! The benchmark harness that regenerates the paper's evaluation artefacts:
//!
//! * `table1` — the "Our Algorithm" columns of Table I (`|X|`, `k`, `i`, `d`,
//!   `N`, `α`, `T`, `%Tm`) for every benchmark in the suite;
//! * `random_sampling` — the "Random Sampling" columns of Table I (`N`, `α`,
//!   `T`) using the passive baseline of Section IV-C;
//! * `fig2` — re-learns the Home Climate-Control Cooler abstraction and
//!   prints it (textually and as DOT), reproducing Fig. 2;
//! * `ablation` — the design-choice ablations from DESIGN.md (learner choice
//!   and k-induction bound sensitivity).
//!
//! Criterion benches in `benches/` time the same experiments so that
//! `cargo bench` exercises every table and figure.
//!
//! The `perf-diff` binary (backed by [`perf`]) compares two `suite --json`
//! documents and flags per-benchmark regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use amle_benchmarks::Benchmark;
use amle_core::{
    random_sampling_baseline, ActiveLearner, ActiveLearnerConfig, InternerStats, RunReport,
};
use amle_learner::{HistoryLearner, KTailsLearner, ModelLearner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default experiment parameters mirroring Section IV-B: 50 initial traces of
/// length 50.
pub fn paper_config(benchmark: &Benchmark) -> ActiveLearnerConfig {
    ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 50,
        trace_length: 50,
        k: benchmark.k,
        max_iterations: 30,
        ..Default::default()
    }
}

/// A smaller configuration used by the criterion benches so that timing runs
/// stay short.
pub fn quick_config(benchmark: &Benchmark) -> ActiveLearnerConfig {
    ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 15,
        trace_length: 15,
        k: benchmark.k.min(16),
        max_iterations: 20,
        ..Default::default()
    }
}

/// One row of the "Our Algorithm" side of Table I.
#[derive(Debug, Clone)]
pub struct ActiveRow {
    /// Benchmark name.
    pub name: String,
    /// Number of observables (`|X|`).
    pub observables: usize,
    /// The k-induction bound used for spurious checks.
    pub k: usize,
    /// Number of learning iterations (`i`).
    pub iterations: usize,
    /// Accuracy score against the reference machine (`d`).
    pub d: f64,
    /// Number of states of the final abstraction (`N`).
    pub states: usize,
    /// Degree of completeness (`α`).
    pub alpha: f64,
    /// Total runtime in seconds (`T`).
    pub time_s: f64,
    /// Percentage of runtime spent in model learning (`%Tm`).
    pub learn_pct: f64,
    /// Total SAT solve calls across the checking and learning phases.
    pub solve_calls: u64,
    /// Wall-clock seconds spent inside the SAT backend.
    pub solver_time_s: f64,
    /// CDCL decisions across all solver sessions (`dec`).
    pub decisions: u64,
    /// Unit propagations across all solver sessions (`props`).
    pub propagations: u64,
    /// Conflicts across all solver sessions (`confl`).
    pub conflicts: u64,
    /// Literals removed from learnt clauses by recursive minimization before
    /// attachment (`minlit`).
    pub minimized_lits: u64,
    /// Mean LBD ("glue") of the learnt clauses stored across all solver
    /// sessions (`mLBD`); low glue means reusable clauses.
    pub mean_lbd: f64,
    /// Final trace count of the run.
    pub traces: usize,
    /// Distinct interned observations in the trace store (`uobs`).
    pub unique_observations: usize,
    /// Segments of the shared-prefix DAG (`segs`).
    pub segments: usize,
    /// Estimated KiB saved by interning + prefix sharing versus flat traces.
    pub saved_kib: u64,
    /// Abstract words the learner encoded across the run (`enc`).
    pub words_encoded: u64,
    /// Abstract words the learner reused from its incremental cache
    /// (`reuse`).
    pub words_reused: u64,
    /// Words encoded per iteration, in iteration order — the growth curve
    /// the trace-store work targets (at most linear on non-converging
    /// benchmarks).
    pub words_encoded_per_iteration: Vec<u64>,
    /// Conditions answered by the cross-iteration verdict cache (`hits`).
    pub cache_hits: u64,
    /// Conditions that had to be solved by an oracle (`miss`).
    pub cache_misses: u64,
    /// Oracle queries answered by the k-induction engine (`kiQ`).
    pub kinduction_queries: u64,
    /// Oracle queries answered by the explicit-state engine (`exQ`).
    pub explicit_queries: u64,
    /// Work units charged by the explicit engine (`exWork`).
    pub explicit_work: u64,
    /// Explicit queries whose budget ran out, re-run with k-induction
    /// (`fallb`).
    pub explicit_fallbacks: u64,
    /// Conclusion disjuncts Tseitin-encoded for the first time in a
    /// condition session (`disjE`).
    pub disj_encoded: u64,
    /// Conclusion disjuncts served from the session's persistent ledger
    /// without re-encoding (`disjR`).
    pub disj_reused: u64,
    /// Base-session frame disjuncts chain-encoded for the first time
    /// (`frmE`).
    pub frames_encoded: u64,
    /// Base-session frame disjuncts served from the activation ledger
    /// without re-encoding (`frmR`).
    pub frames_reused: u64,
    /// Expression-interner traffic during the run: nodes created
    /// (`inodes`), intern hit rate (`ihit%`) and canonical rewrites applied
    /// (`rewr`).
    pub interner: InternerStats,
    /// Distinct expression nodes reachable from the final invariant set
    /// (`Expr::dag_size` of the invariants' conjunction) — the honest size
    /// measure; the tree-shaped node count overstates shared predicates.
    pub invariant_dag_nodes: u64,
    /// Netlist statistics for circuit benchmarks (gates/latches in and out
    /// of the cone of influence); `None` for every other benchmark family.
    pub circuit: Option<amle_circuit::NetlistStats>,
}

/// Runs the active-learning algorithm on one benchmark and produces its
/// Table I row.
pub fn run_active<L: ModelLearner>(
    benchmark: &Benchmark,
    learner: L,
    config: ActiveLearnerConfig,
) -> (ActiveRow, RunReport) {
    let mut active = ActiveLearner::new(&benchmark.system, learner, config.clone());
    let report = active.run().expect("active learning run failed");
    let solver = report.solver_stats();
    let row = ActiveRow {
        name: benchmark.name.to_string(),
        observables: benchmark.num_observables(),
        k: config.k,
        iterations: report.iterations,
        d: benchmark.score_d(&report.abstraction),
        states: report.num_states(),
        alpha: report.alpha,
        time_s: report.total_time.as_secs_f64(),
        learn_pct: report.learn_time_percentage(),
        solve_calls: solver.solve_calls,
        solver_time_s: solver.solve_time.as_secs_f64(),
        decisions: solver.decisions,
        propagations: solver.propagations,
        conflicts: solver.conflicts,
        minimized_lits: solver.minimized_lits,
        mean_lbd: solver.mean_lbd(),
        traces: report.trace_count,
        unique_observations: report.trace_store.unique_observations,
        segments: report.trace_store.segments,
        saved_kib: report.trace_store.approx_bytes_saved / 1024,
        words_encoded: report.word_stats.words_encoded,
        words_reused: report.word_stats.words_reused,
        words_encoded_per_iteration: report
            .iteration_stats
            .iter()
            .map(|s| s.words_encoded)
            .collect(),
        cache_hits: report.verdict_cache.hits,
        cache_misses: report.verdict_cache.misses,
        kinduction_queries: report.checker_stats.kinduction_queries,
        explicit_queries: report.checker_stats.explicit_queries,
        explicit_work: report.checker_stats.explicit_work,
        explicit_fallbacks: report.checker_stats.explicit_fallbacks,
        disj_encoded: report.checker_stats.disj_encoded,
        disj_reused: report.checker_stats.disj_reused,
        frames_encoded: report.checker_stats.frames_encoded,
        frames_reused: report.checker_stats.frames_reused,
        interner: report.interner,
        invariant_dag_nodes: invariant_dag_nodes(&report),
        circuit: amle_benchmarks::circuit_stats_for(&benchmark.name),
    };
    (row, report)
}

/// Distinct expression nodes reachable from the run's invariant set: the
/// DAG size of the conjunction of `assumption => conclusion` implications
/// (shared predicates — abundant, since invariants reuse the hypothesis
/// automaton's guards — are counted once).
fn invariant_dag_nodes(report: &RunReport) -> u64 {
    use amle_expr::Expr;
    if report.invariants.is_empty() {
        return 0;
    }
    let combined = Expr::and_all(
        report
            .invariants
            .iter()
            .map(|i| i.assumption.implies(&i.conclusion)),
    );
    combined.dag_size() as u64
}

/// Convenience wrapper using the default learner and paper-shaped config.
pub fn run_active_default(benchmark: &Benchmark) -> (ActiveRow, RunReport) {
    run_active(
        benchmark,
        HistoryLearner::default(),
        paper_config(benchmark),
    )
}

/// One row of the "Random Sampling" side of Table I.
#[derive(Debug, Clone)]
pub struct RandomRow {
    /// Benchmark name.
    pub name: String,
    /// Number of states of the passively learned model (`N`).
    pub states: usize,
    /// Degree of completeness (`α`).
    pub alpha: f64,
    /// Runtime of trace generation plus learning, in seconds (`T`).
    pub time_s: f64,
    /// Number of random inputs consumed.
    pub inputs: usize,
}

/// Runs the random-sampling baseline of Section IV-C on one benchmark.
///
/// `budget` is the number of random inputs (the paper uses 10^6; the harness
/// default scales this down to keep the run laptop-sized — the shape of the
/// comparison is what matters).
pub fn run_random_sampling(benchmark: &Benchmark, budget: usize) -> RandomRow {
    let mut learner = HistoryLearner::default();
    let report = random_sampling_baseline(
        &benchmark.system,
        &mut learner,
        &benchmark.observables,
        budget,
        50,
        benchmark.k,
        0xB5,
    )
    .expect("baseline learning failed");
    RandomRow {
        name: benchmark.name.to_string(),
        states: report.num_states(),
        alpha: report.alpha,
        time_s: report.time.as_secs_f64(),
        inputs: report.inputs_used,
    }
}

/// Runs a whole benchmark suite, sharding the benchmarks across `workers`
/// threads. Each worker pulls the next unstarted benchmark from a shared
/// cursor (dynamic load balancing); results are returned **in benchmark
/// order**, so the emitted tables are byte-identical for every worker count.
///
/// `setup` builds the learner and configuration per benchmark; it runs on the
/// worker thread that claims the benchmark.
pub fn run_suite<L, F>(
    benchmarks: &[Benchmark],
    workers: usize,
    setup: F,
) -> Vec<(ActiveRow, RunReport)>
where
    L: ModelLearner,
    F: Fn(&Benchmark) -> (L, ActiveLearnerConfig) + Sync,
{
    let workers = workers.max(1).min(benchmarks.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(ActiveRow, RunReport)>>> =
        Mutex::new((0..benchmarks.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(benchmark) = benchmarks.get(index) else {
                    break;
                };
                let (learner, config) = setup(benchmark);
                let outcome = run_active(benchmark, learner, config);
                results.lock().expect("suite worker panicked")[index] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .expect("suite worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every benchmark produced a result"))
        .collect()
}

/// The concatenated [`RunReport::semantic_fingerprint`]s of a suite run, one
/// section per benchmark. Two runs of the same suite — at any combination of
/// suite-level and condition-level worker counts — must produce identical
/// fingerprints; the suite runner's `--compare` mode and the differential
/// tests assert exactly this.
pub fn suite_fingerprint(benchmarks: &[Benchmark], results: &[(ActiveRow, RunReport)]) -> String {
    let mut out = String::new();
    for (benchmark, (_, report)) in benchmarks.iter().zip(results) {
        out.push_str(&format!("== {}\n", benchmark.name));
        out.push_str(&report.semantic_fingerprint(benchmark.system.vars()));
    }
    out
}

// The digest lives in amle-core (the daemon stamps it into snapshots and
// refinement events); re-exported here so suite output and perf-diff keep
// using the same 16-hex-digit FNV-1a rendering without a drifting copy.
pub use amle_core::fingerprint_digest;

/// Run-level context recorded in the machine-readable suite output.
#[derive(Debug, Clone)]
pub struct SuiteRunMeta {
    /// The condition-oracle engine name (`kinduction`, `explicit`,
    /// `portfolio`).
    pub engine: String,
    /// The model-learner name (`history`, `ktails`, `satdfa`, `lstar`).
    pub learner: String,
    /// Whether the quick experiment shape was used.
    pub quick: bool,
    /// Suite-level worker threads.
    pub workers: usize,
    /// Per-run condition-checking workers.
    pub condition_workers: usize,
    /// Wall-clock seconds of the whole suite run.
    pub wall_time_s: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a suite run as a machine-readable JSON document (no external
/// dependencies — the schema is small and hand-rolled): run metadata, the
/// digest of the concatenated semantic fingerprint, and one record per
/// benchmark with wall time, iterations, solver work, verdict-cache and
/// interner statistics, and the per-benchmark fingerprint digest. This is
/// what `suite --json <path>` (and `AMLE_BENCH_JSON`) write, so the perf
/// trajectory (`BENCH_*.json`) can accumulate across versions, and what
/// the `perf-diff` binary consumes to compare two runs.
///
/// Schema history: **5** added the base-session frame-ledger counters
/// (`frames_encoded`, `frames_reused` — chain-encoded frame disjuncts vs
/// activation-ledger reuses in the k-induction base sessions); **4** added
/// the conclusion-disjunct ledger counters (`disj_encoded`, `disj_reused` —
/// first-time Tseitin encodes vs session reuses of conclusion disjuncts);
/// **3** added the optional per-record `circuit` object (netlist statistics
/// — input/latch/gate counts and cone-of-influence survivors — present only
/// on circuit benchmarks); **2** added the CDCL work counters (`decisions`,
/// `propagations`, `conflicts`, `minimized_lits`, `mean_lbd`); schema 1
/// records lack them. `perf-diff` accepts all five.
pub fn suite_json(
    meta: &SuiteRunMeta,
    benchmarks: &[Benchmark],
    results: &[(ActiveRow, RunReport)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 5,");
    let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(&meta.engine));
    let _ = writeln!(out, "  \"learner\": \"{}\",", json_escape(&meta.learner));
    let _ = writeln!(out, "  \"quick\": {},", meta.quick);
    let _ = writeln!(out, "  \"workers\": {},", meta.workers);
    let _ = writeln!(out, "  \"condition_workers\": {},", meta.condition_workers);
    let _ = writeln!(out, "  \"wall_time_s\": {:.6},", meta.wall_time_s);
    let _ = writeln!(
        out,
        "  \"fingerprint_digest\": \"{}\",",
        fingerprint_digest(&suite_fingerprint(benchmarks, results))
    );
    out.push_str("  \"benchmarks\": [\n");
    assert_eq!(
        benchmarks.len(),
        results.len(),
        "one result per benchmark, in benchmark order (as run_suite returns)"
    );
    for (index, (benchmark, (row, report))) in benchmarks.iter().zip(results).enumerate() {
        let digest = fingerprint_digest(&report.semantic_fingerprint(benchmark.system.vars()));
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"time_s\": {:.6}, \"iterations\": {}, \"alpha\": {}, \
             \"converged\": {}, \"states\": {}, \"d\": {}, \"traces\": {}, \
             \"solve_calls\": {}, \"solver_time_s\": {:.6}, \
             \"decisions\": {}, \"propagations\": {}, \"conflicts\": {}, \
             \"minimized_lits\": {}, \"mean_lbd\": {:.4}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"disj_encoded\": {}, \"disj_reused\": {}, \
             \"frames_encoded\": {}, \"frames_reused\": {}, \
             \"words_encoded\": {}, \"words_reused\": {}, \
             \"interner\": {{\"nodes_interned\": {}, \"hits\": {}, \
             \"hit_rate\": {:.4}, \"canonical_rewrites\": {}}}, \
             \"invariant_dag_nodes\": {}, \"fingerprint_digest\": \"{}\"",
            json_escape(&row.name),
            row.time_s,
            row.iterations,
            row.alpha,
            report.converged,
            row.states,
            row.d,
            row.traces,
            row.solve_calls,
            row.solver_time_s,
            row.decisions,
            row.propagations,
            row.conflicts,
            row.minimized_lits,
            row.mean_lbd,
            row.cache_hits,
            row.cache_misses,
            row.disj_encoded,
            row.disj_reused,
            row.frames_encoded,
            row.frames_reused,
            row.words_encoded,
            row.words_reused,
            row.interner.nodes_interned,
            row.interner.hits,
            row.interner.hit_rate(),
            row.interner.canonical_rewrites,
            row.invariant_dag_nodes,
            digest
        );
        if let Some(c) = &row.circuit {
            let _ = write!(
                out,
                ", \"circuit\": {{\"inputs\": {}, \"latches_total\": {}, \
                 \"latches_in_coi\": {}, \"gates_total\": {}, \"gates_in_coi\": {}, \
                 \"outputs\": {}}}",
                c.inputs,
                c.latches_total,
                c.latches_in_coi,
                c.gates_total,
                c.gates_in_coi,
                c.outputs
            );
        }
        out.push('}');
        if index + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the learner-choice ablation (history vs k-tails) on one benchmark,
/// returning `(history_row, ktails_row)`.
pub fn run_learner_ablation(benchmark: &Benchmark) -> (ActiveRow, ActiveRow) {
    let history = run_active(
        benchmark,
        HistoryLearner::default(),
        quick_config(benchmark),
    )
    .0;
    let ktails = run_active(benchmark, KTailsLearner::new(1), quick_config(benchmark)).0;
    (history, ktails)
}

/// Formats the active-algorithm table in the layout of Table I, extended
/// with the verdict-cache hit column (`hits`) next to the solver-work
/// column it reduces.
pub fn format_active_table(rows: &[ActiveRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>3} {:>4} {:>3} {:>5} {:>3} {:>6} {:>9} {:>6} {:>7} {:>9} {:>6}\n",
        "Benchmark", "|X|", "k", "i", "d", "N", "alpha", "T(s)", "%Tm", "solves", "Tsat(s)", "hits"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>3} {:>4} {:>3} {:>5.2} {:>3} {:>6.2} {:>9.2} {:>6.1} {:>7} {:>9.2} {:>6}\n",
            r.name,
            r.observables,
            r.k,
            r.iterations,
            r.d,
            r.states,
            r.alpha,
            r.time_s,
            r.learn_pct,
            r.solve_calls,
            r.solver_time_s,
            r.cache_hits
        ));
    }
    out
}

/// Formats the oracle-portfolio statistics table: verdict-cache hits and
/// misses, the per-engine query attribution (k-induction vs explicit,
/// explicit work units and budget fallbacks), the conclusion-disjunct
/// ledger traffic (`disjE` first-time encodes vs `disjR` session reuses —
/// the quantity delta-encoded condition sessions minimise), the base-session
/// frame-ledger traffic (`frmE` chain links encoded vs `frmR` reuses), the
/// expression-interner traffic the canonical cache keys ride on (nodes
/// interned, intern hit rate, canonical rewrites applied), and the CDCL
/// search-quality columns (conflicts, propagations per conflict, literals
/// removed by learnt-clause minimization, mean learnt-clause LBD).
pub fn format_oracle_table(rows: &[ActiveRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>6} {:>6} {:>7} {:>7} {:>10} {:>6} {:>6} {:>7} {:>5} {:>6} {:>7} {:>6} {:>7} {:>8} {:>8} {:>7} {:>5}\n",
        "Benchmark",
        "hits",
        "miss",
        "kiQ",
        "exQ",
        "exWork",
        "fallb",
        "disjE",
        "disjR",
        "frmE",
        "frmR",
        "inodes",
        "ihit%",
        "rewr",
        "confl",
        "prop/cf",
        "minlit",
        "mLBD"
    ));
    for r in rows {
        let props_per_conflict = if r.conflicts == 0 {
            0.0
        } else {
            r.propagations as f64 / r.conflicts as f64
        };
        out.push_str(&format!(
            "{:<34} {:>6} {:>6} {:>7} {:>7} {:>10} {:>6} {:>6} {:>7} {:>5} {:>6} {:>7} {:>6.1} {:>7} {:>8} {:>8.1} {:>7} {:>5.1}\n",
            r.name,
            r.cache_hits,
            r.cache_misses,
            r.kinduction_queries,
            r.explicit_queries,
            r.explicit_work,
            r.explicit_fallbacks,
            r.disj_encoded,
            r.disj_reused,
            r.frames_encoded,
            r.frames_reused,
            r.interner.nodes_interned,
            100.0 * r.interner.hit_rate(),
            r.interner.canonical_rewrites,
            r.conflicts,
            props_per_conflict,
            r.minimized_lits,
            r.mean_lbd
        ));
    }
    out
}

/// Formats the trace-store / word-pipeline statistics table: one row per
/// benchmark with the store's sharing metrics and the learner's
/// encoded-vs-reused word counts, followed by the per-iteration encode
/// curve (the series that must grow at most linearly on non-converging
/// benchmarks).
pub fn format_store_stats_table(rows: &[ActiveRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>7} {:>7} {:>7} {:>9} {:>8} {:>8}\n",
        "Benchmark", "traces", "uobs", "segs", "savedKiB", "enc", "reuse"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>7} {:>7} {:>7} {:>9} {:>8} {:>8}\n",
            r.name,
            r.traces,
            r.unique_observations,
            r.segments,
            r.saved_kib,
            r.words_encoded,
            r.words_reused
        ));
    }
    out.push('\n');
    for r in rows {
        let curve: Vec<String> = r
            .words_encoded_per_iteration
            .iter()
            .map(u64::to_string)
            .collect();
        out.push_str(&format!(
            "words encoded/iteration {:<23} [{}]\n",
            r.name,
            curve.join(", ")
        ));
    }
    out
}

/// Formats the circuit netlist-statistics table: one row per circuit
/// benchmark (rows without circuit stats are skipped) with the primary
/// input, latch and gate counts, how much of each survived the
/// cone-of-influence pass, and the observed-output count. Returns an empty
/// string when no row carries circuit stats, so callers can print it
/// unconditionally.
pub fn format_circuit_table(rows: &[ActiveRow]) -> String {
    let circuit_rows: Vec<_> = rows
        .iter()
        .filter_map(|r| r.circuit.as_ref().map(|c| (r, c)))
        .collect();
    if circuit_rows.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>4}\n",
        "Benchmark", "ins", "latches", "inCOI", "gates", "inCOI", "dropped", "outs"
    ));
    for (r, c) in circuit_rows {
        out.push_str(&format!(
            "{:<34} {:>4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>4}\n",
            r.name,
            c.inputs,
            c.latches_total,
            c.latches_in_coi,
            c.gates_total,
            c.gates_in_coi,
            c.gates_dropped() + c.latches_dropped(),
            c.outputs
        ));
    }
    out
}

/// Formats the random-sampling table (the right-hand columns of Table I).
pub fn format_random_table(rows: &[RandomRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>3} {:>6} {:>9} {:>8}\n",
        "Benchmark", "N", "alpha", "T(s)", "inputs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>3} {:>6.2} {:>9.2} {:>8}\n",
            r.name, r.states, r.alpha, r.time_s, r.inputs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_benchmarks::benchmark_by_name;

    #[test]
    fn active_row_for_the_cooler_matches_the_paper_shape() {
        let b = benchmark_by_name("HomeClimateControlCooler").unwrap();
        let (row, report) = run_active(&b, HistoryLearner::default(), quick_config(&b));
        assert_eq!(row.alpha, 1.0);
        assert_eq!(row.d, 1.0);
        assert!(row.states >= 2);
        assert!(report.converged);
    }

    #[test]
    fn random_sampling_row_is_produced() {
        let b = benchmark_by_name("CountEvents").unwrap();
        let row = run_random_sampling(&b, 200);
        assert!(row.states >= 1);
        assert!((0.0..=1.0).contains(&row.alpha));
    }

    #[test]
    fn suite_runner_shards_deterministically() {
        use amle_core::ParallelConfig;
        let suite: Vec<_> = amle_benchmarks::full_suite()
            .into_iter()
            .filter(|b| b.name.starts_with("Synth"))
            .take(4)
            .collect();
        assert_eq!(suite.len(), 4);
        let config = |b: &amle_benchmarks::Benchmark| ActiveLearnerConfig {
            observables: Some(b.observables.clone()),
            initial_traces: 5,
            trace_length: 6,
            k: b.k.min(4),
            max_iterations: 2,
            parallel: ParallelConfig::with_workers(1),
            ..Default::default()
        };
        let run =
            |workers: usize| run_suite(&suite, workers, |b| (HistoryLearner::default(), config(b)));
        let sequential = run(1);
        let sharded = run(4);
        assert_eq!(sequential.len(), sharded.len());
        assert_eq!(
            suite_fingerprint(&suite, &sequential),
            suite_fingerprint(&suite, &sharded),
            "suite-level sharding leaked into the reports"
        );
        // Rows come back in benchmark order regardless of which worker
        // finished first.
        for ((row, _), benchmark) in sharded.iter().zip(&suite) {
            assert_eq!(row.name, benchmark.name);
        }
    }

    #[test]
    fn portfolio_engine_matches_kinduction_and_fills_the_oracle_columns() {
        let b = benchmark_by_name("HomeClimateControlCooler").unwrap();
        // Explicit-first portfolio (unbounded routing threshold) so the
        // explicit engine actually answers queries on this small system.
        let mut config = quick_config(&b);
        config.oracle.engine = amle_core::OracleKind::Portfolio;
        config.oracle.route_threshold = u64::MAX;
        let (row, report) = run_active(&b, HistoryLearner::default(), config);
        let (_, baseline) = run_active(&b, HistoryLearner::default(), quick_config(&b));
        assert_eq!(
            report.semantic_fingerprint(b.system.vars()),
            baseline.semantic_fingerprint(b.system.vars()),
            "oracle engine leaked into the semantic fingerprint"
        );
        assert!(row.explicit_queries > 0, "explicit engine never consulted");
        assert!(row.explicit_work > 0);
        let table = format_oracle_table(&[row]);
        assert!(table.contains("exQ"));
        assert!(table.contains("HomeClimateControlCooler"));
    }

    #[test]
    fn verdict_cache_reduces_solve_calls_on_repeated_conditions() {
        let b = benchmark_by_name("CountEvents").unwrap();
        let mut cached_config = quick_config(&b);
        cached_config.oracle.verdict_cache = true;
        let mut uncached_config = quick_config(&b);
        uncached_config.oracle.verdict_cache = false;
        let (cached_row, cached_report) = run_active(&b, HistoryLearner::default(), cached_config);
        let (uncached_row, uncached_report) =
            run_active(&b, HistoryLearner::default(), uncached_config);
        assert_eq!(
            cached_report.semantic_fingerprint(b.system.vars()),
            uncached_report.semantic_fingerprint(b.system.vars()),
            "verdict cache leaked into the semantic fingerprint"
        );
        // This benchmark re-extracts many conditions unchanged across its
        // iterations (deterministic seed), so the cache must hit — and every
        // hit is solver work the uncached run had to do.
        assert!(cached_row.cache_hits > 0, "cache never hit on CountEvents");
        assert!(
            cached_row.solve_calls < uncached_row.solve_calls,
            "cache hits must translate into fewer solver calls"
        );
        assert_eq!(uncached_row.cache_hits, 0);
    }

    #[test]
    fn tables_format_cleanly() {
        let b = benchmark_by_name("MealyVendingMachine").unwrap();
        let (row, _) = run_active(&b, HistoryLearner::default(), quick_config(&b));
        let table = format_active_table(&[row]);
        assert!(table.contains("MealyVendingMachine"));
        assert!(table.lines().count() >= 2);
        let rrow = run_random_sampling(&b, 100);
        assert!(format_random_table(&[rrow]).contains("MealyVendingMachine"));
    }

    /// The interner statistics must flow from the run into the row and the
    /// oracle table: a real run interns predicate nodes, applies canonical
    /// rewrites while keying the verdict cache, and reports a nonzero
    /// invariant DAG size.
    ///
    /// The interner and its canonical memo are process-global, so this must
    /// run on a benchmark no other test in this binary touches — a repeat
    /// run of an already-seen benchmark legitimately interns ~nothing new.
    #[test]
    fn interner_stats_flow_into_rows_and_tables() {
        let b = benchmark_by_name("RedundantSensorPair").unwrap();
        let (row, report) = run_active(&b, HistoryLearner::default(), quick_config(&b));
        assert!(row.interner.nodes_interned > 0, "a run must intern nodes");
        assert!(
            row.interner.canonical_rewrites > 0,
            "keying the verdict cache must apply canonical rewrites"
        );
        assert_eq!(row.interner, report.interner);
        assert!((0.0..=1.0).contains(&row.interner.hit_rate()));
        assert!(row.invariant_dag_nodes > 0);
        assert!(
            row.disj_encoded > 0,
            "a real run must encode conclusion disjuncts"
        );
        let table = format_oracle_table(std::slice::from_ref(&row));
        assert!(table.contains("inodes"));
        assert!(table.contains("rewr"));
        assert!(table.contains("disjE"));
        assert!(table.contains("frmE"));
        assert!(table.contains("RedundantSensorPair"));
    }

    /// Circuit benchmarks carry netlist stats into their rows, the circuit
    /// table and the JSON record; other benchmarks don't.
    #[test]
    fn circuit_stats_flow_into_rows_tables_and_json() {
        let b = benchmark_by_name("CircuitCoiDemo").unwrap();
        let config = ActiveLearnerConfig {
            observables: Some(b.observables.clone()),
            initial_traces: 5,
            trace_length: 6,
            k: b.k.min(4),
            max_iterations: 2,
            parallel: amle_core::ParallelConfig::with_workers(1),
            ..Default::default()
        };
        let (row, report) = run_active(&b, HistoryLearner::default(), config);
        let stats = row.circuit.expect("circuit benchmarks carry netlist stats");
        assert_eq!(stats.gates_dropped(), 2);
        assert_eq!(stats.latches_dropped(), 3);
        let table = format_circuit_table(std::slice::from_ref(&row));
        assert!(table.contains("CircuitCoiDemo"));
        assert!(table.contains("inCOI"));
        let meta = SuiteRunMeta {
            engine: "kinduction".to_string(),
            learner: "history".to_string(),
            quick: true,
            workers: 1,
            condition_workers: 1,
            wall_time_s: 0.1,
        };
        let suite = vec![b];
        let results = vec![(row, report)];
        let json = suite_json(&meta, &suite, &results);
        assert!(json.contains("\"circuit\": {\"inputs\": 2, \"latches_total\": 4"));
        assert!(json.contains("\"gates_in_coi\": 1"));
        // And the document still parses through the perf-diff consumer.
        let run = perf::parse_suite_run(&json).unwrap();
        assert_eq!(run.schema, 5);
        assert_eq!(run.benchmarks.len(), 1);
        // A non-circuit row renders an empty circuit table.
        let plain = benchmark_by_name("HomeClimateControlCooler").unwrap();
        let (plain_row, _) = run_active(&plain, HistoryLearner::default(), quick_config(&plain));
        assert!(plain_row.circuit.is_none());
        assert_eq!(format_circuit_table(std::slice::from_ref(&plain_row)), "");
    }

    #[test]
    fn fingerprint_digest_is_stable_and_content_sensitive() {
        let a = fingerprint_digest("alpha=1 iterations=3");
        assert_eq!(a, fingerprint_digest("alpha=1 iterations=3"));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, fingerprint_digest("alpha=1 iterations=4"));
        // Pinned value: the digest is part of the accumulated BENCH_*.json
        // trajectory, so accidental algorithm changes must show up here.
        assert_eq!(fingerprint_digest(""), "cbf29ce484222325");
    }

    /// The machine-readable suite output: structurally valid JSON (checked
    /// with a tiny scanner: balanced braces/brackets outside strings), one
    /// record per benchmark, and the digest of the suite fingerprint.
    #[test]
    fn suite_json_shape() {
        let suite: Vec<_> = amle_benchmarks::full_suite()
            .into_iter()
            .filter(|b| b.name.starts_with("SynthGray"))
            .take(2)
            .collect();
        assert_eq!(suite.len(), 2);
        let results = run_suite(&suite, 1, |b| {
            (
                HistoryLearner::default(),
                amle_core::ActiveLearnerConfig {
                    observables: Some(b.observables.clone()),
                    initial_traces: 5,
                    trace_length: 6,
                    k: b.k.min(4),
                    max_iterations: 2,
                    parallel: amle_core::ParallelConfig::with_workers(1),
                    ..Default::default()
                },
            )
        });
        let meta = SuiteRunMeta {
            engine: "kinduction".to_string(),
            learner: "history".to_string(),
            quick: true,
            workers: 1,
            condition_workers: 1,
            wall_time_s: 0.25,
        };
        let json = suite_json(&meta, &suite, &results);
        for needle in [
            "\"schema\": 5",
            "\"engine\": \"kinduction\"",
            "\"learner\": \"history\"",
            "\"fingerprint_digest\"",
            "\"interner\"",
            "\"canonical_rewrites\"",
            "\"invariant_dag_nodes\"",
            // Schema-2 CDCL work counters, one per benchmark record.
            "\"decisions\"",
            "\"propagations\"",
            "\"conflicts\"",
            "\"minimized_lits\"",
            "\"mean_lbd\"",
            // Schema-4 conclusion-disjunct ledger counters.
            "\"disj_encoded\"",
            "\"disj_reused\"",
            // Schema-5 base-session frame-ledger counters.
            "\"frames_encoded\"",
            "\"frames_reused\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        for b in &suite {
            assert!(json.contains(&format!("\"name\": \"{}\"", b.name)));
        }
        let expected_digest = fingerprint_digest(&suite_fingerprint(&suite, &results));
        assert!(json.contains(&expected_digest));
        // Synthetic benchmarks carry no circuit stats object.
        assert!(!json.contains("\"circuit\""));
        // Balanced-structure scan.
        let (mut depth, mut brackets, mut in_string, mut escaped) = (0i32, 0i32, false, false);
        for c in json.chars() {
            if in_string {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth += 1,
                '}' => depth -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
            assert!(depth >= 0 && brackets >= 0, "unbalanced JSON");
        }
        assert_eq!((depth, brackets, in_string), (0, 0, false));
    }
}
