//! Perf-trajectory comparison of two `suite --json` documents.
//!
//! The suite emits hand-rolled JSON (see [`crate::suite_json`]); this module
//! is its matching consumer — the per-benchmark delta computation behind the
//! `perf-diff` binary, reading documents with the shared JSON parser from
//! [`amle_serve::json`] (one parser for the daemon wire protocol and the
//! suite artefacts, not two drifting copies). It accepts schema 1
//! (pre-CDCL-counters), schema 2, schema 3 (optional per-record circuit
//! netlist stats), schema 4 (conclusion-disjunct ledger counters) and
//! schema 5 (base-session frame-ledger counters) documents, so a fresh run
//! can be compared against an older CI artifact.
//!
//! A *regression* is flagged per benchmark:
//!
//! * wall time above the relative threshold **and** a small absolute floor
//!   (tiny benchmarks fluctuate by microseconds — a pure ratio would cry
//!   wolf on every run);
//! * any increase in `solve_calls` or decrease in `cache_hits` — both are
//!   deterministic under a fixed suite configuration, so any drift is a
//!   behavioural change, not noise;
//! * a changed per-benchmark fingerprint digest, which means the two runs
//!   are not semantically comparable at all.

use std::collections::BTreeMap;

pub use amle_serve::json::{parse_json, Json};

/// The per-benchmark measurements `perf-diff` compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPerf {
    /// Benchmark name.
    pub name: String,
    /// Wall time of the benchmark run in seconds.
    pub time_s: f64,
    /// Seconds spent inside the SAT backend.
    pub solver_time_s: f64,
    /// SAT solve calls.
    pub solve_calls: u64,
    /// Verdict-cache hits.
    pub cache_hits: u64,
    /// CDCL conflicts (0 in schema-1 documents).
    pub conflicts: u64,
    /// Unit propagations (0 in schema-1 documents).
    pub propagations: u64,
    /// Semantic fingerprint digest of the run.
    pub fingerprint_digest: String,
}

/// A parsed `suite --json` document, reduced to what `perf-diff` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRun {
    /// Document schema version (1 through 5).
    pub schema: u64,
    /// Oracle engine the suite ran with.
    pub engine: String,
    /// Total suite wall time in seconds.
    pub wall_time_s: f64,
    /// Digest of the concatenated semantic fingerprint.
    pub fingerprint_digest: String,
    /// Per-benchmark measurements, in run order.
    pub benchmarks: Vec<BenchPerf>,
}

fn field_f64(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn field_u64(obj: &Json, key: &str) -> u64 {
    field_f64(obj, key) as u64
}

fn field_str(obj: &Json, key: &str) -> String {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string()
}

/// Parses a `suite --json` document into a [`SuiteRun`].
pub fn parse_suite_run(text: &str) -> Result<SuiteRun, String> {
    let doc = parse_json(text)?;
    let schema = field_u64(&doc, "schema");
    if !(1..=5).contains(&schema) {
        return Err(format!("unsupported suite schema {schema}"));
    }
    let benchmarks = match doc.get("benchmarks") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|b| BenchPerf {
                name: field_str(b, "name"),
                time_s: field_f64(b, "time_s"),
                solver_time_s: field_f64(b, "solver_time_s"),
                solve_calls: field_u64(b, "solve_calls"),
                cache_hits: field_u64(b, "cache_hits"),
                conflicts: field_u64(b, "conflicts"),
                propagations: field_u64(b, "propagations"),
                fingerprint_digest: field_str(b, "fingerprint_digest"),
            })
            .collect(),
        _ => return Err("missing \"benchmarks\" array".to_string()),
    };
    Ok(SuiteRun {
        schema,
        engine: field_str(&doc, "engine"),
        wall_time_s: field_f64(&doc, "wall_time_s"),
        fingerprint_digest: field_str(&doc, "fingerprint_digest"),
        benchmarks,
    })
}

/// One benchmark's delta between a baseline and a candidate run.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Benchmark name.
    pub name: String,
    /// Baseline measurements.
    pub base: BenchPerf,
    /// Candidate measurements.
    pub new: BenchPerf,
    /// Human-readable regression descriptions; empty when clean.
    pub regressions: Vec<String>,
}

impl BenchDelta {
    /// Relative wall-time change (`+0.25` = 25% slower).
    pub fn time_ratio(&self) -> f64 {
        if self.base.time_s <= 0.0 {
            0.0
        } else {
            self.new.time_s / self.base.time_s - 1.0
        }
    }
}

/// The full comparison of two suite runs.
#[derive(Debug, Clone)]
pub struct PerfDiff {
    /// Per-benchmark deltas for benchmarks present in both runs.
    pub deltas: Vec<BenchDelta>,
    /// Benchmarks present in only one of the runs.
    pub unmatched: Vec<String>,
    /// Whether the two runs' suite-level fingerprint digests agree.
    pub fingerprints_match: bool,
}

impl PerfDiff {
    /// Whether any benchmark regressed (or the fingerprints diverged).
    pub fn has_regressions(&self) -> bool {
        !self.fingerprints_match || self.deltas.iter().any(|d| !d.regressions.is_empty())
    }
}

/// Wall-time changes below this absolute floor are never flagged, whatever
/// the ratio: sub-10ms benchmarks jitter by integer factors run to run.
pub const TIME_FLOOR_S: f64 = 0.05;

/// Compares two parsed suite runs. `threshold` is the relative wall-time
/// increase tolerated before flagging (e.g. `0.2` = 20%).
pub fn diff_runs(base: &SuiteRun, new: &SuiteRun, threshold: f64) -> PerfDiff {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    let base_by_name: BTreeMap<&str, &BenchPerf> = base
        .benchmarks
        .iter()
        .map(|b| (b.name.as_str(), b))
        .collect();
    let new_names: BTreeMap<&str, ()> = new
        .benchmarks
        .iter()
        .map(|b| (b.name.as_str(), ()))
        .collect();
    for b in &base.benchmarks {
        if !new_names.contains_key(b.name.as_str()) {
            unmatched.push(b.name.clone());
        }
    }
    for candidate in &new.benchmarks {
        let Some(&baseline) = base_by_name.get(candidate.name.as_str()) else {
            unmatched.push(candidate.name.clone());
            continue;
        };
        let mut regressions = Vec::new();
        let dt = candidate.time_s - baseline.time_s;
        if baseline.time_s > 0.0 && dt > TIME_FLOOR_S && dt / baseline.time_s > threshold {
            regressions.push(format!(
                "wall time +{:.0}% ({:.3}s -> {:.3}s)",
                100.0 * dt / baseline.time_s,
                baseline.time_s,
                candidate.time_s
            ));
        }
        if candidate.solve_calls > baseline.solve_calls {
            regressions.push(format!(
                "solve calls {} -> {}",
                baseline.solve_calls, candidate.solve_calls
            ));
        }
        if candidate.cache_hits < baseline.cache_hits {
            regressions.push(format!(
                "cache hits {} -> {}",
                baseline.cache_hits, candidate.cache_hits
            ));
        }
        if candidate.fingerprint_digest != baseline.fingerprint_digest {
            regressions.push("fingerprint digest changed".to_string());
        }
        deltas.push(BenchDelta {
            name: candidate.name.clone(),
            base: baseline.clone(),
            new: candidate.clone(),
            regressions,
        });
    }
    PerfDiff {
        deltas,
        unmatched,
        fingerprints_match: base.fingerprint_digest == new.fingerprint_digest,
    }
}

/// Renders the comparison as a fixed-width report: per-benchmark wall-time /
/// solver-time / solve-call / cache-hit deltas plus propagations-per-conflict
/// when both documents carry the schema-2 counters, then a regression
/// summary.
pub fn format_diff(base: &SuiteRun, new: &SuiteRun, diff: &PerfDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "suite wall time: {:.3}s -> {:.3}s   fingerprints: {}",
        base.wall_time_s,
        new.wall_time_s,
        if diff.fingerprints_match {
            "MATCH"
        } else {
            "DIVERGED"
        }
    );
    let _ = writeln!(
        out,
        "{:<34} {:>9} {:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "Benchmark",
        "T(s)old",
        "T(s)new",
        "dT%",
        "Tsat old",
        "Tsat new",
        "solves",
        "hits",
        "prop/cf"
    );
    for d in &diff.deltas {
        let prop_cf = |b: &BenchPerf| {
            if b.conflicts == 0 {
                None
            } else {
                Some(b.propagations as f64 / b.conflicts as f64)
            }
        };
        let ppc = match (prop_cf(&d.base), prop_cf(&d.new)) {
            (Some(a), Some(b)) => format!("{a:.0}->{b:.0}"),
            (None, Some(b)) => format!("-->{b:.0}"),
            _ => "-".to_string(),
        };
        let solves = if d.new.solve_calls == d.base.solve_calls {
            format!("{}", d.new.solve_calls)
        } else {
            format!("{}!", d.new.solve_calls)
        };
        let hits = if d.new.cache_hits == d.base.cache_hits {
            format!("{}", d.new.cache_hits)
        } else {
            format!("{}!", d.new.cache_hits)
        };
        let _ = writeln!(
            out,
            "{:<34} {:>9.3} {:>9.3} {:>+6.1}% {:>9.3} {:>9.3} {:>8} {:>8} {:>9}",
            d.name,
            d.base.time_s,
            d.new.time_s,
            100.0 * d.time_ratio(),
            d.base.solver_time_s,
            d.new.solver_time_s,
            solves,
            hits,
            ppc
        );
    }
    for name in &diff.unmatched {
        let _ = writeln!(out, "{name:<34} present in only one run");
    }
    let flagged: Vec<&BenchDelta> = diff
        .deltas
        .iter()
        .filter(|d| !d.regressions.is_empty())
        .collect();
    if flagged.is_empty() && diff.fingerprints_match {
        let _ = writeln!(out, "\nno regressions flagged");
    } else {
        let _ = writeln!(out, "\nREGRESSIONS:");
        if !diff.fingerprints_match {
            let _ = writeln!(out, "  suite fingerprint digest diverged");
        }
        for d in flagged {
            for r in &d.regressions {
                let _ = writeln!(out, "  {}: {}", d.name, r);
            }
        }
    }
    out
}

/// Renders a sequence of suite runs as a per-benchmark CSV trajectory —
/// the `perf-diff --trend` output. One row per `(benchmark, run)` pair in
/// long format (`benchmark,run,time_s,solver_time_s,solve_calls,cache_hits,
/// fingerprint_digest`), run indices 1-based in argument order, so the
/// series pivots trivially in any plotting tool. Benchmarks absent from a
/// run simply have no row for that index; a final `__suite__` series
/// carries the suite-level wall time and fingerprint digest so semantic
/// divergence mid-trajectory is visible in the same document.
pub fn format_trend(runs: &[SuiteRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("benchmark,run,time_s,solver_time_s,solve_calls,cache_hits,fingerprint_digest\n");
    // Benchmark order of first appearance across the runs, so the series
    // groups by benchmark rather than by file.
    let mut order: Vec<&str> = Vec::new();
    for run in runs {
        for b in &run.benchmarks {
            if !order.contains(&b.name.as_str()) {
                order.push(&b.name);
            }
        }
    }
    for name in order {
        for (index, run) in runs.iter().enumerate() {
            if let Some(b) = run.benchmarks.iter().find(|b| b.name == name) {
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{:.6},{},{},{}",
                    csv_escape(name),
                    index + 1,
                    b.time_s,
                    b.solver_time_s,
                    b.solve_calls,
                    b.cache_hits,
                    b.fingerprint_digest
                );
            }
        }
    }
    for (index, run) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "__suite__,{},{:.6},,,,{}",
            index + 1,
            run.wall_time_s,
            run.fingerprint_digest
        );
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(schema: u64, time: f64, calls: u64, hits: u64, fp: &str) -> String {
        let counters = if schema >= 2 {
            ", \"decisions\": 10, \"propagations\": 600, \"conflicts\": 20, \
             \"minimized_lits\": 4, \"mean_lbd\": 2.5"
        } else {
            ""
        };
        format!(
            "{{\n  \"schema\": {schema},\n  \"engine\": \"kinduction\",\n  \
             \"wall_time_s\": {time},\n  \"fingerprint_digest\": \"{fp}\",\n  \
             \"benchmarks\": [\n    {{\"name\": \"A\", \"time_s\": {time}, \
             \"solve_calls\": {calls}, \"solver_time_s\": 0.5, \
             \"cache_hits\": {hits}, \"fingerprint_digest\": \"{fp}-a\"{counters}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn parses_all_supported_schemas() {
        let v1 = parse_suite_run(&sample(1, 1.0, 100, 7, "abc")).unwrap();
        assert_eq!(v1.schema, 1);
        assert_eq!(v1.benchmarks[0].conflicts, 0, "schema 1 has no counters");
        let v2 = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        assert_eq!(v2.schema, 2);
        assert_eq!(v2.benchmarks[0].conflicts, 20);
        assert_eq!(v2.benchmarks[0].propagations, 600);
        // Schema 3 adds only the optional per-record circuit stats object,
        // so a schema-2-shaped document under the new number still parses.
        let v3 = parse_suite_run(&sample(3, 1.0, 100, 7, "abc")).unwrap();
        assert_eq!(v3.schema, 3);
        // Schema 4 adds only the disjunct-ledger counters, which older
        // documents simply lack.
        let v4 = parse_suite_run(&sample(4, 1.0, 100, 7, "abc")).unwrap();
        assert_eq!(v4.schema, 4);
        // Schema 5 adds only the base-session frame-ledger counters.
        let v5 = parse_suite_run(&sample(5, 1.0, 100, 7, "abc")).unwrap();
        assert_eq!(v5.schema, 5);
        assert!(parse_suite_run("{\"schema\": 6, \"benchmarks\": []}").is_err());
    }

    #[test]
    fn trend_emits_one_row_per_benchmark_per_run() {
        let a = parse_suite_run(&sample(3, 1.0, 100, 7, "abc")).unwrap();
        let b = parse_suite_run(&sample(4, 0.8, 90, 12, "abc")).unwrap();
        let c = parse_suite_run(&sample(4, 0.7, 90, 12, "abc")).unwrap();
        let csv = format_trend(&[a, b, c]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "benchmark,run,time_s,solver_time_s,solve_calls,cache_hits,fingerprint_digest"
        );
        // One row per (benchmark, run) plus the __suite__ series.
        assert_eq!(lines.len(), 1 + 3 + 3);
        assert!(lines[1].starts_with("A,1,1.000000,"));
        assert!(lines[2].starts_with("A,2,0.800000,"));
        assert!(lines[3].starts_with("A,3,0.700000,"));
        assert!(lines[1].ends_with(",100,7,abc-a"));
        assert!(lines[2].ends_with(",90,12,abc-a"));
        assert!(lines[4].starts_with("__suite__,1,1.000000,,,,abc"));
        assert!(lines[6].starts_with("__suite__,3,0.700000,,,,abc"));
    }

    #[test]
    fn trend_tolerates_benchmarks_missing_from_some_runs() {
        let a = parse_suite_run(&sample(4, 1.0, 100, 7, "abc")).unwrap();
        let mut b = parse_suite_run(&sample(4, 0.9, 95, 8, "def")).unwrap();
        b.benchmarks[0].name = "B".to_string();
        let csv = format_trend(&[a, b]);
        // "A" only appears in run 1, "B" only in run 2; no empty rows are
        // fabricated for the gaps.
        assert!(csv.contains("A,1,"));
        assert!(!csv.contains("A,2,"));
        assert!(csv.contains("B,2,"));
        assert!(!csv.contains("B,1,"));
    }

    #[test]
    fn trend_escapes_awkward_benchmark_names() {
        let mut run = parse_suite_run(&sample(4, 1.0, 100, 7, "abc")).unwrap();
        run.benchmarks[0].name = "two,words \"q\"".to_string();
        let csv = format_trend(&[run.clone(), run]);
        assert!(csv.contains("\"two,words \"\"q\"\"\",1,"));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let json =
            parse_json("{\"a\": [1, -2.5e1, \"x\\\"y\\n\", true, null], \"b\": {}}").unwrap();
        let a = json.get("a").unwrap();
        match a {
            Json::Array(items) => {
                assert_eq!(items[0], Json::Number(1.0));
                assert_eq!(items[1], Json::Number(-25.0));
                assert_eq!(items[2], Json::String("x\"y\n".to_string()));
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[4], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(parse_json("[1 2]").is_err());
    }

    #[test]
    fn identical_runs_are_clean() {
        let run = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        let diff = diff_runs(&run, &run, 0.2);
        assert!(!diff.has_regressions());
        assert!(diff.fingerprints_match);
        let rendered = format_diff(&run, &run, &diff);
        assert!(rendered.contains("no regressions flagged"));
        assert!(rendered.contains("MATCH"));
    }

    #[test]
    fn wall_time_regression_respects_threshold_and_floor() {
        let base = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        // +30% over a 20% threshold and above the absolute floor: flagged.
        let slow = parse_suite_run(&sample(2, 1.3, 100, 7, "abc")).unwrap();
        assert!(diff_runs(&base, &slow, 0.2).has_regressions());
        // +30% but within the threshold at 40%: clean.
        assert!(!diff_runs(&base, &slow, 0.4).has_regressions());
        // Huge ratio on a microscopic benchmark: under the floor, clean.
        let tiny_base = parse_suite_run(&sample(2, 0.001, 100, 7, "abc")).unwrap();
        let tiny_slow = parse_suite_run(&sample(2, 0.004, 100, 7, "abc")).unwrap();
        assert!(!diff_runs(&tiny_base, &tiny_slow, 0.2).has_regressions());
    }

    #[test]
    fn deterministic_counter_drift_is_always_flagged() {
        let base = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        let more_calls = parse_suite_run(&sample(2, 1.0, 101, 7, "abc")).unwrap();
        let diff = diff_runs(&base, &more_calls, 0.2);
        assert!(diff.has_regressions());
        assert!(diff.deltas[0].regressions[0].contains("solve calls"));
        let fewer_hits = parse_suite_run(&sample(2, 1.0, 100, 6, "abc")).unwrap();
        assert!(diff_runs(&base, &fewer_hits, 0.2).has_regressions());
        // Fewer solve calls / more hits are improvements, not regressions.
        let better = parse_suite_run(&sample(2, 1.0, 90, 9, "abc")).unwrap();
        assert!(!diff_runs(&base, &better, 0.2).has_regressions());
    }

    #[test]
    fn fingerprint_divergence_is_a_regression() {
        let base = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        let other = parse_suite_run(&sample(2, 1.0, 100, 7, "xyz")).unwrap();
        let diff = diff_runs(&base, &other, 0.2);
        assert!(!diff.fingerprints_match);
        assert!(diff.has_regressions());
        let rendered = format_diff(&base, &other, &diff);
        assert!(rendered.contains("DIVERGED"));
    }

    #[test]
    fn cross_schema_comparison_works() {
        let old = parse_suite_run(&sample(1, 1.0, 100, 7, "abc")).unwrap();
        let new = parse_suite_run(&sample(2, 0.9, 100, 7, "abc")).unwrap();
        let diff = diff_runs(&old, &new, 0.2);
        assert!(!diff.has_regressions());
        // prop/cf renders one-sided when the baseline lacks counters.
        let rendered = format_diff(&old, &new, &diff);
        assert!(rendered.contains("-->30"));
    }

    #[test]
    fn unmatched_benchmarks_are_reported_not_flagged() {
        let base = parse_suite_run(&sample(2, 1.0, 100, 7, "abc")).unwrap();
        let mut renamed = base.clone();
        renamed.benchmarks[0].name = "B".to_string();
        let diff = diff_runs(&base, &renamed, 0.2);
        assert_eq!(diff.unmatched.len(), 2, "A and B both unmatched");
        assert!(!diff.has_regressions());
    }
}
