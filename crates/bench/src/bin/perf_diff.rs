//! `perf-diff` — compares two `suite --json` documents.
//!
//! ```text
//! perf-diff <baseline.json> <candidate.json> [--threshold <ratio>] [--fail-on-regression]
//! ```
//!
//! Prints per-benchmark wall-time / solver-time / solve-call / cache-hit
//! deltas (plus propagations-per-conflict when the schema-2 CDCL counters
//! are present) and a regression summary. By default the exit code is 0
//! regardless of findings, so CI can run it as a non-blocking report step;
//! `--fail-on-regression` exits 1 when a regression (or a fingerprint
//! divergence) is flagged.
//!
//! `--threshold` is the tolerated relative wall-time increase (default 0.2,
//! i.e. 20%); increases under an absolute floor are never flagged, so
//! microsecond-scale benchmarks don't alarm on scheduler noise. Solver-call
//! and cache-hit drift is flagged at any magnitude — those counters are
//! deterministic for a fixed suite configuration.
//!
//! ```text
//! perf-diff --trend <a.json> <b.json> [<c.json>...]
//! ```
//!
//! Trend mode takes two or more run documents in chronological order and
//! emits a long-format CSV trajectory on stdout — one row per benchmark per
//! run (wall time, solver time, solve calls, cache hits, fingerprint
//! digest), plus a `__suite__` series for suite-level wall time — instead
//! of a pairwise diff. Exit code is always 0 unless an input fails to
//! parse.

use amle_bench::perf::{diff_runs, format_diff, format_trend, parse_suite_run};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf-diff <baseline.json> <candidate.json> [--threshold <ratio>] [--fail-on-regression]\n       perf-diff --trend <a.json> <b.json> [<c.json>...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.2f64;
    let mut fail_on_regression = false;
    let mut trend = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trend" => trend = true,
            "--threshold" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage();
                };
                match value.parse::<f64>() {
                    Ok(t) if t >= 0.0 => threshold = t,
                    _ => {
                        eprintln!("perf-diff: invalid threshold {value:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--fail-on-regression" => fail_on_regression = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("perf-diff: unknown flag {other}");
                return usage();
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let read = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_suite_run(&text).map_err(|e| format!("{path}: {e}"))
    };

    if trend {
        if paths.len() < 2 {
            return usage();
        }
        let mut runs = Vec::with_capacity(paths.len());
        for path in &paths {
            match read(path) {
                Ok(run) => runs.push(run),
                Err(e) => {
                    eprintln!("perf-diff: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        print!("{}", format_trend(&runs));
        return ExitCode::SUCCESS;
    }

    let [base_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let (base, new) = match (read(base_path), read(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf-diff: {e}");
            return ExitCode::from(2);
        }
    };
    if base.engine != new.engine {
        eprintln!(
            "perf-diff: warning: comparing engine {:?} against {:?}",
            base.engine, new.engine
        );
    }

    let diff = diff_runs(&base, &new, threshold);
    print!("{}", format_diff(&base, &new, &diff));
    if fail_on_regression && diff.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
