//! The multi-threaded suite runner: runs the full evaluation suite (Table I
//! plus the synthetic families) sharded across worker threads and emits the
//! Table I-style report, with an optional sequential-vs-parallel comparison
//! that verifies report determinism and measures the wall-clock speedup.
//!
//! ```text
//! suite [--workers N] [--condition-workers N] [--quick] [--compare]
//!       [--repeat N] [--table1-only] [--stress] [--circuits]
//!       [--circuit-file <path>] [--only <substring>]
//!       [--dump-fingerprint <path>] [--json <path>]
//!       [--learner history|ktails|satdfa|lstar]
//!       [--engine kinduction|explicit|portfolio] [--no-cache]
//!       [--cross-validate]
//! ```
//!
//! * `--workers N` — number of suite-level worker threads (benchmarks are
//!   sharded across them). Defaults to `AMLE_WORKERS`, then 4.
//! * `--condition-workers N` — worker count of the per-run condition-checking
//!   engine (see `amle_core::ParallelConfig`). Defaults to 1: benchmark-level
//!   sharding already saturates the cores, and nesting both multiplies
//!   threads.
//! * `--quick` — use the smaller experiment shape (15 traces of length 15)
//!   instead of the paper's 50×50.
//! * `--compare` — additionally run everything sequentially (1 worker,
//!   sequential condition engine), assert that both runs' reports are
//!   byte-identical, and print the wall-clock speedup.
//! * `--repeat N` — run the whole suite `N` times and report the
//!   **minimum** wall and solver time per benchmark (all deterministic
//!   counters and fingerprints are asserted identical across repeats).
//!   Min-of-N is what `perf-diff` regression gating should consume: on a
//!   busy machine a single run's wall time flaps by tens of milliseconds,
//!   while the minimum estimates the noise-free cost.
//! * `--table1-only` — restrict the suite to the Table I benchmarks.
//! * `--stress` — extend the suite with the non-converging splicing-stress
//!   family (`SynthSpliceStorm…`), which exercises the interned trace store
//!   and the incremental word pipeline hardest.
//! * `--circuits` — extend the suite with the gate-level circuit family
//!   (`Circuit…`): the embedded AIGER/`.bench` fixtures of `amle-circuit`,
//!   compiled to systems after cone-of-influence reduction. The report
//!   gains a netlist-statistics table (inputs, latches and gates in/out of
//!   the COI), and `--json` records gain a per-benchmark `circuit` object.
//!   Combine with `--only Circuit` to run the circuit family alone.
//! * `--circuit-file <path>` — load a real `.aag` (ASCII AIGER) or `.bench`
//!   (ISCAS) netlist from disk and append it to the suite as
//!   `CircuitFile_<stem>`, through the same COI-reduce-and-compile pipeline
//!   as the embedded fixtures but with generic witness schedules (see
//!   `amle_benchmarks::circuit_benchmark_from_file`). Repeatable; files are
//!   appended in argument order. Does not imply `--circuits`.
//! * `--only <substring>` — restrict the suite to benchmarks whose name
//!   contains the substring (e.g. `--only Synth`).
//! * `--dump-fingerprint <path>` — write the concatenated semantic
//!   fingerprints to a file, for byte-for-byte comparison across versions
//!   (the trace-store representation swap and the expression-interner swap
//!   were verified this way) and across oracle engines (CI diffs the
//!   portfolio run against the kinduction baseline).
//! * `--json <path>` — write the machine-readable per-benchmark results
//!   (wall time, iterations, solver work, verdict-cache and interner
//!   statistics, fingerprint digests; see `amle_bench::suite_json`) so perf
//!   trajectories (`BENCH_*.json`) accumulate across versions. The
//!   `AMLE_BENCH_JSON` environment variable supplies a default path.
//! * `--learner history|ktails|satdfa|lstar` — the model-learning component
//!   driven by the loop (default `history`, the paper's configuration).
//! * `--engine kinduction|explicit|portfolio` — which condition-oracle
//!   stack answers the checking queries (see `amle_core::OracleConfig`).
//!   Fingerprints are byte-identical across engines.
//! * `--no-cache` — disable the cross-iteration verdict cache (enabled by
//!   default; fingerprints are byte-identical either way).
//! * `--cross-validate` — portfolio cross-validation: every explicitly
//!   routed query is also answered by k-induction and asserted equal.
//!
//! Besides the Table I columns the runner prints the trace-store / word
//! pipeline statistics table (see the README's "suite statistics" section):
//! per benchmark the stored trace count, distinct interned observations,
//! shared-prefix segments, estimated KiB saved, and the learner's
//! encoded-vs-reused word counts, followed by the per-iteration encode
//! curve.

use amle_bench::{
    format_active_table, format_circuit_table, format_oracle_table, format_store_stats_table,
    paper_config, run_suite, suite_fingerprint, suite_json, ActiveRow, SuiteRunMeta,
};
use amle_benchmarks::{all_benchmarks, full_suite, Benchmark};
use amle_core::{ActiveLearnerConfig, OracleConfig, OracleKind, ParallelConfig};
use amle_learner::{HistoryLearner, KTailsLearner, LearnerKind, LstarLearner, SatDfaLearner};
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    workers: usize,
    condition_workers: usize,
    quick: bool,
    compare: bool,
    repeat: usize,
    table1_only: bool,
    stress: bool,
    circuits: bool,
    circuit_files: Vec<String>,
    only: Option<String>,
    dump_fingerprint: Option<String>,
    json: Option<String>,
    learner: String,
    oracle: OracleConfig,
}

/// Builds a fresh learner of the named kind (one per benchmark run, so
/// per-learner incremental caches never leak across benchmarks). `None` for
/// an unknown name; callers validate at argument-parse time.
fn make_learner(name: &str) -> Option<LearnerKind> {
    match name {
        "history" => Some(LearnerKind::History(HistoryLearner::default())),
        "ktails" => Some(LearnerKind::KTails(KTailsLearner::new(1))),
        "satdfa" => Some(LearnerKind::SatDfa(SatDfaLearner::default())),
        "lstar" => Some(LearnerKind::Lstar(LstarLearner::default())),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: suite [--workers N] [--condition-workers N] [--quick] [--compare]\n\
         \x20            [--repeat N] [--table1-only] [--stress] [--circuits]\n\
         \x20            [--circuit-file <path>] [--only <substring>]\n\
         \x20            [--dump-fingerprint <path>] [--json <path>]\n\
         \x20            [--learner history|ktails|satdfa|lstar]\n\
         \x20            [--engine kinduction|explicit|portfolio] [--no-cache]\n\
         \x20            [--cross-validate]"
    );
    ExitCode::from(2)
}

fn parse_options() -> Result<Options, ExitCode> {
    let mut options = Options {
        workers: std::env::var("AMLE_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(4),
        condition_workers: 1,
        quick: false,
        compare: false,
        repeat: 1,
        table1_only: false,
        stress: false,
        circuits: false,
        circuit_files: Vec::new(),
        only: None,
        dump_fingerprint: None,
        json: std::env::var("AMLE_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty()),
        learner: "history".to_string(),
        oracle: OracleConfig::from_env(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            args.next().ok_or_else(|| {
                eprintln!("{name} requires an argument");
                usage()
            })
        };
        let mut numeric = |name: &str| -> Result<usize, ExitCode> {
            let raw = value(name)?;
            raw.parse().map_err(|_| {
                eprintln!("{name} requires a positive integer, got `{raw}`");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => options.workers = numeric("--workers")?,
            "--condition-workers" => options.condition_workers = numeric("--condition-workers")?,
            "--quick" => options.quick = true,
            "--compare" => options.compare = true,
            "--repeat" => options.repeat = numeric("--repeat")?,
            "--table1-only" => options.table1_only = true,
            "--stress" => options.stress = true,
            "--circuits" => options.circuits = true,
            "--circuit-file" => options.circuit_files.push(value("--circuit-file")?),
            "--only" => options.only = Some(value("--only")?),
            "--dump-fingerprint" => {
                options.dump_fingerprint = Some(value("--dump-fingerprint")?);
            }
            "--json" => options.json = Some(value("--json")?),
            "--learner" => {
                let name = value("--learner")?;
                if make_learner(&name).is_none() {
                    eprintln!("unknown learner `{name}` (history|ktails|satdfa|lstar)");
                    return Err(usage());
                }
                options.learner = name;
            }
            "--engine" => {
                let name = value("--engine")?;
                match OracleKind::from_name(&name) {
                    Some(engine) => options.oracle.engine = engine,
                    None => {
                        eprintln!("unknown engine `{name}` (kinduction|explicit|portfolio)");
                        return Err(usage());
                    }
                }
            }
            "--no-cache" => options.oracle.verdict_cache = false,
            "--cross-validate" => options.oracle.cross_validate = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    options.workers = options.workers.max(1);
    options.condition_workers = options.condition_workers.max(1);
    options.repeat = options.repeat.max(1);
    Ok(options)
}

fn config_for(
    benchmark: &Benchmark,
    quick: bool,
    condition_workers: usize,
    oracle: OracleConfig,
) -> ActiveLearnerConfig {
    let mut config = if quick {
        // Tighter than `quick_config`: the full-suite sweep visits every
        // benchmark, including ones that do not converge at this scale, and
        // for those the trace-splicing growth and the larger-k step-case
        // queries blow up super-linearly with the iteration count.
        ActiveLearnerConfig {
            observables: Some(benchmark.observables.clone()),
            initial_traces: 12,
            trace_length: 12,
            k: benchmark.k.min(5),
            max_iterations: 6,
            ..Default::default()
        }
    } else {
        paper_config(benchmark)
    };
    config.parallel = ParallelConfig::with_workers(condition_workers);
    config.oracle = oracle;
    config
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(code) => return code,
    };
    let mut suite = if options.table1_only {
        all_benchmarks()
    } else {
        full_suite()
    };
    // `--stress` appends exactly the splicing-stress family to either base
    // set (`--table1-only --stress` must not smuggle the other synthetic
    // families back in).
    if options.stress {
        suite.extend(amle_benchmarks::splice_stress_benchmarks(
            amle_benchmarks::DEFAULT_SEED,
        ));
    }
    if options.circuits {
        suite.extend(amle_benchmarks::circuit_benchmarks());
    }
    for path in &options.circuit_files {
        match amle_benchmarks::circuit_benchmark_from_file(std::path::Path::new(path)) {
            Ok(benchmark) => suite.push(benchmark),
            Err(e) => {
                eprintln!("--circuit-file: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(only) = &options.only {
        suite.retain(|b| b.name.contains(only.as_str()));
        if suite.is_empty() {
            eprintln!("--only `{only}` matches no benchmark");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "suite: {} benchmarks, {} suite worker(s), {} condition worker(s), engine {}, learner {}{}{}",
        suite.len(),
        options.workers,
        options.condition_workers,
        options.oracle.engine.name(),
        options.learner,
        if options.oracle.verdict_cache {
            ""
        } else {
            ", verdict cache off"
        },
        if options.quick { ", quick config" } else { "" }
    );

    let run = |suite_workers: usize, condition_workers: usize| {
        let start = Instant::now();
        let results = run_suite(&suite, suite_workers, |benchmark| {
            eprintln!("running {} ...", benchmark.name);
            (
                make_learner(&options.learner).expect("learner name validated at parse time"),
                config_for(benchmark, options.quick, condition_workers, options.oracle),
            )
        });
        (results, start.elapsed())
    };

    let (mut results, mut parallel_time) = run(options.workers, options.condition_workers);
    // `--repeat N`: keep the first run's reports, fold per-benchmark wall
    // and solver time down to the minimum across repeats, and assert the
    // deterministic side of every repeat is byte-identical (any divergence
    // is a bug worth failing loudly on, not averaging away).
    for round in 1..options.repeat {
        eprintln!("repeat {}/{} ...", round + 1, options.repeat);
        let (repeat_results, repeat_time) = run(options.workers, options.condition_workers);
        if suite_fingerprint(&suite, &repeat_results) != suite_fingerprint(&suite, &results) {
            eprintln!("determinism violation: repeat {} diverged", round + 1);
            return ExitCode::FAILURE;
        }
        for ((row, _), (repeat_row, _)) in results.iter_mut().zip(&repeat_results) {
            if repeat_row.solve_calls != row.solve_calls || repeat_row.cache_hits != row.cache_hits
            {
                eprintln!(
                    "determinism violation: {} changed solver counters across repeats",
                    row.name
                );
                return ExitCode::FAILURE;
            }
            row.time_s = row.time_s.min(repeat_row.time_s);
            row.solver_time_s = row.solver_time_s.min(repeat_row.solver_time_s);
        }
        parallel_time = parallel_time.min(repeat_time);
    }
    let results = results;
    let parallel_time = parallel_time;

    if let Some(path) = &options.dump_fingerprint {
        if let Err(e) = std::fs::write(path, suite_fingerprint(&suite, &results)) {
            eprintln!("cannot write fingerprint to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fingerprint written to {path}");
    }

    if let Some(path) = &options.json {
        let meta = SuiteRunMeta {
            engine: options.oracle.engine.name().to_string(),
            learner: options.learner.clone(),
            quick: options.quick,
            workers: options.workers,
            condition_workers: options.condition_workers,
            wall_time_s: parallel_time.as_secs_f64(),
        };
        if let Err(e) = std::fs::write(path, suite_json(&meta, &suite, &results)) {
            eprintln!("cannot write suite JSON to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("machine-readable results written to {path}");
    }

    let rows: Vec<ActiveRow> = results.iter().map(|(row, _)| row.clone()).collect();
    println!("Table I + synthetic families — Our Algorithm");
    println!("{}", format_active_table(&rows));
    println!("Trace store & word pipeline");
    println!("{}", format_store_stats_table(&rows));
    println!(
        "Oracle portfolio & verdict cache (engine: {})",
        options.oracle.engine.name()
    );
    println!("{}", format_oracle_table(&rows));
    let circuit_table = format_circuit_table(&rows);
    if !circuit_table.is_empty() {
        println!("Circuit netlists (cone-of-influence reduction)");
        println!("{circuit_table}");
    }
    let converged = rows.iter().filter(|r| (r.alpha - 1.0).abs() < 1e-9).count();
    println!(
        "summary: {}/{} benchmarks reached alpha = 1; wall-clock {:.2}s with {} worker(s)",
        converged,
        rows.len(),
        parallel_time.as_secs_f64(),
        options.workers
    );

    if options.compare {
        eprintln!("re-running sequentially for the determinism + speedup comparison ...");
        let (sequential_results, sequential_time) = run(1, 1);
        let parallel_fp = suite_fingerprint(&suite, &results);
        let sequential_fp = suite_fingerprint(&suite, &sequential_results);
        if parallel_fp != sequential_fp {
            eprintln!("determinism violation: parallel and sequential suite reports differ");
            return ExitCode::FAILURE;
        }
        println!(
            "determinism: OK — {} workers and 1 worker produced byte-identical reports ({} fingerprint bytes)",
            options.workers,
            parallel_fp.len()
        );
        println!(
            "speedup: sequential {:.2}s / parallel {:.2}s = {:.2}x with {} worker(s)",
            sequential_time.as_secs_f64(),
            parallel_time.as_secs_f64(),
            sequential_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9),
            options.workers
        );
    }
    ExitCode::SUCCESS
}
