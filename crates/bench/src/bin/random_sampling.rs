//! Reproduces the "Random Sampling" columns of Table I (Section IV-C): learn
//! a model passively from a large random-input budget and measure its degree
//! of completeness with the same condition checks the active algorithm uses.
//!
//! The budget defaults to 20 000 inputs per benchmark (a scaled-down stand-in
//! for the paper's 10^6; pass a number as the first argument to change it).

use amle_bench::{format_random_table, run_random_sampling, RandomRow};
use amle_benchmarks::all_benchmarks;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut rows: Vec<RandomRow> = Vec::new();
    for benchmark in all_benchmarks() {
        eprintln!("running {} ...", benchmark.name);
        rows.push(run_random_sampling(&benchmark, budget));
    }
    println!("Table I — Random Sampling (budget = {budget} inputs per benchmark)");
    println!("{}", format_random_table(&rows));
    let incomplete = rows.iter().filter(|r| r.alpha < 1.0).count();
    println!(
        "summary: {}/{} benchmarks have alpha < 1 under random sampling",
        incomplete,
        rows.len()
    );
}
