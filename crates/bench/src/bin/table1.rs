//! Reproduces the "Our Algorithm" columns of Table I: for every benchmark in
//! the suite, run the active-learning algorithm with the paper's experiment
//! shape (50 random traces of length 50, benchmark-specific k) and print
//! `|X|, k, i, d, N, α, T, %Tm`.

use amle_bench::{format_active_table, paper_config, run_active, ActiveRow};
use amle_benchmarks::all_benchmarks;
use amle_learner::HistoryLearner;

fn main() {
    let mut rows: Vec<ActiveRow> = Vec::new();
    for benchmark in all_benchmarks() {
        eprintln!("running {} ...", benchmark.name);
        let (row, _) = run_active(
            &benchmark,
            HistoryLearner::default(),
            paper_config(&benchmark),
        );
        rows.push(row);
    }
    println!("Table I — Our Algorithm");
    println!("{}", format_active_table(&rows));
    let converged = rows.iter().filter(|r| (r.alpha - 1.0).abs() < 1e-9).count();
    let exact = rows.iter().filter(|r| (r.d - 1.0).abs() < 1e-9).count();
    println!(
        "summary: {}/{} benchmarks reached alpha = 1, {}/{} reached d = 1",
        converged,
        rows.len(),
        exact,
        rows.len()
    );
}
