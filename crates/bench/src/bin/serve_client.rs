//! Load generator and smoke client for the `amle-served` daemon.
//!
//! ```text
//! serve-client [--addr ADDR] [--system NAME] [--sessions N] [--batches N]
//!              [--traces N] [--length N] [--seed N] [--workers N]
//!              [--expect-converged] [--shutdown]
//! ```
//!
//! Connects to a running daemon (retrying the connect for a few seconds so
//! CI can start the daemon in the background without a sleep), opens
//! `--sessions` sessions named `load-0`, `load-1`, …, and drives each
//! through `--batches` ingest+refine rounds with deterministically seeded
//! simulator traces (session index folded into the seed, so concurrent
//! sessions learn from distinct trace sets). Retriable rejections — a full
//! session queue or an expired deadline — are retried with backoff, which
//! doubles as an end-to-end exercise of the daemon's backpressure contract.
//!
//! * `--addr ADDR` — daemon address (default `127.0.0.1:4155`).
//! * `--system NAME` — benchmark system to learn (default
//!   `HomeClimateControlCooler`).
//! * `--sessions N` / `--batches N` / `--traces N` / `--length N` — load
//!   shape: sessions, ingest+refine rounds per session, traces per batch,
//!   trace length (defaults 1 / 2 / 8 / 12).
//! * `--seed N` — base RNG seed (default 7).
//! * `--workers N` — condition-checking workers per session (default 1).
//! * `--expect-converged` — exit non-zero unless every session's final
//!   refinement reports `converged: true` (the CI smoke gate).
//! * `--shutdown` — send `shutdown` after the load and wait for the
//!   acknowledgement, so the daemon process exits cleanly.

use amle_bench::fingerprint_digest;
use amle_benchmarks::benchmark_by_name;
use amle_serve::json::{parse_json, Json};
use amle_system::{wire, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    system: String,
    sessions: usize,
    batches: usize,
    traces: usize,
    length: usize,
    seed: u64,
    workers: usize,
    expect_converged: bool,
    shutdown: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve-client [--addr ADDR] [--system NAME] [--sessions N] [--batches N]\n\
         \x20                   [--traces N] [--length N] [--seed N] [--workers N]\n\
         \x20                   [--expect-converged] [--shutdown]"
    );
    ExitCode::from(2)
}

fn parse_options() -> Result<Options, ExitCode> {
    let mut options = Options {
        addr: "127.0.0.1:4155".to_string(),
        system: "HomeClimateControlCooler".to_string(),
        sessions: 1,
        batches: 2,
        traces: 8,
        length: 12,
        seed: 7,
        workers: 1,
        expect_converged: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            args.next().ok_or_else(|| {
                eprintln!("{name} requires an argument");
                usage()
            })
        };
        fn numeric<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, ExitCode> {
            raw.parse().map_err(|_| {
                eprintln!("{name} requires a number, got `{raw}`");
                usage()
            })
        }
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--system" => options.system = value("--system")?,
            "--sessions" => options.sessions = numeric("--sessions", &value("--sessions")?)?,
            "--batches" => options.batches = numeric("--batches", &value("--batches")?)?,
            "--traces" => options.traces = numeric("--traces", &value("--traces")?)?,
            "--length" => options.length = numeric("--length", &value("--length")?)?,
            "--seed" => options.seed = numeric("--seed", &value("--seed")?)?,
            "--workers" => options.workers = numeric("--workers", &value("--workers")?)?,
            "--expect-converged" => options.expect_converged = true,
            "--shutdown" => options.shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    options.sessions = options.sessions.max(1);
    options.batches = options.batches.max(1);
    options.traces = options.traces.max(1);
    options.length = options.length.max(2);
    options.workers = options.workers.max(1);
    Ok(options)
}

/// One protocol connection: a request line out, a response line in.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    /// Connects, retrying for up to ~10s so a freshly spawned daemon has
    /// time to bind.
    fn connect(addr: &str) -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| format!("clone stream: {e}"))?,
                    );
                    return Ok(Client { reader, stream });
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
            }
        }
    }

    fn send(&mut self, request: &Json) -> Result<Json, String> {
        self.stream
            .write_all(request.render().as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("write request: {e}"))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("read response: {e}"))?;
        if line.is_empty() {
            return Err("daemon closed the connection".to_string());
        }
        parse_json(line.trim_end()).map_err(|e| format!("bad response line {line:?}: {e}"))
    }

    /// Sends, retrying retriable rejections (full queue, expired deadline)
    /// with linear backoff. Non-retriable errors are final.
    fn send_retry(&mut self, request: &Json) -> Result<Json, String> {
        for attempt in 0..50u64 {
            let response = self.send(request)?;
            if response.get("ok").and_then(Json::as_bool) == Some(true) {
                return Ok(response);
            }
            let retriable = response.get("retriable").and_then(Json::as_bool) == Some(true);
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            if !retriable {
                return Err(error);
            }
            std::thread::sleep(Duration::from_millis(50 * (attempt + 1)));
        }
        Err("retriable rejection persisted after 50 attempts".to_string())
    }
}

fn req<const N: usize>(op: &str, fields: [(&str, Json); N]) -> Json {
    let mut pairs = vec![("op".to_string(), Json::from(op))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    pairs.into_iter().collect()
}

fn trace_batch(options: &Options, session: usize, batch: usize) -> Result<Json, String> {
    let benchmark = benchmark_by_name(&options.system)
        .ok_or_else(|| format!("unknown system `{}`", options.system))?;
    let seed = options
        .seed
        .wrapping_add(1000 * session as u64)
        .wrapping_add(batch as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let traces =
        Simulator::new(&benchmark.system).random_traces(options.traces, options.length, &mut rng);
    Ok(traces
        .iter()
        .map(|t| -> Json {
            wire::trace_to_rows(t)
                .into_iter()
                .map(|row| -> Json { row.into_iter().map(Json::from).collect() })
                .collect()
        })
        .collect())
}

fn drive_session(options: &Options, index: usize) -> Result<(bool, String), String> {
    let name = format!("load-{index}");
    let mut client = Client::connect(&options.addr)?;
    let config: Json = [
        ("workers".to_string(), Json::from(options.workers)),
        ("k".to_string(), Json::Null),
    ]
    .into_iter()
    .filter(|(_, v)| *v != Json::Null)
    .collect();
    client.send_retry(&req(
        "open",
        [
            ("session", Json::from(name.as_str())),
            ("system", Json::from(options.system.as_str())),
            ("config", config),
        ],
    ))?;
    let mut converged = false;
    let mut digest = String::new();
    for batch in 0..options.batches {
        let traces = trace_batch(options, index, batch)?;
        client.send_retry(&req(
            "ingest",
            [("session", Json::from(name.as_str())), ("traces", traces)],
        ))?;
        let refined =
            client.send_retry(&req("refine", [("session", Json::from(name.as_str()))]))?;
        converged = refined.get("converged").and_then(Json::as_bool) == Some(true);
        digest = refined
            .get("fingerprint_digest")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let fingerprint = refined
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("");
        if fingerprint_digest(fingerprint) != digest {
            return Err(format!(
                "session {name}: fingerprint digest mismatch (daemon says {digest})"
            ));
        }
        eprintln!(
            "session {name}: batch {}/{} alpha={} converged={converged} digest={digest}",
            batch + 1,
            options.batches,
            refined
                .get("alpha")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        );
    }
    client.send_retry(&req("close", [("session", Json::from(name.as_str()))]))?;
    Ok((converged, digest))
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(code) => return code,
    };
    if benchmark_by_name(&options.system).is_none() {
        eprintln!("unknown system `{}`", options.system);
        return ExitCode::FAILURE;
    }

    // Sessions run on concurrent connections — the point of a resident
    // daemon — and each drives its own ingest/refine rounds.
    let options = &options;
    let outcomes: Vec<Result<(bool, String), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.sessions)
            .map(|index| scope.spawn(move || drive_session(options, index)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("session thread panicked".to_string()))
            })
            .collect()
    });

    let mut failed = false;
    let mut all_converged = true;
    for (index, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok((converged, digest)) => {
                println!(
                    "session load-{index}: {} digest={digest}",
                    if *converged {
                        "converged"
                    } else {
                        "not converged"
                    }
                );
                all_converged &= converged;
            }
            Err(e) => {
                eprintln!("session load-{index} failed: {e}");
                failed = true;
            }
        }
    }

    if options.shutdown {
        match Client::connect(&options.addr).and_then(|mut c| c.send_retry(&req("shutdown", []))) {
            Ok(_) => println!("daemon acknowledged shutdown"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else if options.expect_converged && !all_converged {
        eprintln!("--expect-converged: at least one session did not reach alpha = 1");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
