//! Reproduces Fig. 2: the learned abstraction of the Home Climate-Control
//! Cooler, printed as a transition list and as Graphviz DOT.

use amle_bench::{paper_config, run_active};
use amle_benchmarks::benchmark_by_name;
use amle_learner::HistoryLearner;

fn main() {
    let benchmark =
        benchmark_by_name("HomeClimateControlCooler").expect("benchmark suite includes the cooler");
    let (row, report) = run_active(
        &benchmark,
        HistoryLearner::default(),
        paper_config(&benchmark),
    );
    println!(
        "Fig. 2 — Home Climate-Control Cooler abstraction (alpha = {:.2}, d = {:.2}, {} states)",
        row.alpha, row.d, row.states
    );
    println!();
    let vars = benchmark.system.vars();
    for t in report.abstraction.transitions() {
        println!(
            "  {} --[{}]--> {}",
            t.from,
            amle_automaton::display_expr(&t.guard, vars),
            t.to
        );
    }
    println!();
    println!("{}", report.abstraction.to_dot(vars));
    println!("invariants extracted from the final abstraction:");
    for invariant in report.invariants.iter().take(6) {
        println!("  {}", invariant.display(vars));
    }
}
