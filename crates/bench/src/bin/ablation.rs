//! Design-choice ablations (experiments A1 and A2 of DESIGN.md):
//!
//! * A1 — learner choice: the default history learner vs k-tails state
//!   merging, on a selection of benchmarks;
//! * A2 — sensitivity of the run to the k-induction bound used for the
//!   spurious-counterexample check.

use amle_bench::{format_active_table, quick_config, run_active, run_learner_ablation};
use amle_benchmarks::benchmark_by_name;
use amle_learner::HistoryLearner;

fn main() {
    println!("A1 — learner choice (history vs k-tails)");
    for name in [
        "HomeClimateControlCooler",
        "MealyVendingMachine",
        "LadderLogicScheduler",
    ] {
        let benchmark = benchmark_by_name(name).expect("known benchmark");
        let (history, ktails) = run_learner_ablation(&benchmark);
        println!("{}", format_active_table(&[history, ktails]));
    }

    println!("A2 — k-induction bound sensitivity (HomeClimateControlCooler, CountEvents)");
    for name in ["HomeClimateControlCooler", "CountEvents"] {
        let benchmark = benchmark_by_name(name).expect("known benchmark");
        let mut rows = Vec::new();
        for k in [1usize, 4, 8, 16, 32] {
            let mut config = quick_config(&benchmark);
            config.k = k;
            let (row, _) = run_active(&benchmark, HistoryLearner::default(), config);
            rows.push(row);
        }
        println!("{name}:");
        println!("{}", format_active_table(&rows));
    }
}
