//! Criterion benches of the substrate layers (SAT solver, bit-blasted
//! condition checks, passive learners) — these back the runtime breakdown
//! (%Tm) discussion of Table I.

use amle_benchmarks::benchmark_by_name;
use amle_checker::KInductionChecker;
use amle_expr::Expr;
use amle_learner::{HistoryLearner, ModelLearner};
use amle_sat::{Lit, Solver};
use amle_system::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sat_solver(c: &mut Criterion) {
    // Pigeonhole instances: the classic hard-UNSAT micro-benchmark.
    c.bench_function("sat/pigeonhole_6_into_5", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let pigeons = 6;
            let holes = 5;
            let vars: Vec<_> = (0..pigeons * holes).map(|_| solver.new_var()).collect();
            let lit = |p: usize, h: usize| Lit::positive(vars[p * holes + h]);
            for p in 0..pigeons {
                solver.add_clause((0..holes).map(|h| lit(p, h)));
            }
            for h in 0..holes {
                for p1 in 0..pigeons {
                    for p2 in (p1 + 1)..pigeons {
                        solver.add_clause([!lit(p1, h), !lit(p2, h)]);
                    }
                }
            }
            solver.solve()
        })
    });
}

fn condition_checks(c: &mut Criterion) {
    let benchmark = benchmark_by_name("CountEvents").expect("known benchmark");
    let system = &benchmark.system;
    c.bench_function("checker/condition_check", |b| {
        b.iter(|| {
            let mut checker = KInductionChecker::new(system);
            checker.check_condition(&Expr::true_(), &[], &Expr::true_())
        })
    });
    c.bench_function("checker/spurious_check_k16", |b| {
        b.iter(|| {
            let mut checker = KInductionChecker::new(system);
            let state = system.initial_valuation();
            let formula = checker.state_formula(&state, &benchmark.observables);
            checker.check_spurious(&formula, 16)
        })
    });
}

fn passive_learning(c: &mut Criterion) {
    let benchmark = benchmark_by_name("SequenceRecognition").expect("known benchmark");
    let system = &benchmark.system;
    let sim = Simulator::new(system);
    let mut rng = StdRng::seed_from_u64(3);
    let traces = sim.random_traces(50, 50, &mut rng);
    c.bench_function("learner/history_50x50", |b| {
        b.iter(|| {
            let mut learner = HistoryLearner::default();
            learner
                .learn(system.vars(), &benchmark.observables, &traces)
                .expect("learning succeeds")
        })
    });
}

criterion_group!(benches, sat_solver, condition_checks, passive_learning);
criterion_main!(benches);
