//! Criterion benches for experiment T1-active (Table I, "Our Algorithm"):
//! end-to-end active-learning runs on representative benchmarks of each
//! family, plus the per-iteration monotonicity experiment (§IV-B3).

use amle_bench::{quick_config, run_active};
use amle_benchmarks::benchmark_by_name;
use amle_learner::HistoryLearner;
use criterion::{criterion_group, criterion_main, Criterion};

fn table1_active(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_active");
    group.sample_size(10);
    for name in [
        "HomeClimateControlCooler",
        "MealyVendingMachine",
        "LadderLogicScheduler",
        "SequenceRecognition",
        "CdPlayerModeManager",
    ] {
        let benchmark = benchmark_by_name(name).expect("known benchmark");
        group.bench_function(name, |b| {
            b.iter(|| {
                let (row, _) = run_active(
                    &benchmark,
                    HistoryLearner::default(),
                    quick_config(&benchmark),
                );
                assert!(row.alpha > 0.0);
                row
            })
        });
    }
    group.finish();
}

fn iterations(c: &mut Criterion) {
    // §IV-B3: the number of iterations depends on how much of the behaviour
    // the initial traces already cover; benching with tiny and larger initial
    // sets exposes the trade-off.
    let benchmark = benchmark_by_name("CountEvents").expect("known benchmark");
    let mut group = c.benchmark_group("iterations");
    group.sample_size(10);
    for initial in [2usize, 10, 30] {
        group.bench_function(format!("initial_traces_{initial}"), |b| {
            b.iter(|| {
                let mut config = quick_config(&benchmark);
                config.initial_traces = initial;
                config.trace_length = 8;
                let (row, _) = run_active(&benchmark, HistoryLearner::default(), config);
                row.iterations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table1_active, iterations);
criterion_main!(benches);
