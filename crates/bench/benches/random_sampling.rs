//! Criterion benches for experiment T1-random (Table I, "Random Sampling"):
//! passive learning from random-input budgets of increasing size.

use amle_bench::run_random_sampling;
use amle_benchmarks::benchmark_by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn table1_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_random");
    group.sample_size(10);
    for name in [
        "HomeClimateControlCooler",
        "CountEvents",
        "ServerQueueingSystem",
    ] {
        let benchmark = benchmark_by_name(name).expect("known benchmark");
        for budget in [500usize, 2_000] {
            group.bench_function(format!("{name}/budget_{budget}"), |b| {
                b.iter(|| run_random_sampling(&benchmark, budget))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table1_random);
criterion_main!(benches);
