//! Criterion benches for the design-choice ablations A1 (learner choice) and
//! A2 (k-induction bound sensitivity).

use amle_bench::{quick_config, run_active};
use amle_benchmarks::benchmark_by_name;
use amle_learner::{HistoryLearner, KTailsLearner};
use criterion::{criterion_group, criterion_main, Criterion};

fn ablation_learner(c: &mut Criterion) {
    let benchmark = benchmark_by_name("MealyVendingMachine").expect("known benchmark");
    let mut group = c.benchmark_group("ablation_learner");
    group.sample_size(10);
    group.bench_function("history", |b| {
        b.iter(|| {
            run_active(
                &benchmark,
                HistoryLearner::default(),
                quick_config(&benchmark),
            )
            .0
        })
    });
    group.bench_function("ktails", |b| {
        b.iter(|| run_active(&benchmark, KTailsLearner::new(1), quick_config(&benchmark)).0)
    });
    group.finish();
}

fn ablation_k(c: &mut Criterion) {
    let benchmark = benchmark_by_name("CountEvents").expect("known benchmark");
    let mut group = c.benchmark_group("ablation_k");
    group.sample_size(10);
    for k in [4usize, 16, 32] {
        group.bench_function(format!("k_{k}"), |b| {
            b.iter(|| {
                let mut config = quick_config(&benchmark);
                config.k = k;
                run_active(&benchmark, HistoryLearner::default(), config).0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_learner, ablation_k);
criterion_main!(benches);
