//! Per-benchmark profiling probe: runs one suite benchmark at an explicit
//! experiment shape and prints the phase breakdown, for chasing down where a
//! configuration blows up.
//!
//! ```text
//! cargo run --release -p amle-bench --example prof -- <name> <traces> <len> <k> <iters>
//! ```

use amle_bench::run_active;
use amle_benchmarks::benchmark_by_name;
use amle_core::ActiveLearnerConfig;
use amle_learner::HistoryLearner;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap();
    let traces: usize = args.next().unwrap().parse().unwrap();
    let len: usize = args.next().unwrap().parse().unwrap();
    let k: usize = args.next().unwrap().parse().unwrap();
    let iters: usize = args.next().unwrap().parse().unwrap();
    let b = benchmark_by_name(&name).unwrap();
    let config = ActiveLearnerConfig {
        observables: Some(b.observables.clone()),
        initial_traces: traces,
        trace_length: len,
        k: b.k.min(k),
        max_iterations: iters,
        ..Default::default()
    };
    let t = Instant::now();
    let (row, report) = run_active(&b, HistoryLearner::default(), config);
    println!(
        "{name} t={traces}x{len} k={k} i={iters}: {:.2}s alpha={:.2} iters={} states={} solves={} Tsat={:.2}s",
        t.elapsed().as_secs_f64(),
        row.alpha,
        row.iterations,
        row.states,
        row.solve_calls,
        report.solver_stats().solve_time.as_secs_f64()
    );
    println!(
        "  learn={:.2}s check={:.2}s total={:.2}s conditions_last={}",
        report.learn_time.as_secs_f64(),
        report.check_time.as_secs_f64(),
        report.total_time.as_secs_f64(),
        report
            .iteration_stats
            .last()
            .map(|s| s.conditions)
            .unwrap_or(0)
    );
    println!(
        "  cache: hits={} misses={} entries={}; engines: kiQ={} exQ={} fallb={}",
        report.verdict_cache.hits,
        report.verdict_cache.misses,
        report.verdict_cache.entries,
        report.checker_stats.kinduction_queries,
        report.checker_stats.explicit_queries,
        report.checker_stats.explicit_fallbacks
    );
}
