//! The pluggable learner interface and shared letter-automaton utilities.

use crate::{AlphabetAbstraction, LetterId};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_sat::SolverStats;
use amle_system::{TraceSet, TraceStore};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Errors raised by model learners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The trace set was empty; there is nothing to learn from.
    NoTraces,
    /// The learner's internal search failed to find a consistent automaton
    /// within its configured bounds.
    SearchExhausted {
        /// Short description of the bound that was hit.
        reason: String,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::NoTraces => write!(f, "cannot learn a model from an empty trace set"),
            LearnError::SearchExhausted { reason } => {
                write!(f, "model search exhausted its bounds: {reason}")
            }
        }
    }
}

impl Error for LearnError {}

/// Word-pipeline statistics of a model learner: how many abstract words a
/// `learn` call actually processed versus reused from its incremental cache.
///
/// Counters accumulate over the learner's lifetime (like
/// [`SolverStats`]); callers snapshot and diff with [`WordStats::since`] to
/// attribute work to one run or iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordStats {
    /// Abstract words converted and fed to the learner's internal
    /// representation (automaton fold, SAT encoding, …).
    pub words_encoded: u64,
    /// Abstract words whose conversion *and* internal encoding were reused
    /// from a previous call on the same (grown) trace store.
    pub words_reused: u64,
}

impl WordStats {
    /// The work done since an earlier snapshot of the same accumulating
    /// counters.
    pub fn since(&self, earlier: &WordStats) -> WordStats {
        WordStats {
            words_encoded: self.words_encoded - earlier.words_encoded,
            words_reused: self.words_reused - earlier.words_reused,
        }
    }
}

impl AddAssign for WordStats {
    fn add_assign(&mut self, rhs: WordStats) {
        self.words_encoded += rhs.words_encoded;
        self.words_reused += rhs.words_reused;
    }
}

impl Add for WordStats {
    type Output = WordStats;

    fn add(mut self, rhs: WordStats) -> WordStats {
        self += rhs;
        self
    }
}

/// A passive model-learning component.
///
/// The contract is the one stated in Section II-B of the paper: given a set
/// of execution traces, return an NFA that admits (at least) every trace in
/// the set. The active-learning loop in `amle-core` treats implementations of
/// this trait as interchangeable black boxes.
pub trait ModelLearner {
    /// Learns an NFA over the observable variables from the given traces.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::NoTraces`] when the trace set is empty and
    /// [`LearnError::SearchExhausted`] when the learner's bounded search fails.
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError>;

    /// Learns from an interned [`TraceStore`] instead of a flat trace set.
    ///
    /// This is the entry point the active-learning loop uses every
    /// iteration. Incremental learners ([`crate::HistoryLearner`],
    /// [`crate::SatDfaLearner`]) recognise a store they have seen before
    /// (same [`TraceStore::store_id`], grown append-only) and only process
    /// the traces added since the previous call; the default implementation
    /// simply materialises the store (cloning every observation of every
    /// trace, O(total observations) per call) and delegates to
    /// [`learn`](ModelLearner::learn). The learned model is identical either
    /// way — incrementality is a cost optimisation, not a semantic change —
    /// but learners expected on the refinement loop's hot path should
    /// override this.
    ///
    /// # Errors
    ///
    /// As for [`learn`](ModelLearner::learn).
    fn learn_from_store(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> Result<Nfa, LearnError> {
        self.learn(vars, observables, &store.to_trace_set())
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Backend SAT-solver statistics accumulated by this learner, for
    /// learners that reason with SAT; others report the zero default.
    fn solver_stats(&self) -> SolverStats {
        SolverStats::default()
    }

    /// Word-pipeline statistics accumulated by this learner across its
    /// lifetime; learners without an incremental path report the zero
    /// default.
    fn word_stats(&self) -> WordStats {
        WordStats::default()
    }
}

/// Convenience enum for selecting a learner in configurations and benchmark
/// harnesses without trait objects.
// The SAT-DFA variant carries its incremental caches and is therefore the
// largest by a margin; a handful of these exist per harness run, so the
// footprint is irrelevant and boxing would only complicate construction.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LearnerKind {
    /// The history-based learner (default; Fig. 2 style models).
    History(crate::HistoryLearner),
    /// The k-tails (bounded-future) state-merging learner.
    KTails(crate::KTailsLearner),
    /// SAT-based exact minimal DFA identification.
    SatDfa(crate::SatDfaLearner),
    /// Angluin's L* with a sample-backed teacher.
    Lstar(crate::LstarLearner),
}

impl ModelLearner for LearnerKind {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        match self {
            LearnerKind::History(l) => l.learn(vars, observables, traces),
            LearnerKind::KTails(l) => l.learn(vars, observables, traces),
            LearnerKind::SatDfa(l) => l.learn(vars, observables, traces),
            LearnerKind::Lstar(l) => l.learn(vars, observables, traces),
        }
    }

    fn learn_from_store(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> Result<Nfa, LearnError> {
        match self {
            LearnerKind::History(l) => l.learn_from_store(vars, observables, store),
            LearnerKind::KTails(l) => l.learn_from_store(vars, observables, store),
            LearnerKind::SatDfa(l) => l.learn_from_store(vars, observables, store),
            LearnerKind::Lstar(l) => l.learn_from_store(vars, observables, store),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            LearnerKind::History(l) => l.name(),
            LearnerKind::KTails(l) => l.name(),
            LearnerKind::SatDfa(l) => l.name(),
            LearnerKind::Lstar(l) => l.name(),
        }
    }

    fn solver_stats(&self) -> SolverStats {
        match self {
            LearnerKind::History(l) => l.solver_stats(),
            LearnerKind::KTails(l) => l.solver_stats(),
            LearnerKind::SatDfa(l) => l.solver_stats(),
            LearnerKind::Lstar(l) => l.solver_stats(),
        }
    }

    fn word_stats(&self) -> WordStats {
        match self {
            LearnerKind::History(l) => l.word_stats(),
            LearnerKind::KTails(l) => l.word_stats(),
            LearnerKind::SatDfa(l) => l.word_stats(),
            LearnerKind::Lstar(l) => l.word_stats(),
        }
    }
}

impl Default for LearnerKind {
    fn default() -> Self {
        LearnerKind::History(crate::HistoryLearner::default())
    }
}

/// A finite automaton over abstract letters, the intermediate representation
/// shared by all learners before predicates are attached.
#[derive(Debug, Clone, Default)]
pub(crate) struct LetterAutomaton {
    pub num_states: usize,
    pub initial: usize,
    /// Transitions `(from, letter, to)`.
    pub transitions: BTreeSet<(usize, LetterId, usize)>,
}

impl LetterAutomaton {
    /// Converts the letter automaton into a symbolic NFA: each letter on an
    /// edge contributes its predicate, parallel edges are merged into a
    /// disjunction and guards are simplified for readability.
    pub fn to_nfa(&self, abstraction: &AlphabetAbstraction) -> Nfa {
        let mut nfa = Nfa::new();
        nfa.add_states(self.num_states.max(1));
        nfa.mark_initial(amle_automaton::StateId::from_index(self.initial));
        for (from, letter, to) in &self.transitions {
            nfa.add_transition(
                amle_automaton::StateId::from_index(*from),
                amle_automaton::StateId::from_index(*to),
                abstraction.predicate(*letter),
            );
        }
        nfa.merge_parallel_edges()
            .simplify_guards()
            .trim_unreachable()
    }

    /// Checks whether the letter automaton accepts an abstract word.
    pub fn accepts_word(&self, word: &[LetterId]) -> bool {
        let mut current: BTreeSet<usize> = BTreeSet::from([self.initial]);
        for letter in word {
            current = self
                .transitions
                .iter()
                .filter(|(from, l, _)| current.contains(from) && l == letter)
                .map(|(_, _, to)| *to)
                .collect();
            if current.is_empty() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbstractionConfig;
    use amle_expr::{Sort, Valuation, Value};
    use amle_system::Trace;

    fn letters_fixture() -> (VarSet, AlphabetAbstraction, Vec<LetterId>) {
        let mut vars = VarSet::new();
        let b = vars.declare("b", Sort::Bool).unwrap();
        let mut traces = TraceSet::new();
        let mut v0 = Valuation::zeroed(&vars);
        v0.set(b, Value::Bool(false));
        let mut v1 = Valuation::zeroed(&vars);
        v1.set(b, Value::Bool(true));
        traces.insert(Trace::new(vec![v0.clone(), v1.clone(), v0.clone()]));
        let abs =
            AlphabetAbstraction::from_traces(&vars, &[b], &traces, AbstractionConfig::default());
        let word = abs
            .word_of(traces.traces()[0].observations())
            .expect("letters exist");
        (vars, abs, word)
    }

    #[test]
    fn letter_automaton_round_trip() {
        let (_, abs, word) = letters_fixture();
        // Single-state automaton with self loops on both letters.
        let mut la = LetterAutomaton {
            num_states: 1,
            initial: 0,
            transitions: BTreeSet::new(),
        };
        for l in abs.letters() {
            la.transitions.insert((0, l, 0));
        }
        assert!(la.accepts_word(&word));
        let nfa = la.to_nfa(&abs);
        assert_eq!(nfa.num_states(), 1);
        assert!(nfa.num_transitions() <= 1, "parallel edges must be merged");
    }

    #[test]
    fn letter_automaton_rejects_by_dead_end() {
        let (_, _abs, word) = letters_fixture();
        let la = LetterAutomaton {
            num_states: 1,
            initial: 0,
            transitions: BTreeSet::new(),
        };
        assert!(la.accepts_word(&[]));
        assert!(!la.accepts_word(&word));
    }

    #[test]
    fn error_display() {
        assert!(LearnError::NoTraces.to_string().contains("empty"));
        let e = LearnError::SearchExhausted {
            reason: "too many states".into(),
        };
        assert!(e.to_string().contains("too many states"));
    }

    #[test]
    fn learner_kind_default_is_history() {
        assert_eq!(LearnerKind::default().name(), "history");
    }
}
