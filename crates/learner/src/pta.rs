//! Prefix-tree acceptor (PTA) over abstract letters: the trie of the sample
//! words the passive learners (Section II-B of the paper) generalise by
//! state merging or SAT-based folding.

use crate::LetterId;
use std::collections::{BTreeMap, HashMap};

/// A prefix-tree acceptor: the trie of all abstract words in the sample.
///
/// Node 0 is the root (empty word). Every node of the PTA corresponds to a
/// prefix occurring in the trace sample; the learners merge PTA nodes into
/// automaton states.
#[derive(Debug, Clone, Default)]
pub struct Pta {
    children: Vec<BTreeMap<LetterId, usize>>,
    support: Vec<usize>,
}

impl Pta {
    /// Creates a PTA containing only the empty word.
    pub fn new() -> Self {
        Pta {
            children: vec![BTreeMap::new()],
            support: vec![0],
        }
    }

    /// Builds a PTA from a collection of abstract words.
    pub fn from_words<'a, I: IntoIterator<Item = &'a [LetterId]>>(words: I) -> Self {
        let mut pta = Pta::new();
        for word in words {
            pta.add_word(word);
        }
        pta
    }

    /// Adds one abstract word (and implicitly all its prefixes).
    pub fn add_word(&mut self, word: &[LetterId]) {
        let mut created = Vec::new();
        self.add_word_recording(word, &mut created);
    }

    /// Adds one abstract word, appending every trie edge it creates to
    /// `created` as `(parent, letter, child)` in creation order (each
    /// created edge introduces exactly one new node, its child).
    ///
    /// Incremental consumers — the SAT-DFA learner's persistent folding
    /// session — use the recording to encode only the *delta* of the
    /// prefix tree instead of re-encoding it from scratch.
    pub fn add_word_recording(
        &mut self,
        word: &[LetterId],
        created: &mut Vec<(usize, LetterId, usize)>,
    ) {
        let mut node = 0usize;
        self.support[0] += 1;
        for letter in word {
            node = match self.children[node].get(letter) {
                Some(next) => *next,
                None => {
                    let next = self.children.len();
                    self.children.push(BTreeMap::new());
                    self.support.push(0);
                    self.children[node].insert(*letter, next);
                    created.push((node, *letter, next));
                    next
                }
            };
            self.support[node] += 1;
        }
    }

    /// Number of nodes (prefixes) in the tree.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// The root node (empty prefix).
    pub fn root(&self) -> usize {
        0
    }

    /// The children of a node, keyed by letter.
    pub fn children(&self, node: usize) -> &BTreeMap<LetterId, usize> {
        &self.children[node]
    }

    /// How many sample words pass through the node (the node's support).
    pub fn support(&self, node: usize) -> usize {
        self.support[node]
    }

    /// The word spelled by the path from the root to `node`.
    pub fn word_of_node(&self, node: usize) -> Vec<LetterId> {
        // Parent pointers are not stored; reconstruct by search. The PTA is
        // small and this is only used for diagnostics and negative-example
        // construction.
        let mut result = Vec::new();
        self.find_path(0, node, &mut result);
        result
    }

    fn find_path(&self, current: usize, target: usize, path: &mut Vec<LetterId>) -> bool {
        if current == target {
            return true;
        }
        for (letter, child) in &self.children[current] {
            path.push(*letter);
            if self.find_path(*child, target, path) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Partition of the nodes by equality of their depth-`k` futures
    /// (k-tails). Returns one class index per node; nodes with equal class
    /// index have identical future behaviour up to depth `k`.
    pub fn kfuture_classes(&self, k: usize) -> Vec<usize> {
        let n = self.num_nodes();
        // Depth 0: every node is equivalent.
        let mut classes = vec![0usize; n];
        for _ in 0..k {
            let mut interner: HashMap<Vec<(LetterId, usize)>, usize> = HashMap::new();
            let mut next: Vec<usize> = vec![0; n];
            for (node, slot) in next.iter_mut().enumerate() {
                let signature: Vec<(LetterId, usize)> = self.children[node]
                    .iter()
                    .map(|(l, c)| (*l, classes[*c]))
                    .collect();
                let len = interner.len();
                *slot = *interner.entry(signature).or_insert(len);
            }
            if next == classes {
                break;
            }
            classes = next;
        }
        classes
    }

    /// All nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LetterId {
        LetterId(i)
    }

    #[test]
    fn building_and_sharing_prefixes() {
        let words = [vec![l(0), l(1), l(2)], vec![l(0), l(1), l(0)], vec![l(1)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        // root + 0 + 01 + 012 + 010 + 1 = 6 nodes
        assert_eq!(pta.num_nodes(), 6);
        assert_eq!(pta.children(pta.root()).len(), 2);
        assert_eq!(pta.support(pta.root()), 3);
    }

    #[test]
    fn word_reconstruction() {
        let words = [vec![l(0), l(1), l(2)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let deepest = pta.num_nodes() - 1;
        assert_eq!(pta.word_of_node(deepest), vec![l(0), l(1), l(2)]);
        assert_eq!(pta.word_of_node(pta.root()), Vec::<LetterId>::new());
    }

    #[test]
    fn kfuture_classes_distinguish_only_up_to_depth() {
        // Two branches: after letter 0 we can do 1 then 2; after letter 3 we
        // can do 1 then 4. At depth 1 the nodes reached by 0 and 3 look the
        // same (both offer letter 1); at depth 2 they differ.
        let words = [vec![l(0), l(1), l(2)], vec![l(3), l(1), l(4)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let after0 = *pta.children(pta.root()).get(&l(0)).unwrap();
        let after3 = *pta.children(pta.root()).get(&l(3)).unwrap();

        let depth1 = pta.kfuture_classes(1);
        assert_eq!(depth1[after0], depth1[after3]);

        let depth2 = pta.kfuture_classes(2);
        assert_ne!(depth2[after0], depth2[after3]);
    }

    #[test]
    fn depth_zero_merges_everything() {
        let words = [vec![l(0)], vec![l(1), l(2)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let classes = pta.kfuture_classes(0);
        assert!(classes.iter().all(|c| *c == classes[0]));
    }

    #[test]
    fn leaves_share_a_class() {
        let words = [vec![l(0), l(1)], vec![l(2)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let classes = pta.kfuture_classes(3);
        // Both leaves have empty futures.
        let leaf_classes: Vec<usize> = pta
            .nodes()
            .filter(|n| pta.children(*n).is_empty())
            .map(|n| classes[n])
            .collect();
        assert!(leaf_classes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn support_counts_words_through_node() {
        let words = [vec![l(0), l(1)], vec![l(0), l(2)], vec![l(0), l(1)]];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let after0 = *pta.children(pta.root()).get(&l(0)).unwrap();
        assert_eq!(pta.support(after0), 3);
        let after01 = *pta.children(after0).get(&l(1)).unwrap();
        assert_eq!(pta.support(after01), 2);
    }
}
