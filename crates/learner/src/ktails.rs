//! The Trace2Model-style passive learner: alphabet abstraction followed by
//! k-future (k-tails) state merging on the prefix-tree acceptor.

use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, AlphabetAbstraction, LearnError, ModelLearner, Pta};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_system::TraceSet;
use std::collections::BTreeSet;

/// Passive learner that merges prefix-tree states with identical bounded
/// futures.
///
/// `future_depth` plays the role of the k in classic k-tails: a larger depth
/// distinguishes more states (less generalisation, larger automata), a depth
/// of zero collapses the sample into a single state. The default of 2 is what
/// the Table I reproduction uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KTailsLearner {
    /// Depth of the future signature used to distinguish states.
    pub future_depth: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
}

impl Default for KTailsLearner {
    fn default() -> Self {
        KTailsLearner {
            future_depth: 2,
            abstraction: AbstractionConfig::default(),
        }
    }
}

impl KTailsLearner {
    /// Creates a learner with the given future depth and default abstraction
    /// configuration.
    pub fn new(future_depth: usize) -> Self {
        KTailsLearner {
            future_depth,
            ..Default::default()
        }
    }

    /// Learns the intermediate letter automaton (exposed for tests and the
    /// SAT-learner ablation).
    pub(crate) fn learn_letter_automaton(
        &self,
        abstraction: &AlphabetAbstraction,
        words: &[Vec<crate::LetterId>],
    ) -> LetterAutomaton {
        let _ = abstraction;
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let classes = pta.kfuture_classes(self.future_depth);

        // Renumber classes densely in order of first appearance so that the
        // initial state gets index 0.
        let mut order: Vec<usize> = Vec::new();
        let mut dense = vec![usize::MAX; pta.num_nodes()];
        for node in pta.nodes() {
            let class = classes[node];
            let idx = match order.iter().position(|c| *c == class) {
                Some(i) => i,
                None => {
                    order.push(class);
                    order.len() - 1
                }
            };
            dense[node] = idx;
        }

        let mut transitions = BTreeSet::new();
        for node in pta.nodes() {
            for (letter, child) in pta.children(node) {
                transitions.insert((dense[node], *letter, dense[*child]));
            }
        }
        LetterAutomaton {
            num_states: order.len(),
            initial: dense[pta.root()],
            transitions,
        }
    }
}

impl ModelLearner for KTailsLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<crate::LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        let letter_automaton = self.learn_letter_automaton(&abstraction, &words);
        debug_assert!(
            words.iter().all(|w| letter_automaton.accepts_word(w)),
            "k-tails quotient must accept every sample word"
        );
        Ok(letter_automaton.to_nfa(&abstraction))
    }

    fn name(&self) -> &'static str {
        "ktails"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Expr, Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's running example (Fig. 2): a climate-control cooler whose
    /// mode follows a temperature threshold.
    fn cooler() -> amle_system::System {
        let mut b = SystemBuilder::new();
        b.name("cooler");
        let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn learned_model_accepts_all_training_traces() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(11);
        let traces = sim.random_traces(20, 20, &mut rng);
        let mut learner = KTailsLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace), "training trace rejected");
        }
        assert!(nfa.num_states() >= 1);
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = cooler();
        let mut learner = KTailsLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn future_depth_zero_collapses_to_one_state() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(3);
        let traces = sim.random_traces(10, 15, &mut rng);
        let mut learner = KTailsLearner::new(0);
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        assert_eq!(nfa.num_states(), 1);
    }

    #[test]
    fn deeper_futures_never_give_smaller_models() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(5);
        let traces = sim.random_traces(15, 15, &mut rng);
        let observables = sys.all_vars();
        let sizes: Vec<usize> = [0usize, 1, 2, 4]
            .iter()
            .map(|&depth| {
                KTailsLearner::new(depth)
                    .learn(sys.vars(), &observables, &traces)
                    .unwrap()
                    .num_states()
            })
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "sizes must be monotone in depth: {sizes:?}");
        }
    }

    #[test]
    fn observing_only_the_mode_gives_a_two_state_toggle() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(7);
        let traces = sim.random_traces(40, 30, &mut rng);
        let on = sys.vars().lookup("s_on").unwrap();
        let mut learner = KTailsLearner::new(1);
        let nfa = learner.learn(sys.vars(), &[on], &traces).unwrap();
        // Observing only the boolean mode, the abstraction has two letters and
        // the learned machine stays small (bounded by the number of distinct
        // depth-1 futures over a two-letter alphabet) while accepting all data.
        assert!(nfa.num_states() <= 4);
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn learner_name() {
        assert_eq!(KTailsLearner::default().name(), "ktails");
    }
}
