//! Angluin's L* algorithm with a sample-backed teacher.
//!
//! L* is the classic query-based active automata-learning algorithm the
//! paper's related-work section positions itself against. It is included here
//! as a third pluggable learner: the Minimally Adequate Teacher is realised
//! from the trace sample itself (membership = "is this abstract word a prefix
//! of an observed trace", equivalence = "does the hypothesis admit every
//! sample word"), which satisfies the paper's learner contract — the returned
//! automaton admits every input trace — while exhibiting the query behaviour
//! of the MAT framework.

use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, AlphabetAbstraction, LearnError, LetterId, ModelLearner};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_system::TraceSet;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// L*-based learner with a sample-backed teacher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LstarLearner {
    /// Safety bound on the number of refinement rounds.
    pub max_rounds: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
    /// Number of membership queries issued during the last `learn` call.
    pub membership_queries: usize,
    /// Number of equivalence queries issued during the last `learn` call.
    pub equivalence_queries: usize,
}

impl Default for LstarLearner {
    fn default() -> Self {
        LstarLearner {
            max_rounds: 200,
            abstraction: AbstractionConfig::default(),
            membership_queries: 0,
            equivalence_queries: 0,
        }
    }
}

/// The sample-backed teacher: answers membership queries from the
/// prefix-closure of the sample and equivalence queries by replaying the
/// sample through the hypothesis.
#[derive(Debug)]
struct SampleTeacher {
    words: Vec<Vec<LetterId>>,
    prefixes: HashSet<Vec<LetterId>>,
}

impl SampleTeacher {
    fn new(words: Vec<Vec<LetterId>>) -> Self {
        let mut prefixes = HashSet::new();
        for w in &words {
            for k in 0..=w.len() {
                prefixes.insert(w[..k].to_vec());
            }
        }
        SampleTeacher { words, prefixes }
    }

    fn member(&self, word: &[LetterId]) -> bool {
        self.prefixes.contains(word)
    }

    /// Returns a sample word rejected by the hypothesis, if any.
    fn counterexample(&self, hypothesis: &LetterAutomaton) -> Option<Vec<LetterId>> {
        self.words
            .iter()
            .find(|w| !hypothesis.accepts_word(w))
            .cloned()
    }
}

/// The L* observation table.
///
/// Exposed publicly so that tests and teaching material can inspect the
/// closed/consistent fixed point the algorithm reaches.
#[derive(Debug, Clone)]
pub struct ObservationTable {
    alphabet: Vec<LetterId>,
    prefixes: Vec<Vec<LetterId>>,
    suffixes: Vec<Vec<LetterId>>,
    entries: HashMap<Vec<LetterId>, bool>,
}

impl ObservationTable {
    fn new(alphabet: Vec<LetterId>) -> Self {
        ObservationTable {
            alphabet,
            prefixes: vec![Vec::new()],
            suffixes: vec![Vec::new()],
            entries: HashMap::new(),
        }
    }

    /// The access prefixes (the set `S` of L*).
    pub fn prefixes(&self) -> &[Vec<LetterId>] {
        &self.prefixes
    }

    /// The distinguishing suffixes (the set `E` of L*).
    pub fn suffixes(&self) -> &[Vec<LetterId>] {
        &self.suffixes
    }

    fn fill(&mut self, teacher: &SampleTeacher, queries: &mut usize) {
        let mut words: Vec<Vec<LetterId>> = Vec::new();
        for p in self.rows_needed() {
            for e in &self.suffixes {
                let mut w = p.clone();
                w.extend_from_slice(e);
                words.push(w);
            }
        }
        for w in words {
            if let std::collections::hash_map::Entry::Vacant(entry) = self.entries.entry(w) {
                *queries += 1;
                let value = teacher.member(entry.key());
                entry.insert(value);
            }
        }
    }

    fn rows_needed(&self) -> Vec<Vec<LetterId>> {
        let mut rows = self.prefixes.clone();
        for p in &self.prefixes {
            for a in &self.alphabet {
                let mut ext = p.clone();
                ext.push(*a);
                rows.push(ext);
            }
        }
        rows
    }

    fn row(&self, prefix: &[LetterId]) -> Vec<bool> {
        self.suffixes
            .iter()
            .map(|e| {
                let mut w = prefix.to_vec();
                w.extend_from_slice(e);
                *self.entries.get(&w).expect("table was filled")
            })
            .collect()
    }

    /// Returns an unclosed extension `s·a`, if one exists.
    fn find_unclosed(&self) -> Option<Vec<LetterId>> {
        let prefix_rows: HashSet<Vec<bool>> = self.prefixes.iter().map(|p| self.row(p)).collect();
        for p in &self.prefixes {
            for a in &self.alphabet {
                let mut ext = p.clone();
                ext.push(*a);
                if !prefix_rows.contains(&self.row(&ext)) {
                    return Some(ext);
                }
            }
        }
        None
    }

    /// Returns a distinguishing suffix `a·e` witnessing an inconsistency, if
    /// one exists.
    fn find_inconsistency(&self) -> Option<Vec<LetterId>> {
        for (i, p1) in self.prefixes.iter().enumerate() {
            for p2 in self.prefixes.iter().skip(i + 1) {
                if self.row(p1) != self.row(p2) {
                    continue;
                }
                for a in &self.alphabet {
                    let mut e1 = p1.clone();
                    e1.push(*a);
                    let mut e2 = p2.clone();
                    e2.push(*a);
                    for (k, e) in self.suffixes.iter().enumerate() {
                        let mut w1 = e1.clone();
                        w1.extend_from_slice(e);
                        let mut w2 = e2.clone();
                        w2.extend_from_slice(e);
                        if self.entries.get(&w1) != self.entries.get(&w2) {
                            let mut suffix = vec![*a];
                            suffix.extend_from_slice(&self.suffixes[k]);
                            return Some(suffix);
                        }
                    }
                }
            }
        }
        None
    }

    /// Builds the hypothesis automaton from a closed, consistent table.
    ///
    /// Only "accepting" rows (those whose empty-suffix entry is true) become
    /// states, matching the prefix-closed, reject-by-dead-end semantics of
    /// the symbolic NFAs.
    fn hypothesis(&self) -> LetterAutomaton {
        let mut row_ids: BTreeMap<Vec<bool>, usize> = BTreeMap::new();
        let mut accepting: Vec<bool> = Vec::new();
        for p in &self.prefixes {
            let row = self.row(p);
            let next_id = row_ids.len();
            row_ids.entry(row.clone()).or_insert_with(|| {
                accepting.push(row[0]);
                next_id
            });
        }
        let initial = row_ids[&self.row(&[])];
        let mut transitions = BTreeSet::new();
        for p in &self.prefixes {
            let from = row_ids[&self.row(p)];
            if !accepting[from] {
                continue;
            }
            for a in &self.alphabet {
                let mut ext = p.clone();
                ext.push(*a);
                let target_row = self.row(&ext);
                if let Some(to) = row_ids.get(&target_row) {
                    if accepting[*to] {
                        transitions.insert((from, *a, *to));
                    }
                }
            }
        }
        LetterAutomaton {
            num_states: row_ids.len(),
            initial,
            transitions,
        }
    }
}

impl LstarLearner {
    fn run_lstar(
        &mut self,
        alphabet: Vec<LetterId>,
        teacher: &SampleTeacher,
    ) -> Result<LetterAutomaton, LearnError> {
        let mut table = ObservationTable::new(alphabet);
        table.fill(teacher, &mut self.membership_queries);

        for _ in 0..self.max_rounds {
            // Close and make consistent.
            loop {
                if let Some(unclosed) = table.find_unclosed() {
                    table.prefixes.push(unclosed);
                    table.fill(teacher, &mut self.membership_queries);
                    continue;
                }
                if let Some(suffix) = table.find_inconsistency() {
                    table.suffixes.push(suffix);
                    table.fill(teacher, &mut self.membership_queries);
                    continue;
                }
                break;
            }
            let hypothesis = table.hypothesis();
            self.equivalence_queries += 1;
            match teacher.counterexample(&hypothesis) {
                None => return Ok(hypothesis),
                Some(cex) => {
                    // Add every prefix of the counterexample to S.
                    for k in 1..=cex.len() {
                        let prefix = cex[..k].to_vec();
                        if !table.prefixes.contains(&prefix) {
                            table.prefixes.push(prefix);
                        }
                    }
                    table.fill(teacher, &mut self.membership_queries);
                }
            }
        }
        Err(LearnError::SearchExhausted {
            reason: format!("L* did not converge within {} rounds", self.max_rounds),
        })
    }
}

impl ModelLearner for LstarLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        self.membership_queries = 0;
        self.equivalence_queries = 0;
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        let alphabet: Vec<LetterId> = abstraction.letters().collect();
        let teacher = SampleTeacher::new(words.clone());
        let letter_automaton = self.run_lstar(alphabet, &teacher)?;
        debug_assert!(
            words.iter().all(|w| letter_automaton.accepts_word(w)),
            "L* hypothesis must accept every sample word at termination"
        );
        Ok(letter_automaton.to_nfa(&abstraction))
    }

    fn name(&self) -> &'static str {
        "lstar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Valuation;
    use amle_expr::{Sort, Value};
    use amle_system::{Simulator, SystemBuilder, Trace, TraceSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_system() -> amle_system::System {
        let mut b = SystemBuilder::new();
        let press = b.input("press", Sort::Bool).unwrap();
        let mode = b.state("mode", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(press).ite(&b.var(mode).not(), &b.var(mode));
        b.update(mode, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lstar_accepts_all_training_traces() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(21);
        let traces = sim.random_traces(6, 6, &mut rng);
        let mut learner = LstarLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
        assert!(learner.membership_queries > 0);
        assert!(learner.equivalence_queries >= 1);
    }

    #[test]
    fn lstar_on_single_letter_sample_gives_tiny_model() {
        // A single trace repeating one observation: the hypothesis should be
        // a one-state loop.
        let mut vars = amle_expr::VarSet::new();
        let b = vars.declare("b", Sort::Bool).unwrap();
        let mut v = Valuation::zeroed(&vars);
        v.set(b, Value::Bool(true));
        let mut traces = TraceSet::new();
        traces.insert(Trace::new(vec![v.clone(), v.clone(), v.clone()]));
        let mut learner = LstarLearner::default();
        let nfa = learner.learn(&vars, &[b], &traces).unwrap();
        assert!(nfa.num_states() <= 2);
        assert!(nfa.accepts_trace(&traces.traces()[0]));
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = toggle_system();
        let mut learner = LstarLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn round_bound_is_respected() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(5);
        let traces = sim.random_traces(4, 6, &mut rng);
        let mut learner = LstarLearner {
            max_rounds: 0,
            ..Default::default()
        };
        let observables = sys.all_vars();
        assert!(matches!(
            learner.learn(sys.vars(), &observables, &traces),
            Err(LearnError::SearchExhausted { .. })
        ));
    }

    #[test]
    fn query_counters_reset_between_runs() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(12);
        let traces = sim.random_traces(3, 5, &mut rng);
        let mut learner = LstarLearner::default();
        let observables = sys.all_vars();
        learner.learn(sys.vars(), &observables, &traces).unwrap();
        let first = learner.membership_queries;
        learner.learn(sys.vars(), &observables, &traces).unwrap();
        assert_eq!(learner.membership_queries, first);
    }
}
