//! SAT-based exact minimal DFA identification over the abstract alphabet.
//!
//! This learner is the ablation counterpart of [`crate::KTailsLearner`]: it
//! searches for the smallest number of states `N` such that the prefix-tree
//! acceptor of the sample can be folded into an `N`-state deterministic
//! automaton, using the CDCL solver from `amle-sat` (a graph-colouring style
//! encoding in the spirit of exact DFA-identification work).
//!
//! Because the sample contains only positive traces, a naïve "smallest
//! automaton accepting the sample" collapses to a single state. Negative
//! evidence is therefore inferred from the data: if a prefix occurs at least
//! `min_support` times in the sample and a letter of the alphabet is *never*
//! observed after it, the extension of the prefix with that letter is treated
//! as a negative word (the automaton must not admit it). This keeps the
//! learner honest about behaviour that the sample consistently rules out,
//! while the active-learning loop repairs any over-restriction through model
//! checking counterexamples.

use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, AlphabetAbstraction, LearnError, LetterId, ModelLearner, Pta};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_sat::{cdcl_backend, ClauseSink, IncrementalSolver, Lit, SolveResult, SolverStats, Var};
use amle_system::TraceSet;
use std::collections::BTreeSet;

/// SAT-based minimal-DFA learner.
///
/// The size search is **incremental**: one solver session is kept alive
/// across the growing automaton sizes. The folding skeleton (mapping,
/// determinism, consistency and negative-evidence clauses) is monotone in the
/// number of states, so growing from size `n` to `n + 1` only *adds* clauses;
/// the single non-monotone constraint — "every PTA node maps to one of the
/// first `n` states" — is attached behind a per-size activation literal and
/// selected with an assumption, so clauses learnt while refuting size `n`
/// keep pruning the search at size `n + 1`.
#[derive(Debug, Clone, Eq)]
pub struct SatDfaLearner {
    /// Maximum number of automaton states to try before giving up.
    pub max_states: usize,
    /// Minimum number of sample words that must pass through a prefix before
    /// missing extensions of that prefix are treated as negative evidence.
    pub min_support: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
    /// Backend solver statistics accumulated across `learn` calls.
    stats: SolverStats,
}

/// Equality is configuration equality; accumulated statistics are ignored.
impl PartialEq for SatDfaLearner {
    fn eq(&self, other: &Self) -> bool {
        self.max_states == other.max_states
            && self.min_support == other.min_support
            && self.abstraction == other.abstraction
    }
}

impl Default for SatDfaLearner {
    fn default() -> Self {
        SatDfaLearner {
            max_states: 16,
            min_support: 3,
            abstraction: AbstractionConfig::default(),
            stats: SolverStats::default(),
        }
    }
}

impl SatDfaLearner {
    /// Creates a learner with the given state bound and default settings.
    pub fn new(max_states: usize) -> Self {
        SatDfaLearner {
            max_states,
            ..Default::default()
        }
    }

    /// Infers negative evidence: `(node, letter)` pairs such that the prefix
    /// of `node` is well supported but never followed by `letter`.
    fn inferred_negatives(
        &self,
        pta: &Pta,
        alphabet: &BTreeSet<LetterId>,
    ) -> Vec<(usize, LetterId)> {
        let mut negatives = Vec::new();
        for node in pta.nodes() {
            if pta.support(node) < self.min_support || pta.children(node).is_empty() {
                continue;
            }
            for letter in alphabet {
                if !pta.children(node).contains_key(letter) {
                    negatives.push((node, *letter));
                }
            }
        }
        negatives
    }
}

/// One incremental folding session: a single solver shared across growing
/// automaton sizes.
///
/// The clause sets indexed by automaton states are monotone in the size `n`
/// except for the at-least-one mapping constraint, which is guarded by a
/// per-size activation literal; solving size `n` assumes `acts[n - 1]` and
/// leaves every other size's constraint disabled.
struct FoldSession<'p> {
    solver: Box<dyn IncrementalSolver>,
    pta: &'p Pta,
    /// PTA edges as `(node, letter_index, child)`.
    edges: Vec<(usize, usize, usize)>,
    /// Negative evidence as `(node, letter_index)`.
    negatives: Vec<(usize, usize)>,
    /// `x[node][state]`: PTA node is mapped to automaton state.
    x: Vec<Vec<Var>>,
    /// `y[state][letter][state']`: the automaton has a transition.
    y: Vec<Vec<Vec<Var>>>,
    /// Per-size activation literals; `acts[n - 1]` selects size `n`.
    acts: Vec<Lit>,
    /// Current automaton size (number of states encoded so far).
    n: usize,
    num_letters: usize,
}

impl<'p> FoldSession<'p> {
    fn new(
        pta: &'p Pta,
        letters: &[LetterId],
        negatives: &[(usize, LetterId)],
        solver: Box<dyn IncrementalSolver>,
    ) -> Self {
        let letter_index =
            |l: LetterId| letters.iter().position(|x| *x == l).expect("known letter");
        let edges = pta
            .nodes()
            .flat_map(|node| {
                pta.children(node)
                    .iter()
                    .map(move |(letter, child)| (node, letter_index(*letter), *child))
                    .collect::<Vec<_>>()
            })
            .collect();
        let negatives = negatives
            .iter()
            .map(|(node, letter)| (*node, letter_index(*letter)))
            .collect();
        FoldSession {
            solver,
            pta,
            edges,
            negatives,
            x: vec![Vec::new(); pta.num_nodes()],
            y: Vec::new(),
            acts: Vec::new(),
            n: 0,
            num_letters: letters.len(),
        }
    }

    /// Grows the encoding by one automaton state (size `n` → `n + 1`),
    /// adding only the clauses that mention the new state, plus the
    /// activation-guarded at-least-one constraint for the new size.
    fn grow(&mut self) {
        let m = self.n; // index of the state being added
        let n = m + 1; // new size

        // New mapping variables x[node][m].
        for node in 0..self.pta.num_nodes() {
            let v = self.solver.new_var();
            self.x[node].push(v);
        }
        // New transition variables: extend existing rows with target m, then
        // add the full row for source state m.
        for s in 0..m {
            for a in 0..self.num_letters {
                let v = self.solver.new_var();
                self.y[s][a].push(v);
            }
        }
        let new_row: Vec<Vec<Var>> = (0..self.num_letters)
            .map(|_| (0..n).map(|_| self.solver.new_var()).collect())
            .collect();
        self.y.push(new_row);

        // At-most-one mapping: pairs involving the new state.
        for node in 0..self.pta.num_nodes() {
            for s1 in 0..m {
                self.solver.add_clause(&[
                    Lit::negative(self.x[node][s1]),
                    Lit::negative(self.x[node][m]),
                ]);
            }
        }
        // Symmetry breaking: the root maps to state 0, permanently.
        if m == 0 {
            self.solver
                .add_clause(&[Lit::positive(self.x[self.pta.root()][0])]);
        }

        // Determinism of y: pairs involving the new target in old rows, and
        // all pairs of the new row.
        for s in 0..m {
            for a in 0..self.num_letters {
                for t1 in 0..m {
                    self.solver.add_clause(&[
                        Lit::negative(self.y[s][a][t1]),
                        Lit::negative(self.y[s][a][m]),
                    ]);
                }
            }
        }
        for a in 0..self.num_letters {
            for t1 in 0..n {
                for t2 in (t1 + 1)..n {
                    self.solver.add_clause(&[
                        Lit::negative(self.y[m][a][t1]),
                        Lit::negative(self.y[m][a][t2]),
                    ]);
                }
            }
        }

        // Consistency: a PTA edge (node --letter--> child) forces the
        // corresponding automaton transition, and conversely the child's
        // state is determined by the parent's state and the transition
        // relation. Only (s, t) pairs that mention the new state are new.
        for &(node, a, child) in &self.edges {
            for s in 0..n {
                for t in 0..n {
                    if s != m && t != m {
                        continue;
                    }
                    self.solver.add_clause(&[
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.x[child][t]),
                        Lit::positive(self.y[s][a][t]),
                    ]);
                    self.solver.add_clause(&[
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.y[s][a][t]),
                        Lit::positive(self.x[child][t]),
                    ]);
                }
            }
        }

        // Negative evidence: from the state of `node`, letter `a` must be
        // undefined.
        for &(node, a) in &self.negatives {
            for s in 0..n {
                for t in 0..n {
                    if s != m && t != m {
                        continue;
                    }
                    self.solver.add_clause(&[
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.y[s][a][t]),
                    ]);
                }
            }
        }

        // Size-specific at-least-one mapping, behind an activation literal.
        let act = Lit::positive(self.solver.new_var());
        for node in 0..self.pta.num_nodes() {
            let mut clause = Vec::with_capacity(n + 1);
            clause.push(!act);
            clause.extend(self.x[node].iter().map(|v| Lit::positive(*v)));
            self.solver.add_clause(&clause);
        }
        self.acts.push(act);
        self.n = n;
    }

    /// Attempts the fold at the current size; extracts the automaton on
    /// success.
    fn solve(&mut self) -> Option<LetterAutomaton> {
        debug_assert!(self.n > 0, "grow before solving");
        let act = self.acts[self.n - 1];
        if self.solver.solve(&[act]) != SolveResult::Sat {
            return None;
        }
        // Extract only transitions witnessed by a PTA edge so the automaton
        // does not pick up arbitrary don't-care transitions. The model must
        // be read before the next `grow` adds clauses.
        let state_of = |node: usize| -> usize {
            (0..self.n)
                .find(|s| self.solver.model_value(self.x[node][*s]) == Some(true))
                .expect("every node has a state")
        };
        let mut transitions = BTreeSet::new();
        for node in self.pta.nodes() {
            for (letter, child) in self.pta.children(node) {
                transitions.insert((state_of(node), *letter, state_of(*child)));
            }
        }
        Some(LetterAutomaton {
            num_states: self.n,
            initial: 0,
            transitions,
        })
    }
}

impl ModelLearner for SatDfaLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let alphabet: BTreeSet<LetterId> = abstraction.letters().collect();
        let letters: Vec<LetterId> = alphabet.iter().copied().collect();
        let negatives = self.inferred_negatives(&pta, &alphabet);

        // One incremental session for the whole size search: clauses learnt
        // while refuting size n keep pruning at size n + 1.
        let mut session = FoldSession::new(&pta, &letters, &negatives, cdcl_backend());
        let mut found = None;
        for _ in 1..=self.max_states {
            session.grow();
            if let Some(letter_automaton) = session.solve() {
                debug_assert!(
                    words.iter().all(|w| letter_automaton.accepts_word(w)),
                    "SAT folding must accept every sample word"
                );
                found = Some(letter_automaton);
                break;
            }
        }
        self.stats += session.solver.stats();
        match found {
            Some(letter_automaton) => Ok(letter_automaton.to_nfa(&abstraction)),
            None => Err(LearnError::SearchExhausted {
                reason: format!("no consistent DFA with at most {} states", self.max_states),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "sat-dfa"
    }

    fn solver_stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_system() -> amle_system::System {
        // A mode bit that toggles whenever `press` is true.
        let mut b = SystemBuilder::new();
        let press = b.input("press", Sort::Bool).unwrap();
        let mode = b.state("mode", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(press).ite(&b.var(mode).not(), &b.var(mode));
        b.update(mode, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sat_learner_accepts_all_training_traces() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(2);
        let traces = sim.random_traces(8, 8, &mut rng);
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn sat_learner_is_no_larger_than_ktails() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(9);
        let traces = sim.random_traces(6, 8, &mut rng);
        let observables = sys.all_vars();
        let sat_states = SatDfaLearner::default()
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        let ktails_states = crate::KTailsLearner::new(2)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        assert!(sat_states <= ktails_states.max(1) + 1);
    }

    #[test]
    fn exhausted_search_is_reported() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(4);
        let traces = sim.random_traces(6, 10, &mut rng);
        let mut learner = SatDfaLearner {
            max_states: 0,
            ..Default::default()
        };
        let observables = sys.all_vars();
        assert!(matches!(
            learner.learn(sys.vars(), &observables, &traces),
            Err(LearnError::SearchExhausted { .. })
        ));
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = toggle_system();
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn negative_inference_respects_support_threshold() {
        let words = [
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
        ];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let alphabet: BTreeSet<LetterId> = [LetterId(0), LetterId(1)].into_iter().collect();
        let strict = SatDfaLearner {
            min_support: 1,
            ..Default::default()
        };
        let lax = SatDfaLearner {
            min_support: 100,
            ..Default::default()
        };
        assert!(!strict.inferred_negatives(&pta, &alphabet).is_empty());
        assert!(lax.inferred_negatives(&pta, &alphabet).is_empty());
    }
}
