//! SAT-based exact minimal DFA identification over the abstract alphabet.
//!
//! This learner is the ablation counterpart of [`crate::KTailsLearner`]: it
//! searches for the smallest number of states `N` such that the prefix-tree
//! acceptor of the sample can be folded into an `N`-state deterministic
//! automaton, using the CDCL solver from `amle-sat` (a graph-colouring style
//! encoding in the spirit of exact DFA-identification work).
//!
//! Because the sample contains only positive traces, a naïve "smallest
//! automaton accepting the sample" collapses to a single state. Negative
//! evidence is therefore inferred from the data: if a prefix occurs at least
//! `min_support` times in the sample and a letter of the alphabet is *never*
//! observed after it, the extension of the prefix with that letter is treated
//! as a negative word (the automaton must not admit it). This keeps the
//! learner honest about behaviour that the sample consistently rules out,
//! while satisfying the paper's learner contract (Section II-B: the returned
//! automaton admits every input trace) — the active-learning loop repairs
//! any over-restriction through model checking counterexamples.
//!
//! ## Incremental encoding across refinement iterations
//!
//! On the store-backed path ([`crate::ModelLearner::learn_from_store`]) the
//! learner keeps one folding session alive across the whole active-learning
//! run. Each iteration only the *new* abstract words are folded into the
//! prefix tree and clause-encoded; the mapping, determinism and consistency
//! clauses of everything already encoded — and the clauses the solver learnt
//! refuting earlier sizes — are reused:
//!
//! * the skeleton clause sets are monotone in the number of PTA nodes, edges
//!   and automaton states, so a delta only ever *adds* clauses;
//! * the one non-monotone size constraint ("every PTA node maps to one of
//!   the first `n` states") stays behind the per-size activation literals it
//!   already used within a single size search;
//! * inferred negative evidence can *retract* as support grows, so each
//!   negative's clauses sit behind their own activation literal and only the
//!   currently-inferred negatives are assumed at solve time.
//!
//! A full re-encode only happens when the alphabet abstraction itself
//! changes (new distinct values or re-mined thresholds).

use crate::abstraction::{AbstractionUpdate, IncrementalAbstraction};
use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, LearnError, LetterId, ModelLearner, Pta, WordStats};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_sat::{cdcl_backend, ClauseSink, IncrementalSolver, Lit, SolveResult, SolverStats, Var};
use amle_system::{TraceSet, TraceStore};
use std::collections::{BTreeMap, BTreeSet};

/// SAT-based minimal-DFA learner.
///
/// The size search is **incremental**: one solver session is kept alive
/// across the growing automaton sizes, and — on the store-backed path —
/// across refinement iterations too (see the module-level docs). Clauses
/// learnt while refuting size `n` keep pruning the search at size `n + 1`
/// and in later iterations.
#[derive(Debug)]
pub struct SatDfaLearner {
    /// Maximum number of automaton states to try before giving up.
    pub max_states: usize,
    /// Minimum number of sample words that must pass through a prefix before
    /// missing extensions of that prefix are treated as negative evidence.
    pub min_support: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
    /// Backend solver statistics accumulated across `learn` calls.
    stats: SolverStats,
    /// Word-pipeline statistics accumulated across `learn` calls.
    word_stats: WordStats,
    /// Incrementally maintained alphabet + words for the store-backed path.
    inc: Option<IncrementalAbstraction>,
    /// The persistent folding session (valid while the alphabet is stable).
    session: Option<SatSession>,
}

/// Equality is configuration equality; accumulated statistics and caches are
/// ignored.
impl PartialEq for SatDfaLearner {
    fn eq(&self, other: &Self) -> bool {
        self.max_states == other.max_states
            && self.min_support == other.min_support
            && self.abstraction == other.abstraction
    }
}

impl Eq for SatDfaLearner {}

impl Clone for SatDfaLearner {
    /// Clones the configuration and statistics; the incremental session is
    /// not cloneable (it owns a live solver) and restarts empty.
    fn clone(&self) -> Self {
        SatDfaLearner {
            max_states: self.max_states,
            min_support: self.min_support,
            abstraction: self.abstraction,
            stats: self.stats,
            word_stats: self.word_stats,
            inc: None,
            session: None,
        }
    }
}

impl Default for SatDfaLearner {
    fn default() -> Self {
        SatDfaLearner {
            max_states: 16,
            min_support: 3,
            abstraction: AbstractionConfig::default(),
            stats: SolverStats::default(),
            word_stats: WordStats::default(),
            inc: None,
            session: None,
        }
    }
}

impl SatDfaLearner {
    /// Creates a learner with the given state bound and default settings.
    pub fn new(max_states: usize) -> Self {
        SatDfaLearner {
            max_states,
            ..Default::default()
        }
    }

    /// Infers negative evidence: `(node, letter index)` pairs such that the
    /// prefix of `node` is well supported but never followed by the letter.
    #[cfg(test)]
    fn inferred_negatives(&self, pta: &Pta, num_letters: usize) -> BTreeSet<(usize, usize)> {
        inferred_negatives(self.min_support, pta, num_letters)
    }
}

/// See [`SatDfaLearner::inferred_negatives`].
fn inferred_negatives(
    min_support: usize,
    pta: &Pta,
    num_letters: usize,
) -> BTreeSet<(usize, usize)> {
    let mut negatives = BTreeSet::new();
    for node in pta.nodes() {
        if pta.support(node) < min_support || pta.children(node).is_empty() {
            continue;
        }
        for letter in 0..num_letters {
            if !pta.children(node).contains_key(&LetterId(letter)) {
                negatives.insert((node, letter));
            }
        }
    }
    negatives
}

/// One incremental folding session: a single solver shared across growing
/// automaton sizes and — as the prefix tree grows — across refinement
/// iterations.
///
/// The clause sets indexed by automaton states are monotone in the size `n`
/// except for the at-least-one mapping constraint, which is guarded by a
/// per-size activation literal; solving size `n` assumes `acts[n - 1]` and
/// leaves every other size's constraint disabled. Negative-evidence clauses
/// are guarded by per-negative activation literals for the same reason:
/// they can retract when new words raise a prefix's support.
struct FoldSession {
    solver: Box<dyn IncrementalSolver>,
    /// Encoded PTA edges as `(node, letter_index, child)`.
    edges: Vec<(usize, usize, usize)>,
    /// `x[node][state]`: PTA node is mapped to automaton state.
    x: Vec<Vec<Var>>,
    /// `y[state][letter][state']`: the automaton has a transition.
    y: Vec<Vec<Vec<Var>>>,
    /// Per-size activation literals; `acts[n - 1]` selects size `n`.
    acts: Vec<Lit>,
    /// Per-negative activation literals, keyed by `(node, letter_index)`.
    negative_acts: BTreeMap<(usize, usize), Lit>,
    /// Current automaton size (number of states encoded so far).
    n: usize,
    num_letters: usize,
}

impl std::fmt::Debug for FoldSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FoldSession")
            .field("nodes", &self.x.len())
            .field("edges", &self.edges.len())
            .field("negatives", &self.negative_acts.len())
            .field("n", &self.n)
            .field("num_letters", &self.num_letters)
            .finish()
    }
}

impl FoldSession {
    fn new(solver: Box<dyn IncrementalSolver>) -> Self {
        FoldSession {
            solver,
            edges: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
            acts: Vec::new(),
            negative_acts: BTreeMap::new(),
            n: 0,
            num_letters: 0,
        }
    }

    /// Extends the alphabet by one letter: fresh transition variables for
    /// every encoded source state, plus their determinism constraints.
    fn add_letter(&mut self) {
        let a = self.num_letters;
        for s in 0..self.n {
            let row: Vec<Var> = (0..self.n).map(|_| self.solver.new_var()).collect();
            for t1 in 0..self.n {
                for t2 in (t1 + 1)..self.n {
                    self.solver
                        .add_clause(&[Lit::negative(row[t1]), Lit::negative(row[t2])]);
                }
            }
            self.y[s].push(row);
            debug_assert_eq!(self.y[s].len(), a + 1);
        }
        self.num_letters = a + 1;
    }

    /// Registers one new PTA node: mapping variables for every encoded state,
    /// at-most-one constraints among them, and the size-specific at-least-one
    /// constraint behind each existing size's activation literal.
    fn add_node(&mut self) {
        let vars: Vec<Var> = (0..self.n).map(|_| self.solver.new_var()).collect();
        for s1 in 0..self.n {
            for s2 in (s1 + 1)..self.n {
                self.solver
                    .add_clause(&[Lit::negative(vars[s1]), Lit::negative(vars[s2])]);
            }
        }
        for size in 1..=self.n {
            let mut clause = Vec::with_capacity(size + 1);
            clause.push(!self.acts[size - 1]);
            clause.extend(vars[..size].iter().map(|v| Lit::positive(*v)));
            self.solver.add_clause(&clause);
        }
        self.x.push(vars);
    }

    /// Encodes one new PTA edge `(node, letter, child)`: the consistency
    /// clauses tying the child's mapping to the parent's mapping and the
    /// transition relation, over every encoded state pair.
    fn add_edge(&mut self, node: usize, a: usize, child: usize) {
        for s in 0..self.n {
            for t in 0..self.n {
                self.solver.add_clause(&[
                    Lit::negative(self.x[node][s]),
                    Lit::negative(self.x[child][t]),
                    Lit::positive(self.y[s][a][t]),
                ]);
                self.solver.add_clause(&[
                    Lit::negative(self.x[node][s]),
                    Lit::negative(self.y[s][a][t]),
                    Lit::positive(self.x[child][t]),
                ]);
            }
        }
        self.edges.push((node, a, child));
    }

    /// Registers one negative-evidence pair behind a fresh activation
    /// literal: while assumed, letter `a` must be undefined from the state of
    /// `node`.
    fn add_negative(&mut self, node: usize, a: usize) {
        let act = Lit::positive(self.solver.new_var());
        for s in 0..self.n {
            for t in 0..self.n {
                self.solver.add_clause(&[
                    !act,
                    Lit::negative(self.x[node][s]),
                    Lit::negative(self.y[s][a][t]),
                ]);
            }
        }
        self.negative_acts.insert((node, a), act);
    }

    /// Grows the encoding by one automaton state (size `n` → `n + 1`),
    /// adding only the clauses that mention the new state, plus the
    /// activation-guarded at-least-one constraint for the new size.
    fn grow(&mut self) {
        let m = self.n; // index of the state being added
        let n = m + 1; // new size

        // New mapping variables x[node][m] and at-most-one pairs.
        for node in 0..self.x.len() {
            let v = self.solver.new_var();
            self.x[node].push(v);
            for s1 in 0..m {
                self.solver
                    .add_clause(&[Lit::negative(self.x[node][s1]), Lit::negative(v)]);
            }
        }
        // New transition variables: extend existing rows with target m, then
        // add the full row for source state m.
        for s in 0..m {
            for a in 0..self.num_letters {
                let v = self.solver.new_var();
                self.y[s][a].push(v);
            }
        }
        let new_row: Vec<Vec<Var>> = (0..self.num_letters)
            .map(|_| (0..n).map(|_| self.solver.new_var()).collect())
            .collect();
        self.y.push(new_row);

        // Symmetry breaking: the root maps to state 0, permanently.
        if m == 0 && !self.x.is_empty() {
            self.solver.add_clause(&[Lit::positive(self.x[0][0])]);
        }

        // Determinism of y: pairs involving the new target in old rows, and
        // all pairs of the new row.
        for s in 0..m {
            for a in 0..self.num_letters {
                for t1 in 0..m {
                    self.solver.add_clause(&[
                        Lit::negative(self.y[s][a][t1]),
                        Lit::negative(self.y[s][a][m]),
                    ]);
                }
            }
        }
        for a in 0..self.num_letters {
            for t1 in 0..n {
                for t2 in (t1 + 1)..n {
                    self.solver.add_clause(&[
                        Lit::negative(self.y[m][a][t1]),
                        Lit::negative(self.y[m][a][t2]),
                    ]);
                }
            }
        }

        // Consistency: only (s, t) pairs that mention the new state are new.
        for index in 0..self.edges.len() {
            let (node, a, child) = self.edges[index];
            for s in 0..n {
                for t in 0..n {
                    if s != m && t != m {
                        continue;
                    }
                    self.solver.add_clause(&[
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.x[child][t]),
                        Lit::positive(self.y[s][a][t]),
                    ]);
                    self.solver.add_clause(&[
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.y[s][a][t]),
                        Lit::positive(self.x[child][t]),
                    ]);
                }
            }
        }

        // Negative evidence (guarded): pairs that mention the new state, for
        // every negative ever registered — inactive ones are simply never
        // assumed.
        let negatives: Vec<((usize, usize), Lit)> =
            self.negative_acts.iter().map(|(k, v)| (*k, *v)).collect();
        for ((node, a), act) in negatives {
            for s in 0..n {
                for t in 0..n {
                    if s != m && t != m {
                        continue;
                    }
                    self.solver.add_clause(&[
                        !act,
                        Lit::negative(self.x[node][s]),
                        Lit::negative(self.y[s][a][t]),
                    ]);
                }
            }
        }

        // Size-specific at-least-one mapping, behind an activation literal.
        let act = Lit::positive(self.solver.new_var());
        for node in 0..self.x.len() {
            let mut clause = Vec::with_capacity(n + 1);
            clause.push(!act);
            clause.extend(self.x[node][..n].iter().map(|v| Lit::positive(*v)));
            self.solver.add_clause(&clause);
        }
        self.acts.push(act);
        self.n = n;
    }

    /// Attempts the fold at `size` under the currently active negatives;
    /// extracts the automaton on success.
    fn solve_at(
        &mut self,
        size: usize,
        active: &BTreeSet<(usize, usize)>,
        pta: &Pta,
    ) -> Option<LetterAutomaton> {
        debug_assert!(size >= 1 && size <= self.n);
        let mut assumptions = Vec::with_capacity(1 + active.len());
        assumptions.push(self.acts[size - 1]);
        assumptions.extend(active.iter().map(|key| self.negative_acts[key]));
        if self.solver.solve(&assumptions) != SolveResult::Sat {
            return None;
        }
        // Extract only transitions witnessed by a PTA edge so the automaton
        // does not pick up arbitrary don't-care transitions. The model must
        // be read before further clauses are added.
        let state_of = |node: usize| -> usize {
            (0..size)
                .find(|s| self.solver.model_value(self.x[node][*s]) == Some(true))
                .expect("every node has a state")
        };
        let mut transitions = BTreeSet::new();
        for node in pta.nodes() {
            for (letter, child) in pta.children(node) {
                transitions.insert((state_of(node), *letter, state_of(*child)));
            }
        }
        Some(LetterAutomaton {
            num_states: size,
            initial: 0,
            transitions,
        })
    }
}

/// The persistent cross-iteration state of the store-backed path.
#[derive(Debug)]
struct SatSession {
    /// Configuration snapshot; a mismatch invalidates the session.
    min_support: usize,
    pta: Pta,
    fold: FoldSession,
    /// Number of cached words already folded into the PTA and encoded.
    words_done: usize,
    /// Negatives assumed at the previous solve, to detect retraction.
    last_negatives: BTreeSet<(usize, usize)>,
    /// Size of the automaton found by the previous call (0 = none yet).
    found_size: usize,
    /// Solver statistics already harvested into the learner's accumulator.
    harvested: SolverStats,
}

impl SatSession {
    fn fresh(min_support: usize) -> Self {
        SatSession {
            min_support,
            pta: Pta::new(),
            fold: FoldSession::new(cdcl_backend()),
            words_done: 0,
            last_negatives: BTreeSet::new(),
            found_size: 0,
            harvested: SolverStats::default(),
        }
    }
}

impl SatDfaLearner {
    /// The store-backed learning path shared by `learn` (on a temporary
    /// store) and `learn_from_store`.
    fn learn_incremental(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> Result<Nfa, LearnError> {
        if store.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let config = self.abstraction;
        let inc_reusable = matches!(&self.inc, Some(i) if i.config() == config);
        if !inc_reusable {
            self.inc = Some(IncrementalAbstraction::new(config));
            self.discard_session();
        }
        let update = self
            .inc
            .as_mut()
            .expect("abstraction cache just ensured")
            .update(vars, observables, store);
        let alphabet_stable = matches!(update, AbstractionUpdate::Incremental { .. });
        let session_reusable = alphabet_stable
            && matches!(&self.session, Some(s) if s.min_support == self.min_support);
        if !session_reusable {
            self.discard_session();
            self.session = Some(SatSession::fresh(self.min_support));
        }
        let min_support = self.min_support;
        let inc = self.inc.as_ref().expect("abstraction cache exists");
        let abstraction = inc.abstraction();
        let words = inc.words();
        let num_letters = abstraction.num_letters();
        let session = self.session.as_mut().expect("session just ensured");

        // 1. Extend the alphabet planes of the encoding.
        let letters_grew = session.fold.num_letters < num_letters;
        while session.fold.num_letters < num_letters {
            session.fold.add_letter();
        }
        // The root node exists before any word is folded.
        if session.fold.x.is_empty() {
            session.fold.add_node();
        }

        // 2. Fold only the new words into the PTA, encoding the created
        //    nodes and edges, and remembering every node the new words pass
        //    through — negative evidence can only change at those nodes
        //    (support is monotone and child edges are permanent).
        let mut created = Vec::new();
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for word in &words[session.words_done..] {
            created.clear();
            session.pta.add_word_recording(word, &mut created);
            for (node, letter, child) in &created {
                session.fold.add_node();
                debug_assert_eq!(session.fold.x.len() - 1, *child);
                session.fold.add_edge(*node, letter.index(), *child);
            }
            let mut node = session.pta.root();
            touched.insert(node);
            for letter in word {
                node = *session
                    .pta
                    .children(node)
                    .get(letter)
                    .expect("word was just added to the PTA");
                touched.insert(node);
            }
        }
        self.word_stats.words_encoded += (words.len() - session.words_done) as u64;
        self.word_stats.words_reused += session.words_done as u64;
        session.words_done = words.len();

        // 3. Refresh the negative evidence. A new letter can create
        //    negatives at *untouched* nodes, so alphabet growth falls back
        //    to the full (node × letter) recompute; otherwise only the
        //    touched nodes' rows are revisited. `monotone` records whether
        //    any previously active negative retracted.
        let (negatives, monotone) = if letters_grew {
            let negatives = inferred_negatives(min_support, &session.pta, num_letters);
            let monotone = session.last_negatives.is_subset(&negatives);
            (negatives, monotone)
        } else {
            let mut negatives = std::mem::take(&mut session.last_negatives);
            let mut retracted = false;
            for node in &touched {
                let stale: Vec<(usize, usize)> = negatives
                    .range((*node, 0)..=(*node, usize::MAX))
                    .copied()
                    .collect();
                for key in &stale {
                    negatives.remove(key);
                }
                if session.pta.support(*node) >= min_support
                    && !session.pta.children(*node).is_empty()
                {
                    for letter in 0..num_letters {
                        if !session.pta.children(*node).contains_key(&LetterId(letter)) {
                            negatives.insert((*node, letter));
                        }
                    }
                }
                retracted |= stale.iter().any(|key| !negatives.contains(key));
            }
            debug_assert_eq!(
                negatives,
                inferred_negatives(min_support, &session.pta, num_letters),
                "incremental negative update diverged from the full recompute"
            );
            (negatives, !retracted)
        };
        for key in &negatives {
            if !session.fold.negative_acts.contains_key(key) {
                session.fold.add_negative(key.0, key.1);
            }
        }

        // 4. Pick the starting size. Constraints grew monotonically iff no
        //    negative was retracted, in which case previously refuted sizes
        //    stay refuted and the search can resume at the last found size.
        let start = if monotone && session.found_size > 0 {
            session.found_size
        } else {
            1
        };

        // 5. Size search, reusing the session (and everything the solver
        //    learnt refuting smaller sizes).
        let mut found = None;
        for size in start..=self.max_states {
            while session.fold.n < size {
                session.fold.grow();
            }
            if let Some(letter_automaton) = session.fold.solve_at(size, &negatives, &session.pta) {
                session.found_size = size;
                found = Some(letter_automaton);
                break;
            }
        }
        session.last_negatives = negatives;
        let delta = session.fold.solver.stats().since(&session.harvested);
        session.harvested = session.fold.solver.stats();
        self.stats += delta;
        match found {
            Some(letter_automaton) => {
                debug_assert!(
                    words.iter().all(|w| letter_automaton.accepts_word(w)),
                    "SAT folding must accept every sample word"
                );
                Ok(letter_automaton.to_nfa(abstraction))
            }
            None => Err(LearnError::SearchExhausted {
                reason: format!("no consistent DFA with at most {} states", self.max_states),
            }),
        }
    }

    /// Drops the folding session, harvesting its outstanding solver
    /// statistics first.
    fn discard_session(&mut self) {
        if let Some(session) = self.session.take() {
            self.stats += session.fold.solver.stats().since(&session.harvested);
        }
    }
}

impl ModelLearner for SatDfaLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        // A flat trace set carries no identity to be incremental against:
        // restart from a temporary store (the next store-backed call resets
        // again, so behaviour stays run-deterministic).
        self.inc = None;
        self.discard_session();
        let store = TraceStore::from_trace_set(traces);
        let result = self.learn_incremental(vars, observables, &store);
        // The session and word cache reference the dropped temporary store
        // and can never be reused — free them (harvesting solver stats)
        // rather than holding the full encoding until the next call.
        self.inc = None;
        self.discard_session();
        result
    }

    fn learn_from_store(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> Result<Nfa, LearnError> {
        self.learn_incremental(vars, observables, store)
    }

    fn name(&self) -> &'static str {
        "sat-dfa"
    }

    fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    fn word_stats(&self) -> WordStats {
        self.word_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_system() -> amle_system::System {
        // A mode bit that toggles whenever `press` is true.
        let mut b = SystemBuilder::new();
        let press = b.input("press", Sort::Bool).unwrap();
        let mode = b.state("mode", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(press).ite(&b.var(mode).not(), &b.var(mode));
        b.update(mode, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sat_learner_accepts_all_training_traces() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(2);
        let traces = sim.random_traces(8, 8, &mut rng);
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn sat_learner_is_no_larger_than_ktails() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(9);
        let traces = sim.random_traces(6, 8, &mut rng);
        let observables = sys.all_vars();
        let sat_states = SatDfaLearner::default()
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        let ktails_states = crate::KTailsLearner::new(2)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        assert!(sat_states <= ktails_states.max(1) + 1);
    }

    #[test]
    fn exhausted_search_is_reported() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(4);
        let traces = sim.random_traces(6, 10, &mut rng);
        let mut learner = SatDfaLearner {
            max_states: 0,
            ..Default::default()
        };
        let observables = sys.all_vars();
        assert!(matches!(
            learner.learn(sys.vars(), &observables, &traces),
            Err(LearnError::SearchExhausted { .. })
        ));
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = toggle_system();
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
        assert_eq!(
            learner.learn_from_store(sys.vars(), &observables, &TraceStore::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn negative_inference_respects_support_threshold() {
        let words = [
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
        ];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let strict = SatDfaLearner {
            min_support: 1,
            ..Default::default()
        };
        let lax = SatDfaLearner {
            min_support: 100,
            ..Default::default()
        };
        assert!(!strict.inferred_negatives(&pta, 2).is_empty());
        assert!(lax.inferred_negatives(&pta, 2).is_empty());
    }

    #[test]
    fn incremental_store_path_matches_fresh_learner() {
        // Grow a store in two steps; the session must keep accepting every
        // word, and the automaton size must match what a fresh learner finds
        // on the final sample.
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(11);
        let traces = sim.random_traces(8, 8, &mut rng);
        let observables = sys.all_vars();

        let mut store = TraceStore::new();
        for trace in traces.iter().take(4) {
            store.insert_trace(trace);
        }
        let mut incremental = SatDfaLearner::default();
        let first = incremental
            .learn_from_store(sys.vars(), &observables, &store)
            .unwrap();
        assert!(first.num_states() >= 1);
        for trace in traces.iter() {
            store.insert_trace(trace);
        }
        let second = incremental
            .learn_from_store(sys.vars(), &observables, &store)
            .unwrap();

        let fresh = SatDfaLearner::default()
            .learn(sys.vars(), &observables, &store.to_trace_set())
            .unwrap();
        assert_eq!(second.num_states(), fresh.num_states());
        for trace in store.to_trace_set().iter() {
            assert!(second.accepts_trace(trace));
        }
        // The second call reused the words already encoded (if the alphabet
        // stayed stable) or re-encoded everything (if not); either way the
        // counters account for every word exactly once per call.
        let stats = incremental.word_stats();
        assert_eq!(
            stats.words_encoded + stats.words_reused,
            (store.len() + 4) as u64
        );
    }
}
