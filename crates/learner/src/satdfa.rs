//! SAT-based exact minimal DFA identification over the abstract alphabet.
//!
//! This learner is the ablation counterpart of [`crate::KTailsLearner`]: it
//! searches for the smallest number of states `N` such that the prefix-tree
//! acceptor of the sample can be folded into an `N`-state deterministic
//! automaton, using the CDCL solver from `amle-sat` (a graph-colouring style
//! encoding in the spirit of exact DFA-identification work).
//!
//! Because the sample contains only positive traces, a naïve "smallest
//! automaton accepting the sample" collapses to a single state. Negative
//! evidence is therefore inferred from the data: if a prefix occurs at least
//! `min_support` times in the sample and a letter of the alphabet is *never*
//! observed after it, the extension of the prefix with that letter is treated
//! as a negative word (the automaton must not admit it). This keeps the
//! learner honest about behaviour that the sample consistently rules out,
//! while the active-learning loop repairs any over-restriction through model
//! checking counterexamples.

use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, AlphabetAbstraction, LearnError, LetterId, ModelLearner, Pta};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_sat::{Lit, SolveResult, Solver, Var};
use amle_system::TraceSet;
use std::collections::BTreeSet;

/// SAT-based minimal-DFA learner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatDfaLearner {
    /// Maximum number of automaton states to try before giving up.
    pub max_states: usize,
    /// Minimum number of sample words that must pass through a prefix before
    /// missing extensions of that prefix are treated as negative evidence.
    pub min_support: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
}

impl Default for SatDfaLearner {
    fn default() -> Self {
        SatDfaLearner {
            max_states: 16,
            min_support: 3,
            abstraction: AbstractionConfig::default(),
        }
    }
}

impl SatDfaLearner {
    /// Creates a learner with the given state bound and default settings.
    pub fn new(max_states: usize) -> Self {
        SatDfaLearner {
            max_states,
            ..Default::default()
        }
    }

    /// Infers negative evidence: `(node, letter)` pairs such that the prefix
    /// of `node` is well supported but never followed by `letter`.
    fn inferred_negatives(&self, pta: &Pta, alphabet: &BTreeSet<LetterId>) -> Vec<(usize, LetterId)> {
        let mut negatives = Vec::new();
        for node in pta.nodes() {
            if pta.support(node) < self.min_support || pta.children(node).is_empty() {
                continue;
            }
            for letter in alphabet {
                if !pta.children(node).contains_key(letter) {
                    negatives.push((node, *letter));
                }
            }
        }
        negatives
    }

    /// Attempts to fold the PTA into `n` states. Returns the letter automaton
    /// on success.
    fn try_fold(
        &self,
        pta: &Pta,
        alphabet: &BTreeSet<LetterId>,
        negatives: &[(usize, LetterId)],
        n: usize,
    ) -> Option<LetterAutomaton> {
        let letters: Vec<LetterId> = alphabet.iter().copied().collect();
        let letter_index = |l: LetterId| letters.iter().position(|x| *x == l).expect("known letter");
        let num_nodes = pta.num_nodes();

        let mut solver = Solver::new();
        // x[node][state]: PTA node is mapped to automaton state.
        let x: Vec<Vec<Var>> = (0..num_nodes)
            .map(|_| (0..n).map(|_| solver.new_var()).collect())
            .collect();
        // y[state][letter][state']: the automaton has a transition.
        let y: Vec<Vec<Vec<Var>>> = (0..n)
            .map(|_| {
                (0..letters.len())
                    .map(|_| (0..n).map(|_| solver.new_var()).collect())
                    .collect()
            })
            .collect();

        // Each node maps to exactly one state.
        for node in 0..num_nodes {
            solver.add_clause(x[node].iter().map(|v| Lit::positive(*v)));
            for s1 in 0..n {
                for s2 in (s1 + 1)..n {
                    solver.add_clause([Lit::negative(x[node][s1]), Lit::negative(x[node][s2])]);
                }
            }
        }
        // Symmetry breaking: the root maps to state 0.
        solver.add_clause([Lit::positive(x[pta.root()][0])]);

        // Determinism of y.
        for s in 0..n {
            for a in 0..letters.len() {
                for t1 in 0..n {
                    for t2 in (t1 + 1)..n {
                        solver.add_clause([Lit::negative(y[s][a][t1]), Lit::negative(y[s][a][t2])]);
                    }
                }
            }
        }

        // Consistency: a PTA edge (node --letter--> child) forces the
        // corresponding automaton transition, and conversely the child's state
        // is determined by the parent's state and the transition relation.
        for node in pta.nodes() {
            for (letter, child) in pta.children(node) {
                let a = letter_index(*letter);
                for s in 0..n {
                    for t in 0..n {
                        // x[node][s] ∧ x[child][t] → y[s][a][t]
                        solver.add_clause([
                            Lit::negative(x[node][s]),
                            Lit::negative(x[*child][t]),
                            Lit::positive(y[s][a][t]),
                        ]);
                        // x[node][s] ∧ y[s][a][t] → x[child][t]
                        solver.add_clause([
                            Lit::negative(x[node][s]),
                            Lit::negative(y[s][a][t]),
                            Lit::positive(x[*child][t]),
                        ]);
                    }
                }
            }
        }

        // Negative evidence: from the state of `node`, letter `a` must be
        // undefined.
        for (node, letter) in negatives {
            let a = letter_index(*letter);
            for s in 0..n {
                for t in 0..n {
                    solver.add_clause([Lit::negative(x[*node][s]), Lit::negative(y[s][a][t])]);
                }
            }
        }

        if solver.solve() != SolveResult::Sat {
            return None;
        }

        // Extract only transitions witnessed by a PTA edge so the automaton
        // does not pick up arbitrary don't-care transitions.
        let state_of = |node: usize| -> usize {
            (0..n)
                .find(|s| solver.value(x[node][*s]) == Some(true))
                .expect("every node has a state")
        };
        let mut transitions = BTreeSet::new();
        for node in pta.nodes() {
            for (letter, child) in pta.children(node) {
                transitions.insert((state_of(node), *letter, state_of(*child)));
            }
        }
        Some(LetterAutomaton {
            num_states: n,
            initial: 0,
            transitions,
        })
    }
}

impl ModelLearner for SatDfaLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let alphabet: BTreeSet<LetterId> = abstraction.letters().collect();
        let negatives = self.inferred_negatives(&pta, &alphabet);

        for n in 1..=self.max_states {
            if let Some(letter_automaton) = self.try_fold(&pta, &alphabet, &negatives, n) {
                debug_assert!(
                    words.iter().all(|w| letter_automaton.accepts_word(w)),
                    "SAT folding must accept every sample word"
                );
                return Ok(letter_automaton.to_nfa(&abstraction));
            }
        }
        Err(LearnError::SearchExhausted {
            reason: format!("no consistent DFA with at most {} states", self.max_states),
        })
    }

    fn name(&self) -> &'static str {
        "sat-dfa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_system() -> amle_system::System {
        // A mode bit that toggles whenever `press` is true.
        let mut b = SystemBuilder::new();
        let press = b.input("press", Sort::Bool).unwrap();
        let mode = b.state("mode", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(press).ite(&b.var(mode).not(), &b.var(mode));
        b.update(mode, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sat_learner_accepts_all_training_traces() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(2);
        let traces = sim.random_traces(8, 8, &mut rng);
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn sat_learner_is_no_larger_than_ktails() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(9);
        let traces = sim.random_traces(6, 8, &mut rng);
        let observables = sys.all_vars();
        let sat_states = SatDfaLearner::default()
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        let ktails_states = crate::KTailsLearner::new(2)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        assert!(sat_states <= ktails_states.max(1) + 1);
    }

    #[test]
    fn exhausted_search_is_reported() {
        let sys = toggle_system();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(4);
        let traces = sim.random_traces(6, 10, &mut rng);
        let mut learner = SatDfaLearner {
            max_states: 0,
            ..Default::default()
        };
        let observables = sys.all_vars();
        assert!(matches!(
            learner.learn(sys.vars(), &observables, &traces),
            Err(LearnError::SearchExhausted { .. })
        ));
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = toggle_system();
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn negative_inference_respects_support_threshold() {
        let words = vec![
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
            vec![LetterId(0), LetterId(1)],
        ];
        let pta = Pta::from_words(words.iter().map(|w| w.as_slice()));
        let alphabet: BTreeSet<LetterId> = [LetterId(0), LetterId(1)].into_iter().collect();
        let strict = SatDfaLearner {
            min_support: 1,
            ..Default::default()
        };
        let lax = SatDfaLearner {
            min_support: 100,
            ..Default::default()
        };
        assert!(!strict.inferred_negatives(&pta, &alphabet).is_empty());
        assert!(lax.inferred_negatives(&pta, &alphabet).is_empty());
    }
}
