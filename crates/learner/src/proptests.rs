//! Property-based tests of the learners.
//!
//! The central invariant is the paper's learner contract: whatever the traces
//! and whatever the learner configuration, the returned NFA admits every
//! training trace.

use crate::{KTailsLearner, LstarLearner, ModelLearner, SatDfaLearner};
use amle_expr::{Expr, Sort, Value};
use amle_system::{Simulator, System, SystemBuilder, TraceSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-mode controller with a threshold input and a small counter —
/// exercises both the equality and the interval abstraction.
fn controller(threshold: i64, limit: i64) -> System {
    let mut b = SystemBuilder::new();
    b.name("controller");
    let temp = b.input_in_range("temp", Sort::int(7), 0, 120).unwrap();
    let on = b.state("on", Sort::Bool, Value::Bool(false)).unwrap();
    let count = b.state("count", Sort::int(4), Value::Int(0)).unwrap();
    let hot = b.var(temp).gt(&Expr::int_val(threshold, 7));
    b.update(on, hot.clone()).unwrap();
    let ce = b.var(count);
    let bumped = ce
        .ge(&Expr::int_val(limit, 4))
        .ite(&Expr::int_val(0, 4), &ce.add(&Expr::int_val(1, 4)));
    let next_count = hot.ite(&bumped, &ce);
    b.update(count, next_count).unwrap();
    b.build().unwrap()
}

fn training_set(sys: &System, count: usize, len: usize, seed: u64) -> TraceSet {
    let sim = Simulator::new(sys);
    let mut rng = StdRng::seed_from_u64(seed);
    sim.random_traces(count, len, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ktails_admits_all_training_traces(
        threshold in 20i64..100,
        limit in 2i64..10,
        depth in 0usize..4,
        seed in 0u64..100,
    ) {
        let sys = controller(threshold, limit);
        let traces = training_set(&sys, 10, 15, seed);
        let mut learner = KTailsLearner::new(depth);
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            prop_assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn ktails_admits_prefixes_of_training_traces(
        threshold in 20i64..100,
        seed in 0u64..50,
    ) {
        let sys = controller(threshold, 5);
        let traces = training_set(&sys, 8, 12, seed);
        let mut learner = KTailsLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            for k in 0..=trace.len() {
                prop_assert!(nfa.accepts(&trace.observations()[..k]));
            }
        }
    }

    #[test]
    fn sat_dfa_admits_all_training_traces(seed in 0u64..30) {
        let sys = controller(60, 4);
        // Keep the sample small so exact identification stays fast.
        let traces = training_set(&sys, 4, 6, seed);
        let mut learner = SatDfaLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            prop_assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn lstar_admits_all_training_traces(seed in 0u64..30) {
        let sys = controller(60, 4);
        let traces = training_set(&sys, 3, 6, seed);
        let mut learner = LstarLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            prop_assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn observing_fewer_variables_never_grows_the_model(seed in 0u64..30) {
        let sys = controller(70, 6);
        let traces = training_set(&sys, 10, 15, seed);
        let mut learner = KTailsLearner::default();
        let all = sys.all_vars();
        let on_only = vec![sys.vars().lookup("on").unwrap()];
        let full = learner.learn(sys.vars(), &all, &traces).unwrap();
        let coarse = learner.learn(sys.vars(), &on_only, &traces).unwrap();
        prop_assert!(coarse.num_states() <= full.num_states());
    }
}
