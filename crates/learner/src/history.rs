//! The k-history passive learner: automaton states are identified by the last
//! `k` abstract letters of the access word.
//!
//! This is the learner the active loop uses by default. It produces exactly
//! the Fig. 2 style of model: one state per (bounded) observation history,
//! transitions labelled by the predicate of the observation that is consumed.
//! Its key property for the active loop is *stable state identity*: the state
//! reached after reading a prefix depends only on the letters of that prefix,
//! so when a counterexample `(v_t, v_{t+1})` is spliced onto a prefix ending
//! in a state that satisfies the violated assumption, the new edge is
//! attached to exactly the automaton state whose completeness condition was
//! violated — each refinement iteration makes monotone progress.

use crate::learner::LetterAutomaton;
use crate::{AbstractionConfig, AlphabetAbstraction, LearnError, LetterId, ModelLearner};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_system::TraceSet;
use std::collections::{BTreeMap, BTreeSet};

/// Passive learner whose states are bounded observation histories.
///
/// `history_depth = 1` (the default) yields one state per abstract letter
/// plus a distinguished initial state; larger depths refine states by longer
/// histories, which can capture counter-like sequencing at the cost of more
/// states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryLearner {
    /// Number of trailing letters that identify a state.
    pub history_depth: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
}

impl Default for HistoryLearner {
    fn default() -> Self {
        HistoryLearner {
            history_depth: 1,
            abstraction: AbstractionConfig::default(),
        }
    }
}

impl HistoryLearner {
    /// Creates a learner with the given history depth and default abstraction
    /// configuration.
    pub fn new(history_depth: usize) -> Self {
        HistoryLearner {
            history_depth,
            ..Default::default()
        }
    }

    pub(crate) fn learn_letter_automaton(&self, words: &[Vec<LetterId>]) -> LetterAutomaton {
        let depth = self.history_depth.max(1);
        // State identity: the (at most `depth`-long) suffix of the access
        // word. The empty suffix is the initial state.
        let mut state_ids: BTreeMap<Vec<LetterId>, usize> = BTreeMap::new();
        state_ids.insert(Vec::new(), 0);
        let mut transitions = BTreeSet::new();

        for word in words {
            let mut history: Vec<LetterId> = Vec::new();
            for letter in word {
                let from_len = state_ids.len();
                let from = *state_ids.entry(history.clone()).or_insert(from_len);
                history.push(*letter);
                if history.len() > depth {
                    history.remove(0);
                }
                let to_len = state_ids.len();
                let to = *state_ids.entry(history.clone()).or_insert(to_len);
                transitions.insert((from, *letter, to));
            }
        }
        LetterAutomaton {
            num_states: state_ids.len(),
            initial: 0,
            transitions,
        }
    }
}

impl ModelLearner for HistoryLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        let letter_automaton = self.learn_letter_automaton(&words);
        debug_assert!(
            words.iter().all(|w| letter_automaton.accepts_word(w)),
            "history quotient must accept every sample word"
        );
        Ok(letter_automaton.to_nfa(&abstraction))
    }

    fn name(&self) -> &'static str {
        "history"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Expr, Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cooler() -> amle_system::System {
        let mut b = SystemBuilder::new();
        b.name("cooler");
        let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn learned_model_accepts_all_training_traces() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(11);
        let traces = sim.random_traces(20, 20, &mut rng);
        let mut learner = HistoryLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn depth_one_model_is_bounded_by_letter_count_plus_one() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(3);
        let traces = sim.random_traces(30, 30, &mut rng);
        let mut learner = HistoryLearner::new(1);
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        // Letters for the cooler: (temp cell) x (on value) — at most 2*2 plus
        // the initial state, and the threshold mining may add a few cells.
        assert!(
            nfa.num_states() <= 10,
            "unexpectedly large model: {}",
            nfa.num_states()
        );
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn deeper_history_refines_the_model() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(5);
        let traces = sim.random_traces(15, 15, &mut rng);
        let observables = sys.all_vars();
        let shallow = HistoryLearner::new(1)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        let deep = HistoryLearner::new(2)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        assert!(shallow <= deep);
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = cooler();
        let mut learner = HistoryLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn learner_name_and_depth_zero_behaves_like_depth_one() {
        assert_eq!(HistoryLearner::default().name(), "history");
        let words = vec![vec![LetterId(0), LetterId(1)]];
        let a0 = HistoryLearner::new(0).learn_letter_automaton(&words);
        let a1 = HistoryLearner::new(1).learn_letter_automaton(&words);
        assert_eq!(a0.num_states, a1.num_states);
    }
}
